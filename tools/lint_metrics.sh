#!/usr/bin/env bash
# Superseded by the AST-based analyzer (see docs/static-analysis.md).
exec cargo run -q -p gridrm-xlint -- "$@"
