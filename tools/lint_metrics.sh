#!/usr/bin/env bash
# Grep-based lint for the metric naming and label-cardinality house
# rules in docs/observability.md:
#
#   1. every registered metric name starts with `gridrm_`
#   2. counter names end in `_total`
#   3. label KEYS never come from the open sets clients control
#      (source / url / hostname / host / sql / query / address) —
#      high-cardinality detail belongs in the trace, not in labels
#   4. every span stage name recorded via .stage()/.stage_with() is
#      documented in the "Span stage vocabulary" section of
#      docs/observability.md — stages are a closed set too
#
# Usage: tools/lint_metrics.sh   (exits nonzero on any violation)
set -u
cd "$(dirname "$0")/.."

SCAN_DIRS="crates src examples"
FORBIDDEN_LABEL_KEYS='source|url|hostname|host|sql|query|address'
fail=0

# Every counter/gauge/histogram registration (direct or expose_*)
# paired with the metric-name literal that follows it — the name sits
# on the same line or within the next two (rustfmt wraps arguments).
registrations() {
  grep -rn -E '\.(expose_)?(counter|gauge|histogram)\(' \
      --include='*.rs' $SCAN_DIRS |
    while IFS=: read -r file line rest; do
      kind=$(printf '%s' "$rest" |
        grep -oE '(expose_)?(counter|gauge|histogram)\(' | head -1 |
        sed 's/expose_//; s/($//; s/(//')
      name=$(sed -n "${line},$((line + 2))p" "$file" |
        grep -oE '"[A-Za-z0-9_:]+"' | head -1 | tr -d '"')
      [ -n "$name" ] && printf '%s:%s:%s:%s\n' "$file" "$line" "$kind" "$name"
    done
}

regs=$(registrations)
if [ -z "$regs" ]; then
  echo "lint_metrics: found no metric registrations — scan pattern broken?" >&2
  exit 1
fi

# Rule 1: gridrm_ prefix.
bad=$(printf '%s\n' "$regs" | awk -F: '$4 !~ /^gridrm_/')
if [ -n "$bad" ]; then
  echo "FAIL: metric names must start with gridrm_:" >&2
  printf '%s\n' "$bad" | sed 's/^/  /' >&2
  fail=1
fi

# Rule 2: counters end in _total.
bad=$(printf '%s\n' "$regs" | awk -F: '$3 == "counter" && $4 !~ /_total$/')
if [ -n "$bad" ]; then
  echo "FAIL: counter names must end in _total:" >&2
  printf '%s\n' "$bad" | sed 's/^/  /' >&2
  fail=1
fi

# Rule 3: no open-set label keys. Label pairs are written
# ("key", "value") inside Labels::from_pairs; the key literal may land
# one line below the call after rustfmt wrapping, so scan every
# ("...", pair on lines near a from_pairs call.
bad=$(grep -rn -A3 'Labels::from_pairs' --include='*.rs' $SCAN_DIRS |
  grep -E "\(\"(${FORBIDDEN_LABEL_KEYS})\"," || true)
if [ -n "$bad" ]; then
  echo "FAIL: forbidden label key (open-set / client-controlled values):" >&2
  printf '%s\n' "$bad" | sed 's/^/  /' >&2
  fail=1
fi

# Rule 4: span stage names must appear (backticked) in the "Span stage
# vocabulary" section of docs/observability.md. Stage literals follow
# .stage("...") / .stage_with("...", — the literal may land on the next
# line after rustfmt wrapping, so match across newlines (-z).
VOCAB_DOC="docs/observability.md"
vocab=$(awk '/^### Span stage vocabulary/{hit=1; next} hit && /^#/{exit} hit' \
  "$VOCAB_DOC" | grep -oE '`[a-z_]+`' | tr -d '`' | sort -u)
if [ -z "$vocab" ]; then
  echo "lint_metrics: no stage vocabulary found in $VOCAB_DOC — section renamed?" >&2
  exit 1
fi
stages=$(grep -rzoE '\.stage(_with)?\(\s*"[a-z_]+"' --include='*.rs' $SCAN_DIRS |
  tr '\0' '\n' | grep -oE '"[a-z_]+"' | tr -d '"' | sort -u)
if [ -z "$stages" ]; then
  echo "lint_metrics: found no span stages — scan pattern broken?" >&2
  exit 1
fi
bad=$(comm -23 <(printf '%s\n' "$stages") <(printf '%s\n' "$vocab"))
if [ -n "$bad" ]; then
  echo "FAIL: span stage(s) not documented in $VOCAB_DOC (Span stage vocabulary):" >&2
  printf '%s\n' "$bad" | sed 's/^/  /' >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  nstages=$(printf '%s\n' "$stages" | wc -l | tr -d ' ')
  echo "lint_metrics: OK ($(printf '%s\n' "$regs" | wc -l | tr -d ' ') registrations, ${nstages} stage names checked)"
fi
exit "$fail"
