#!/usr/bin/env bash
# Grep-based lint for the metric naming and label-cardinality house
# rules in docs/observability.md:
#
#   1. every registered metric name starts with `gridrm_`
#   2. counter names end in `_total`
#   3. label KEYS never come from the open sets clients control
#      (source / url / hostname / host / sql / query / address) —
#      high-cardinality detail belongs in the trace, not in labels
#
# Usage: tools/lint_metrics.sh   (exits nonzero on any violation)
set -u
cd "$(dirname "$0")/.."

SCAN_DIRS="crates src examples"
FORBIDDEN_LABEL_KEYS='source|url|hostname|host|sql|query|address'
fail=0

# Every counter/gauge/histogram registration (direct or expose_*)
# paired with the metric-name literal that follows it — the name sits
# on the same line or within the next two (rustfmt wraps arguments).
registrations() {
  grep -rn -E '\.(expose_)?(counter|gauge|histogram)\(' \
      --include='*.rs' $SCAN_DIRS |
    while IFS=: read -r file line rest; do
      kind=$(printf '%s' "$rest" |
        grep -oE '(expose_)?(counter|gauge|histogram)\(' | head -1 |
        sed 's/expose_//; s/($//; s/(//')
      name=$(sed -n "${line},$((line + 2))p" "$file" |
        grep -oE '"[A-Za-z0-9_:]+"' | head -1 | tr -d '"')
      [ -n "$name" ] && printf '%s:%s:%s:%s\n' "$file" "$line" "$kind" "$name"
    done
}

regs=$(registrations)
if [ -z "$regs" ]; then
  echo "lint_metrics: found no metric registrations — scan pattern broken?" >&2
  exit 1
fi

# Rule 1: gridrm_ prefix.
bad=$(printf '%s\n' "$regs" | awk -F: '$4 !~ /^gridrm_/')
if [ -n "$bad" ]; then
  echo "FAIL: metric names must start with gridrm_:" >&2
  printf '%s\n' "$bad" | sed 's/^/  /' >&2
  fail=1
fi

# Rule 2: counters end in _total.
bad=$(printf '%s\n' "$regs" | awk -F: '$3 == "counter" && $4 !~ /_total$/')
if [ -n "$bad" ]; then
  echo "FAIL: counter names must end in _total:" >&2
  printf '%s\n' "$bad" | sed 's/^/  /' >&2
  fail=1
fi

# Rule 3: no open-set label keys. Label pairs are written
# ("key", "value") inside Labels::from_pairs; the key literal may land
# one line below the call after rustfmt wrapping, so scan every
# ("...", pair on lines near a from_pairs call.
bad=$(grep -rn -A3 'Labels::from_pairs' --include='*.rs' $SCAN_DIRS |
  grep -E "\(\"(${FORBIDDEN_LABEL_KEYS})\"," || true)
if [ -n "$bad" ]; then
  echo "FAIL: forbidden label key (open-set / client-controlled values):" >&2
  printf '%s\n' "$bad" | sed 's/^/  /' >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "lint_metrics: OK ($(printf '%s\n' "$regs" | wc -l | tr -d ' ') registrations checked)"
fi
exit "$fail"
