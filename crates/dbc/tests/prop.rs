//! Property tests for the connectivity layer: URL round-trips and the
//! RowSet cursor laws.

use gridrm_dbc::{ColumnMeta, JdbcUrl, ResultSet, ResultSetMetaData, RowSet};
use gridrm_sqlparse::{SqlType, SqlValue};
use proptest::prelude::*;

fn arb_host() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,12}(\\.[a-z][a-z0-9]{0,6}){0,2}"
}

fn arb_value() -> impl Strategy<Value = SqlValue> {
    prop_oneof![
        Just(SqlValue::Null),
        any::<bool>().prop_map(SqlValue::Bool),
        any::<i64>().prop_map(SqlValue::Int),
        (-1e12f64..1e12).prop_map(SqlValue::Float),
        "[ -~]{0,16}".prop_map(SqlValue::Str),
        (0i64..i64::MAX / 2).prop_map(SqlValue::Timestamp),
    ]
}

proptest! {
    /// Any programmatically built URL survives print → parse.
    #[test]
    fn url_roundtrip(
        proto in "[a-z][a-z0-9]{0,8}",
        host in arb_host(),
        port in prop::option::of(1u16..u16::MAX),
        path in "[a-zA-Z0-9_./-]{0,12}",
        params in prop::collection::btree_map("[a-z]{1,6}", "[a-zA-Z0-9]{0,6}", 0..4),
    ) {
        // A path starting with '/' would be ambiguous; JdbcUrl::new treats
        // the path verbatim, so normalise like callers must.
        let path = path.trim_start_matches('/');
        let mut url = JdbcUrl::new(&proto, &host, path);
        if let Some(p) = port {
            url = url.with_port(p);
        }
        for (k, v) in &params {
            url = url.with_param(k, v);
        }
        let printed = url.to_string();
        let back = JdbcUrl::parse(&printed).unwrap();
        prop_assert_eq!(back, url);
    }

    /// The wildcard form round-trips too.
    #[test]
    fn wildcard_url_roundtrip(host in arb_host(), path in "[a-z0-9]{0,8}") {
        let url = JdbcUrl::new("", &host, &path);
        prop_assert!(url.is_wildcard());
        let back = JdbcUrl::parse(&url.to_string()).unwrap();
        prop_assert!(back.is_wildcard());
        prop_assert_eq!(back, url);
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn parse_never_panics(input in "\\PC{0,48}") {
        let _ = JdbcUrl::parse(&input);
    }

    /// RowSet cursor laws: a full advance pass visits every row exactly
    /// once in order; rewinding replays identically; row_count agrees.
    #[test]
    fn rowset_cursor_laws(rows in prop::collection::vec(
        prop::collection::vec(arb_value(), 3..=3), 0..12))
    {
        let meta = ResultSetMetaData::new(vec![
            ColumnMeta::new("a", SqlType::Null),
            ColumnMeta::new("b", SqlType::Null),
            ColumnMeta::new("c", SqlType::Null),
        ]);
        let mut rs = RowSet::new(meta, rows.clone()).unwrap();
        prop_assert_eq!(rs.row_count().unwrap(), rows.len());

        let mut first_pass = Vec::new();
        while rs.advance().unwrap() {
            first_pass.push(rs.row_values().unwrap());
        }
        prop_assert_eq!(&first_pass, &rows);
        // Exhausted cursor stays exhausted.
        prop_assert!(!rs.advance().unwrap());

        rs.before_first().unwrap();
        let mut second_pass = Vec::new();
        while rs.advance().unwrap() {
            second_pass.push(rs.row_values().unwrap());
        }
        prop_assert_eq!(second_pass, rows);
    }

    /// Materialising a RowSet through the trait object reproduces it.
    #[test]
    fn materialize_identity(rows in prop::collection::vec(
        prop::collection::vec(arb_value(), 2..=2), 0..10))
    {
        let meta = ResultSetMetaData::from_pairs(&[("x", SqlType::Null), ("y", SqlType::Null)]);
        let mut original = RowSet::new(meta, rows).unwrap();
        let copy = RowSet::materialize(&mut original).unwrap();
        original.before_first().unwrap();
        prop_assert_eq!(copy.rows(), original.rows());
    }
}
