//! The `SQLException` analogue: every dbc operation returns [`DbcResult`].

use std::fmt;

/// Result alias used across the connectivity layer.
pub type DbcResult<T> = Result<T, SqlError>;

/// Gateway-wide alias: layers above dbc (core, global) speak of
/// `GridRmError`, which today is the same enum the drivers throw.
pub type GridRmError = SqlError;

/// Errors surfaced by drivers, connections, statements and result sets.
///
/// `NotImplemented` deserves a note: the paper's incremental driver
/// methodology (§3.2.1) dictates that unimplemented interface methods throw
/// `SQLException` "as one would expect from a fully implemented driver that
/// had experienced errors". Default trait methods here return exactly that.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The driver has not (yet) implemented this optional method.
    NotImplemented(&'static str),
    /// The SQL text could not be parsed or is unsupported by the driver.
    Syntax(String),
    /// Failure establishing or using a connection to the data source.
    Connection(String),
    /// No registered driver accepts the given URL.
    NoSuitableDriver(String),
    /// Operation on a closed connection/statement/result set.
    Closed,
    /// A value could not be converted to the requested type.
    TypeMismatch {
        /// Column involved.
        column: String,
        /// The requested target type.
        expected: &'static str,
    },
    /// No column with the given name exists in the result.
    ColumnNotFound(String),
    /// Column index outside the row, or cursor not positioned on a row.
    CursorOutOfRange,
    /// Access denied by a GridRM security layer.
    Security(String),
    /// The data source did not answer in time.
    Timeout(String),
    /// The query is valid SQL but asks for something the source cannot do.
    Unsupported(String),
    /// Any other driver-specific failure.
    Driver(String),
    /// A gateway-internal invariant failed. Never the data source's
    /// fault: seeing one of these means a GridRM bug, not a Grid fault.
    /// Introduced so the hot request path can degrade instead of
    /// panicking (see `docs/static-analysis.md`, rule `hot-path-panic`).
    Internal(String),
}

impl SqlError {
    /// True when retrying against a different driver might succeed
    /// (used by the GridRMDriverManager failure policies, §3.1.3/§4).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SqlError::Connection(_) | SqlError::Timeout(_) | SqlError::NoSuitableDriver(_)
        )
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::NotImplemented(m) => write!(f, "method not implemented by driver: {m}"),
            SqlError::Syntax(m) => write!(f, "SQL syntax error: {m}"),
            SqlError::Connection(m) => write!(f, "connection error: {m}"),
            SqlError::NoSuitableDriver(u) => write!(f, "no suitable driver for URL '{u}'"),
            SqlError::Closed => f.write_str("operation on closed handle"),
            SqlError::TypeMismatch { column, expected } => {
                write!(f, "column '{column}' cannot be read as {expected}")
            }
            SqlError::ColumnNotFound(c) => write!(f, "no such column '{c}'"),
            SqlError::CursorOutOfRange => f.write_str("cursor not on a valid row/column"),
            SqlError::Security(m) => write!(f, "access denied: {m}"),
            SqlError::Timeout(m) => write!(f, "timed out: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            SqlError::Driver(m) => write!(f, "driver error: {m}"),
            SqlError::Internal(m) => write!(f, "internal gateway error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<gridrm_sqlparse::ParseError> for SqlError {
    fn from(e: gridrm_sqlparse::ParseError) -> Self {
        SqlError::Syntax(e.to_string())
    }
}

impl From<gridrm_sqlparse::EvalError> for SqlError {
    fn from(e: gridrm_sqlparse::EvalError) -> Self {
        SqlError::Driver(e.to_string())
    }
}
