//! The `Statement` role: executes SQL against a connected data source.

use crate::error::{DbcResult, SqlError};
use crate::result_set::ResultSet;
use std::time::Duration;

/// A statement bound to an open [`crate::Connection`].
///
/// Per the paper (§3.2.1), a minimal driver implements "translation of SQL
/// queries and submission to data source" here. Only
/// [`Statement::execute_query`] is required; updates and tuning knobs are
/// optional capabilities that default to
/// [`SqlError::NotImplemented`] — monitoring agents are mostly read-only.
pub trait Statement: Send {
    /// Execute a query and return its results.
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>>;

    /// Execute a data-modifying statement, returning the affected row count.
    /// Most monitoring drivers are read-only and keep the default.
    fn execute_update(&mut self, _sql: &str) -> DbcResult<usize> {
        Err(SqlError::NotImplemented("execute_update"))
    }

    /// Limit how long a query may take before the driver reports
    /// [`SqlError::Timeout`].
    fn set_query_timeout(&mut self, _timeout: Duration) -> DbcResult<()> {
        Err(SqlError::NotImplemented("set_query_timeout"))
    }

    /// Cap the number of rows a query may return.
    fn set_max_rows(&mut self, _max: usize) -> DbcResult<()> {
        Err(SqlError::NotImplemented("set_max_rows"))
    }

    /// Release resources; default is a no-op.
    fn close(&mut self) -> DbcResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result_set::{ResultSetMetaData, RowSet};

    struct MinimalStatement;
    impl Statement for MinimalStatement {
        fn execute_query(&mut self, _sql: &str) -> DbcResult<Box<dyn ResultSet>> {
            Ok(Box::new(RowSet::empty(ResultSetMetaData::default())))
        }
    }

    #[test]
    fn optional_methods_default_to_not_implemented() {
        let mut s = MinimalStatement;
        assert!(s.execute_query("SELECT * FROM t").is_ok());
        assert_eq!(
            s.execute_update("DELETE FROM t"),
            Err(SqlError::NotImplemented("execute_update"))
        );
        assert_eq!(
            s.set_query_timeout(Duration::from_secs(1)),
            Err(SqlError::NotImplemented("set_query_timeout"))
        );
        assert_eq!(
            s.set_max_rows(10),
            Err(SqlError::NotImplemented("set_max_rows"))
        );
        assert_eq!(s.close(), Ok(()));
    }
}
