//! The `Connection` role: a session with a data source.

use crate::error::DbcResult;
use crate::statement::Statement;
use crate::url::JdbcUrl;

/// Descriptive metadata about an open connection, used by the gateway's
/// administration interface (§4) and the connection pool.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionMetadata {
    /// Name of the driver that produced this connection.
    pub driver_name: String,
    /// Driver version as `(major, minor)`.
    pub driver_version: (u32, u32),
    /// The URL the connection was opened against.
    pub url: String,
    /// Free-form description of the remote agent (e.g. its sysDescr).
    pub agent_description: Option<String>,
}

/// A session with a data source (the `java.sql.Connection` role).
///
/// Per §3.2.1 a minimal driver's connection "creates a session with the data
/// source and initialises schema settings for the session" — schema metadata
/// is fetched from the SchemaManager once at connect time and cached on the
/// connection (see Fig 5: "Schema is cached when the connection is created").
pub trait Connection: Send {
    /// Create a statement for executing queries over this connection.
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>>;

    /// The URL this connection is bound to.
    fn url(&self) -> &JdbcUrl;

    /// Has the connection been closed?
    fn is_closed(&self) -> bool;

    /// Close the session and release agent-side resources.
    fn close(&mut self) -> DbcResult<()>;

    /// Cheap liveness probe used by the connection pool before handing a
    /// pooled connection out. The default optimistically reports healthy.
    fn ping(&mut self) -> DbcResult<()> {
        Ok(())
    }

    /// Descriptive metadata; the default synthesises it from the URL.
    fn metadata(&self) -> ConnectionMetadata {
        ConnectionMetadata {
            driver_name: "unknown".to_owned(),
            driver_version: (0, 0),
            url: self.url().to_string(),
            agent_description: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SqlError;
    use crate::result_set::{ResultSetMetaData, RowSet};
    use crate::ResultSet;

    struct FakeConn {
        url: JdbcUrl,
        closed: bool,
    }

    impl Connection for FakeConn {
        fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
            if self.closed {
                return Err(SqlError::Closed);
            }
            struct S;
            impl Statement for S {
                fn execute_query(&mut self, _sql: &str) -> DbcResult<Box<dyn ResultSet>> {
                    Ok(Box::new(RowSet::empty(ResultSetMetaData::default())))
                }
            }
            Ok(Box::new(S))
        }
        fn url(&self) -> &JdbcUrl {
            &self.url
        }
        fn is_closed(&self) -> bool {
            self.closed
        }
        fn close(&mut self) -> DbcResult<()> {
            self.closed = true;
            Ok(())
        }
    }

    #[test]
    fn lifecycle() {
        let mut c = FakeConn {
            url: JdbcUrl::new("snmp", "node01", "public"),
            closed: false,
        };
        assert!(!c.is_closed());
        assert!(c.ping().is_ok());
        assert!(c.create_statement().is_ok());
        c.close().unwrap();
        assert!(c.is_closed());
        assert_eq!(c.create_statement().err(), Some(SqlError::Closed));
    }

    #[test]
    fn default_metadata_reflects_url() {
        let c = FakeConn {
            url: JdbcUrl::new("snmp", "node01", "public"),
            closed: false,
        };
        assert_eq!(c.metadata().url, "jdbc:snmp://node01/public");
    }
}
