//! The `ResultSet` role: cursor-style access to query results.
//!
//! The paper notes that `java.sql.ResultSet` has 139 methods, most of them
//! typed getters, and that GridRM implements them incrementally (§3.2.1).
//! Here the trait requires only three methods; everything else is a default
//! built on them, and optional capabilities default to
//! [`SqlError::NotImplemented`].

use crate::error::{DbcResult, SqlError};
use gridrm_sqlparse::{SqlType, SqlValue};

/// Metadata for one result column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Output column name (GLUE attribute name for normalised results).
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// Originating table/group, when known.
    pub table: Option<String>,
    /// Unit string from the naming schema (e.g. `MHz`, `KB`), when known.
    pub unit: Option<String>,
}

impl ColumnMeta {
    /// Column with just a name and type.
    pub fn new(name: impl Into<String>, ty: SqlType) -> Self {
        ColumnMeta {
            name: name.into(),
            ty,
            table: None,
            unit: None,
        }
    }

    /// Builder: attach the originating table/group name.
    pub fn with_table(mut self, table: impl Into<String>) -> Self {
        self.table = Some(table.into());
        self
    }

    /// Builder: attach a unit.
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = Some(unit.into());
        self
    }
}

/// The `ResultSetMetaData` role: describes how to access returned fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSetMetaData {
    columns: Vec<ColumnMeta>,
}

impl ResultSetMetaData {
    /// Metadata over the given columns.
    pub fn new(columns: Vec<ColumnMeta>) -> Self {
        ResultSetMetaData { columns }
    }

    /// Convenience: build from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, SqlType)]) -> Self {
        ResultSetMetaData {
            columns: pairs.iter().map(|(n, t)| ColumnMeta::new(*n, *t)).collect(),
        }
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column metadata by 0-based index.
    pub fn column(&self, idx: usize) -> DbcResult<&ColumnMeta> {
        self.columns.get(idx).ok_or(SqlError::CursorOutOfRange)
    }

    /// Column name by 0-based index.
    pub fn column_name(&self, idx: usize) -> DbcResult<&str> {
        self.column(idx).map(|c| c.name.as_str())
    }

    /// Column type by 0-based index.
    pub fn column_type(&self, idx: usize) -> DbcResult<SqlType> {
        self.column(idx).map(|c| c.ty)
    }

    /// Find a column index by name (case-insensitive, like JDBC).
    pub fn column_index(&self, name: &str) -> DbcResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::ColumnNotFound(name.to_owned()))
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }
}

/// Cursor-style access to a query result (the `java.sql.ResultSet` role).
///
/// # Required methods
///
/// A *minimal driver* (paper §3.2.1) implements only [`ResultSet::advance`],
/// [`ResultSet::get`] and [`ResultSet::metadata`]; typed getters come free.
///
/// # Cursor protocol
///
/// The cursor starts *before* the first row. Call [`ResultSet::advance`]
/// to move to the next row; it returns `false` past the last row.
pub trait ResultSet: Send {
    /// Move the cursor to the next row; `false` when exhausted.
    fn advance(&mut self) -> DbcResult<bool>;

    /// Read the cell at 0-based `column` in the current row.
    fn get(&self, column: usize) -> DbcResult<SqlValue>;

    /// Describe the result columns.
    fn metadata(&self) -> &ResultSetMetaData;

    // ---- defaults built on the required methods -------------------------

    /// Resolve a column name to its index.
    fn find_column(&self, name: &str) -> DbcResult<usize> {
        self.metadata().column_index(name)
    }

    /// Read a cell by column name.
    fn get_by_name(&self, name: &str) -> DbcResult<SqlValue> {
        self.get(self.find_column(name)?)
    }

    /// Is the cell at `column` NULL?
    fn is_null(&self, column: usize) -> DbcResult<bool> {
        Ok(self.get(column)?.is_null())
    }

    /// Read as `i64` (coercing numerics; NULL and non-numerics error).
    fn get_i64(&self, column: usize) -> DbcResult<i64> {
        let v = self.get(column)?;
        v.as_i64().ok_or_else(|| SqlError::TypeMismatch {
            column: self.column_label(column),
            expected: "INTEGER",
        })
    }

    /// Read as `f64`.
    fn get_f64(&self, column: usize) -> DbcResult<f64> {
        let v = self.get(column)?;
        v.as_f64().ok_or_else(|| SqlError::TypeMismatch {
            column: self.column_label(column),
            expected: "REAL",
        })
    }

    /// Read as `bool`.
    fn get_bool(&self, column: usize) -> DbcResult<bool> {
        let v = self.get(column)?;
        v.as_bool().ok_or_else(|| SqlError::TypeMismatch {
            column: self.column_label(column),
            expected: "BOOLEAN",
        })
    }

    /// Read as owned `String` (any value formats; NULL errors).
    fn get_string(&self, column: usize) -> DbcResult<String> {
        let v = self.get(column)?;
        if v.is_null() {
            return Err(SqlError::TypeMismatch {
                column: self.column_label(column),
                expected: "TEXT",
            });
        }
        Ok(v.to_string())
    }

    /// Read as epoch-milliseconds timestamp.
    fn get_timestamp(&self, column: usize) -> DbcResult<i64> {
        match self.get(column)? {
            SqlValue::Timestamp(t) => Ok(t),
            SqlValue::Int(t) => Ok(t),
            _ => Err(SqlError::TypeMismatch {
                column: self.column_label(column),
                expected: "TIMESTAMP",
            }),
        }
    }

    /// Named variants of the typed getters.
    fn get_i64_by_name(&self, name: &str) -> DbcResult<i64> {
        self.get_i64(self.find_column(name)?)
    }
    /// See [`ResultSet::get_f64`].
    fn get_f64_by_name(&self, name: &str) -> DbcResult<f64> {
        self.get_f64(self.find_column(name)?)
    }
    /// See [`ResultSet::get_bool`].
    fn get_bool_by_name(&self, name: &str) -> DbcResult<bool> {
        self.get_bool(self.find_column(name)?)
    }
    /// See [`ResultSet::get_string`].
    fn get_string_by_name(&self, name: &str) -> DbcResult<String> {
        self.get_string(self.find_column(name)?)
    }

    /// Current row as a vector of values.
    fn row_values(&self) -> DbcResult<Vec<SqlValue>> {
        let n = self.metadata().column_count();
        let mut row = Vec::with_capacity(n);
        for i in 0..n {
            row.push(self.get(i)?);
        }
        Ok(row)
    }

    // ---- optional capabilities (NotImplemented by default, §3.2.1) ------

    /// Rewind the cursor to before the first row (scrollable results only).
    fn before_first(&mut self) -> DbcResult<()> {
        Err(SqlError::NotImplemented("before_first"))
    }

    /// Total number of rows, when known without consuming the cursor.
    fn row_count(&self) -> DbcResult<usize> {
        Err(SqlError::NotImplemented("row_count"))
    }

    /// Update a cell in the current row (updatable results only).
    fn update(&mut self, _column: usize, _value: SqlValue) -> DbcResult<()> {
        Err(SqlError::NotImplemented("update"))
    }

    /// Release any resources; the default is a no-op.
    fn close(&mut self) -> DbcResult<()> {
        Ok(())
    }

    // ---- helpers --------------------------------------------------------

    /// Human-readable label for error messages.
    fn column_label(&self, column: usize) -> String {
        self.metadata()
            .column_name(column)
            .map(str::to_owned)
            .unwrap_or_else(|_| format!("#{column}"))
    }
}

/// Materialised, in-memory result set — the workhorse implementation every
/// bundled driver returns, and the form results take when shipped between
/// gateways.
#[derive(Debug, Clone, PartialEq)]
pub struct RowSet {
    meta: ResultSetMetaData,
    rows: Vec<Vec<SqlValue>>,
    /// Cursor: `None` = before first; `Some(i)` = on row `i`.
    cursor: Option<usize>,
    exhausted: bool,
}

impl RowSet {
    /// Build from metadata and rows. Each row must match the column count.
    pub fn new(meta: ResultSetMetaData, rows: Vec<Vec<SqlValue>>) -> DbcResult<RowSet> {
        let n = meta.column_count();
        if let Some(bad) = rows.iter().find(|r| r.len() != n) {
            return Err(SqlError::Driver(format!(
                "row arity {} does not match {} columns",
                bad.len(),
                n
            )));
        }
        Ok(RowSet {
            meta,
            rows,
            cursor: None,
            exhausted: false,
        })
    }

    /// Empty result with the given columns.
    pub fn empty(meta: ResultSetMetaData) -> RowSet {
        RowSet {
            meta,
            rows: Vec::new(),
            cursor: None,
            exhausted: false,
        }
    }

    /// Drain any [`ResultSet`] into a materialised `RowSet`.
    pub fn materialize(rs: &mut dyn ResultSet) -> DbcResult<RowSet> {
        let meta = rs.metadata().clone();
        let mut rows = Vec::new();
        while rs.advance()? {
            rows.push(rs.row_values()?);
        }
        RowSet::new(meta, rows)
    }

    /// Direct access to the rows (no cursor).
    pub fn rows(&self) -> &[Vec<SqlValue>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The metadata (also available through the trait).
    pub fn meta(&self) -> &ResultSetMetaData {
        &self.meta
    }

    /// Append another result set with identical column names; used by the
    /// RequestManager to consolidate multi-source queries (§3.1.1).
    pub fn append(&mut self, other: RowSet) -> DbcResult<()> {
        if other.meta.column_count() != self.meta.column_count() {
            return Err(SqlError::Driver(format!(
                "cannot consolidate: {} vs {} columns",
                other.meta.column_count(),
                self.meta.column_count()
            )));
        }
        self.rows.extend(other.rows);
        Ok(())
    }

    /// Pretty-print as an aligned text table (used by examples/harness).
    pub fn to_table_string(&self) -> String {
        let n = self.meta.column_count();
        let mut widths: Vec<usize> = (0..n)
            .map(|i| self.meta.column_name(i).map(str::len).unwrap_or(1))
            .collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(SqlValue::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, width) in widths.iter().enumerate() {
            let name = self.meta.column_name(i).unwrap_or("?");
            out.push_str(&format!("{name:<width$}  "));
        }
        out.push('\n');
        for w in &widths {
            out.push_str(&"-".repeat(*w));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{cell:<width$}  ", width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl ResultSet for RowSet {
    fn advance(&mut self) -> DbcResult<bool> {
        if self.exhausted {
            return Ok(false);
        }
        let next = match self.cursor {
            None => 0,
            Some(i) => i + 1,
        };
        if next < self.rows.len() {
            self.cursor = Some(next);
            Ok(true)
        } else {
            self.exhausted = true;
            Ok(false)
        }
    }

    fn get(&self, column: usize) -> DbcResult<SqlValue> {
        let Some(i) = self.cursor else {
            return Err(SqlError::CursorOutOfRange);
        };
        if self.exhausted {
            return Err(SqlError::CursorOutOfRange);
        }
        self.rows[i]
            .get(column)
            .cloned()
            .ok_or(SqlError::CursorOutOfRange)
    }

    fn metadata(&self) -> &ResultSetMetaData {
        &self.meta
    }

    fn before_first(&mut self) -> DbcResult<()> {
        self.cursor = None;
        self.exhausted = false;
        Ok(())
    }

    fn row_count(&self) -> DbcResult<usize> {
        Ok(self.rows.len())
    }

    fn update(&mut self, column: usize, value: SqlValue) -> DbcResult<()> {
        let Some(i) = self.cursor else {
            return Err(SqlError::CursorOutOfRange);
        };
        let cell = self.rows[i]
            .get_mut(column)
            .ok_or(SqlError::CursorOutOfRange)?;
        *cell = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RowSet {
        RowSet::new(
            ResultSetMetaData::from_pairs(&[
                ("Hostname", SqlType::Str),
                ("Load1", SqlType::Float),
                ("NCpu", SqlType::Int),
            ]),
            vec![
                vec!["node01".into(), SqlValue::Float(0.5), SqlValue::Int(4)],
                vec!["node02".into(), SqlValue::Null, SqlValue::Int(8)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn cursor_protocol() {
        let mut rs = sample();
        // Before first: no access.
        assert_eq!(rs.get(0), Err(SqlError::CursorOutOfRange));
        assert!(rs.advance().unwrap());
        assert_eq!(rs.get_string(0).unwrap(), "node01");
        assert!(rs.advance().unwrap());
        assert!(!rs.advance().unwrap());
        assert!(!rs.advance().unwrap()); // stays exhausted
        assert_eq!(rs.get(0), Err(SqlError::CursorOutOfRange));
    }

    #[test]
    fn typed_getters_and_nulls() {
        let mut rs = sample();
        rs.advance().unwrap();
        assert_eq!(rs.get_f64_by_name("Load1").unwrap(), 0.5);
        assert_eq!(rs.get_i64_by_name("NCpu").unwrap(), 4);
        assert!(!rs.is_null(1).unwrap());
        rs.advance().unwrap();
        assert!(rs.is_null(1).unwrap());
        assert!(matches!(
            rs.get_f64_by_name("Load1"),
            Err(SqlError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn case_insensitive_column_lookup() {
        let rs = sample();
        assert_eq!(rs.find_column("hostname").unwrap(), 0);
        assert_eq!(rs.find_column("LOAD1").unwrap(), 1);
        assert!(matches!(
            rs.find_column("nope"),
            Err(SqlError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn rewind_and_row_count() {
        let mut rs = sample();
        assert_eq!(rs.row_count().unwrap(), 2);
        while rs.advance().unwrap() {}
        rs.before_first().unwrap();
        assert!(rs.advance().unwrap());
        assert_eq!(rs.get_string(0).unwrap(), "node01");
    }

    #[test]
    fn arity_checked_on_construction() {
        let bad = RowSet::new(
            ResultSetMetaData::from_pairs(&[("a", SqlType::Int)]),
            vec![vec![SqlValue::Int(1), SqlValue::Int(2)]],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn materialize_copies_everything() {
        let mut src = sample();
        let copy = RowSet::materialize(&mut src).unwrap();
        assert_eq!(copy.len(), 2);
        assert_eq!(copy.rows()[1][2], SqlValue::Int(8));
    }

    #[test]
    fn append_consolidates() {
        let mut a = sample();
        let b = sample();
        a.append(b).unwrap();
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn append_rejects_mismatched_shapes() {
        let mut a = sample();
        let b = RowSet::empty(ResultSetMetaData::from_pairs(&[("x", SqlType::Int)]));
        assert!(a.append(b).is_err());
    }

    #[test]
    fn update_in_place() {
        let mut rs = sample();
        rs.advance().unwrap();
        rs.update(1, SqlValue::Float(9.9)).unwrap();
        assert_eq!(rs.get_f64(1).unwrap(), 9.9);
    }

    #[test]
    fn default_optional_methods_error() {
        // A minimal driver result set: only the three required methods.
        struct Minimal {
            meta: ResultSetMetaData,
        }
        impl ResultSet for Minimal {
            fn advance(&mut self) -> DbcResult<bool> {
                Ok(false)
            }
            fn get(&self, _c: usize) -> DbcResult<SqlValue> {
                Err(SqlError::CursorOutOfRange)
            }
            fn metadata(&self) -> &ResultSetMetaData {
                &self.meta
            }
        }
        let mut m = Minimal {
            meta: ResultSetMetaData::default(),
        };
        // Optional capabilities behave like the paper's SQLException-throwing
        // superclass methods.
        assert_eq!(
            m.before_first(),
            Err(SqlError::NotImplemented("before_first"))
        );
        assert_eq!(m.row_count(), Err(SqlError::NotImplemented("row_count")));
        assert_eq!(
            m.update(0, SqlValue::Null),
            Err(SqlError::NotImplemented("update"))
        );
        assert_eq!(m.close(), Ok(()));
    }

    #[test]
    fn table_rendering() {
        let t = sample().to_table_string();
        assert!(t.contains("Hostname"));
        assert!(t.contains("node01"));
        assert!(t.contains("NULL"));
    }
}
