//! The `DriverManager` role: a thread-safe registry of driver plug-ins with
//! first-match URL resolution (paper Table 2).
//!
//! This is the *base* registry; the gateway wraps it in the richer
//! `GridRMDriverManager` (crate `gridrm-core`) which adds static
//! preferences, a last-success cache and failure policies (§3.1.3).

use crate::connection::Connection;
use crate::driver::{Driver, DriverMetaData, Properties};
use crate::error::{DbcResult, SqlError};
use crate::url::JdbcUrl;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing how much work URL→driver resolution has done;
/// experiment E5 reads these to show the value of the driver cache.
#[derive(Debug, Default)]
pub struct SelectionStats {
    /// Number of `locate` scans performed.
    pub scans: AtomicU64,
    /// Total `accepts_url` probes made across all scans.
    pub probes: AtomicU64,
}

impl SelectionStats {
    /// Snapshot `(scans, probes)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.scans.load(Ordering::Relaxed),
            self.probes.load(Ordering::Relaxed),
        )
    }
}

/// Thread-safe registry of [`Driver`] plug-ins.
///
/// Drivers can be registered and removed at runtime "without affecting
/// normal Gateway operation" (§3.2): registration takes a short write lock,
/// while query-path lookups take read locks and clone `Arc`s out.
#[derive(Default)]
pub struct DriverManager {
    drivers: RwLock<Vec<Arc<dyn Driver>>>,
    stats: SelectionStats,
}

impl DriverManager {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a driver. Mirrors the paper's
    /// `DriverManager.registerDriver(driverClass.newInstance())` (Table 1):
    /// anything implementing [`Driver`] can be registered, with no
    /// compile-time knowledge of the concrete type. Re-registering a driver
    /// with the same name replaces the old instance (an upgrade).
    pub fn register(&self, driver: Arc<dyn Driver>) {
        let name = driver.name();
        let mut drivers = self.drivers.write();
        if let Some(existing) = drivers.iter_mut().find(|d| d.name() == name) {
            *existing = driver;
        } else {
            drivers.push(driver);
        }
    }

    /// Remove a driver by name; returns whether anything was removed.
    pub fn unregister(&self, name: &str) -> bool {
        let mut drivers = self.drivers.write();
        let before = drivers.len();
        drivers.retain(|d| d.name() != name);
        drivers.len() != before
    }

    /// All registered drivers, in registration (priority) order.
    pub fn drivers(&self) -> Vec<Arc<dyn Driver>> {
        self.drivers.read().clone()
    }

    /// Metadata of all registered drivers.
    pub fn driver_metas(&self) -> Vec<DriverMetaData> {
        self.drivers.read().iter().map(|d| d.meta()).collect()
    }

    /// Look up a driver by registered name.
    pub fn get_by_name(&self, name: &str) -> Option<Arc<dyn Driver>> {
        self.drivers
            .read()
            .iter()
            .find(|d| d.name() == name)
            .cloned()
    }

    /// Number of registered drivers.
    pub fn len(&self) -> usize {
        self.drivers.read().len()
    }

    /// True when no drivers are registered.
    pub fn is_empty(&self) -> bool {
        self.drivers.read().is_empty()
    }

    /// Dynamically locate a driver for `url` — the paper's Table 2 loop:
    /// iterate registered drivers, return the first whose `accepts_url`
    /// says it "supports the URL AND can connect to the data source".
    pub fn locate(&self, url: &JdbcUrl) -> DbcResult<Arc<dyn Driver>> {
        let drivers = self.drivers.read().clone();
        self.stats.scans.fetch_add(1, Ordering::Relaxed);
        for d in &drivers {
            self.stats.probes.fetch_add(1, Ordering::Relaxed);
            if d.accepts_url(url) {
                return Ok(d.clone());
            }
        }
        Err(SqlError::NoSuitableDriver(url.to_string()))
    }

    /// Locate a driver and open a connection in one step (the
    /// `DriverManager.getConnection` role).
    pub fn connect(&self, url: &JdbcUrl, props: &Properties) -> DbcResult<Box<dyn Connection>> {
        self.locate(url)?.connect(url, props)
    }

    /// Resolution work counters.
    pub fn stats(&self) -> &SelectionStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ProtoDriver {
        proto: &'static str,
    }
    impl Driver for ProtoDriver {
        fn meta(&self) -> DriverMetaData {
            DriverMetaData {
                name: format!("jdbc-{}", self.proto),
                subprotocol: self.proto.into(),
                version: (1, 0),
                description: String::new(),
            }
        }
        fn accepts_url(&self, url: &JdbcUrl) -> bool {
            url.subprotocol == self.proto
        }
        fn connect(&self, _url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
            Err(SqlError::Connection("test driver".into()))
        }
    }

    fn manager() -> DriverManager {
        let m = DriverManager::new();
        m.register(Arc::new(ProtoDriver { proto: "snmp" }));
        m.register(Arc::new(ProtoDriver { proto: "ganglia" }));
        m.register(Arc::new(ProtoDriver { proto: "nws" }));
        m
    }

    #[test]
    fn register_and_locate_first_match() {
        let m = manager();
        assert_eq!(m.len(), 3);
        let d = m.locate(&JdbcUrl::new("ganglia", "h", "c")).unwrap();
        assert_eq!(d.name(), "jdbc-ganglia");
    }

    #[test]
    fn locate_miss_reports_no_suitable_driver() {
        let m = manager();
        let err = match m.locate(&JdbcUrl::new("ldap", "h", "")) {
            Err(e) => e,
            Ok(_) => panic!("expected lookup failure"),
        };
        assert!(matches!(err, SqlError::NoSuitableDriver(_)));
    }

    #[test]
    fn unregister_removes() {
        let m = manager();
        assert!(m.unregister("jdbc-snmp"));
        assert!(!m.unregister("jdbc-snmp"));
        assert!(m.locate(&JdbcUrl::new("snmp", "h", "")).is_err());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn reregistration_replaces_same_name() {
        let m = manager();
        m.register(Arc::new(ProtoDriver { proto: "snmp" }));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn probe_counting() {
        let m = manager();
        let _ = m.locate(&JdbcUrl::new("nws", "h", "")); // probes snmp, ganglia, nws
        let (scans, probes) = m.stats().snapshot();
        assert_eq!(scans, 1);
        assert_eq!(probes, 3);
    }

    #[test]
    fn get_by_name() {
        let m = manager();
        assert!(m.get_by_name("jdbc-nws").is_some());
        assert!(m.get_by_name("jdbc-x").is_none());
    }

    #[test]
    fn concurrent_register_and_locate() {
        let m = Arc::new(manager());
        let mut handles = Vec::new();
        for i in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    if i % 2 == 0 {
                        m.register(Arc::new(ProtoDriver { proto: "snmp" }));
                    } else {
                        let _ = m.locate(&JdbcUrl::new("nws", "h", ""));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(m.locate(&JdbcUrl::new("snmp", "h", "")).is_ok());
    }
}
