//! JDBC-style URL parsing.
//!
//! GridRM addresses data sources with URLs of the form
//! `jdbc:<subprotocol>://host[:port]/path[?k=v&...]` (§3.2.2). The paper
//! explicitly allows an *empty* sub-protocol — `jdbc:://snowboard.workgroup/
//! perfdata` — meaning "use the first available driver", while
//! `jdbc:nws://snowboard.workgroup/perfdata` pins the NWS driver.

use crate::error::{DbcResult, SqlError};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed JDBC-style data-source URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JdbcUrl {
    /// Sub-protocol, e.g. `snmp`; empty string means "any driver" (§3.2.2).
    pub subprotocol: String,
    /// Host name of the data source.
    pub host: String,
    /// Optional explicit port.
    pub port: Option<u16>,
    /// Path component without the leading `/` (e.g. `perfdata`, a
    /// community string, a cluster name — driver-specific).
    pub path: String,
    /// Query parameters, sorted for deterministic printing.
    pub params: BTreeMap<String, String>,
}

impl JdbcUrl {
    /// Parse a URL string. Accepts `jdbc:` prefixed and bare forms.
    pub fn parse(raw: &str) -> DbcResult<JdbcUrl> {
        let rest = raw
            .strip_prefix("jdbc:")
            .ok_or_else(|| SqlError::Syntax(format!("URL must start with 'jdbc:': {raw}")))?;
        let (subprotocol, rest) = match rest.find("://") {
            Some(idx) => (&rest[..idx], &rest[idx + 3..]),
            None => {
                return Err(SqlError::Syntax(format!(
                    "URL missing '://' authority separator: {raw}"
                )))
            }
        };
        if !subprotocol
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(SqlError::Syntax(format!(
                "invalid sub-protocol '{subprotocol}' in {raw}"
            )));
        }
        let (authority_path, query) = match rest.split_once('?') {
            Some((a, q)) => (a, Some(q)),
            None => (rest, None),
        };
        let (authority, path) = match authority_path.split_once('/') {
            Some((a, p)) => (a, p),
            None => (authority_path, ""),
        };
        if authority.is_empty() {
            return Err(SqlError::Syntax(format!("URL missing host: {raw}")));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| SqlError::Syntax(format!("invalid port '{p}' in {raw}")))?;
                (h.to_owned(), Some(port))
            }
            None => (authority.to_owned(), None),
        };
        let mut params = BTreeMap::new();
        if let Some(q) = query {
            for pair in q.split('&').filter(|s| !s.is_empty()) {
                match pair.split_once('=') {
                    Some((k, v)) => params.insert(k.to_owned(), v.to_owned()),
                    None => params.insert(pair.to_owned(), String::new()),
                };
            }
        }
        Ok(JdbcUrl {
            subprotocol: subprotocol.to_owned(),
            host,
            port,
            path: path.to_owned(),
            params,
        })
    }

    /// Construct programmatically.
    pub fn new(subprotocol: &str, host: &str, path: &str) -> JdbcUrl {
        JdbcUrl {
            subprotocol: subprotocol.to_owned(),
            host: host.to_owned(),
            port: None,
            path: path.to_owned(),
            params: BTreeMap::new(),
        }
    }

    /// Builder: set the port.
    pub fn with_port(mut self, port: u16) -> JdbcUrl {
        self.port = Some(port);
        self
    }

    /// Builder: add a query parameter.
    pub fn with_param(mut self, k: &str, v: &str) -> JdbcUrl {
        self.params.insert(k.to_owned(), v.to_owned());
        self
    }

    /// True when the URL leaves driver choice open (`jdbc:://...`, §3.2.2).
    pub fn is_wildcard(&self) -> bool {
        self.subprotocol.is_empty()
    }

    /// Canonical string form (round-trips through [`JdbcUrl::parse`]).
    pub fn canonical(&self) -> String {
        self.to_string()
    }

    /// Fetch a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }
}

impl fmt::Display for JdbcUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jdbc:{}://{}", self.subprotocol, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        write!(f, "/{}", self.path)?;
        if !self.params.is_empty() {
            f.write_str("?")?;
            for (i, (k, v)) in self.params.iter().enumerate() {
                if i > 0 {
                    f.write_str("&")?;
                }
                if v.is_empty() {
                    write!(f, "{k}")?;
                } else {
                    write!(f, "{k}={v}")?;
                }
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for JdbcUrl {
    type Err = SqlError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        JdbcUrl::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_examples() {
        // Both URL forms from §3.2.2 of the paper.
        let any = JdbcUrl::parse("jdbc:://snowboard.workgroup/perfdata").unwrap();
        assert!(any.is_wildcard());
        assert_eq!(any.host, "snowboard.workgroup");
        assert_eq!(any.path, "perfdata");

        let nws = JdbcUrl::parse("jdbc:nws://snowboard.workgroup/perfdata").unwrap();
        assert_eq!(nws.subprotocol, "nws");
        assert!(!nws.is_wildcard());
    }

    #[test]
    fn parse_with_port_and_params() {
        let u = JdbcUrl::parse("jdbc:snmp://node01:161/public?timeout=5&retries=2").unwrap();
        assert_eq!(u.port, Some(161));
        assert_eq!(u.path, "public");
        assert_eq!(u.param("timeout"), Some("5"));
        assert_eq!(u.param("retries"), Some("2"));
        assert_eq!(u.param("missing"), None);
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "jdbc:snmp://node01:161/public?retries=2&timeout=5",
            "jdbc:://host/",
            "jdbc:ganglia://gmond.site-a/cluster0",
        ] {
            let u = JdbcUrl::parse(s).unwrap();
            assert_eq!(u.to_string(), s);
            assert_eq!(JdbcUrl::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn rejects_bad_urls() {
        assert!(JdbcUrl::parse("snmp://host/x").is_err()); // no jdbc:
        assert!(JdbcUrl::parse("jdbc:snmp:host").is_err()); // no ://
        assert!(JdbcUrl::parse("jdbc:snmp:///x").is_err()); // empty host
        assert!(JdbcUrl::parse("jdbc:snmp://h:99999/x").is_err()); // bad port
        assert!(JdbcUrl::parse("jdbc:s p://h/x").is_err()); // bad proto
    }

    #[test]
    fn empty_path_allowed() {
        let u = JdbcUrl::parse("jdbc:scms://head-node/").unwrap();
        assert_eq!(u.path, "");
        let u = JdbcUrl::parse("jdbc:scms://head-node").unwrap();
        assert_eq!(u.path, "");
    }

    #[test]
    fn builder_api() {
        let u = JdbcUrl::new("snmp", "node01", "public")
            .with_port(161)
            .with_param("timeout", "5");
        assert_eq!(u.to_string(), "jdbc:snmp://node01:161/public?timeout=5");
    }

    #[test]
    fn valueless_param() {
        let u = JdbcUrl::parse("jdbc:x://h/p?flag").unwrap();
        assert_eq!(u.param("flag"), Some(""));
        assert_eq!(u.to_string(), "jdbc:x://h/p?flag");
    }
}
