//! The `Driver` role: the entry point of a GridRM data-source plug-in.

use crate::connection::Connection;
use crate::error::DbcResult;
use crate::url::JdbcUrl;
use std::collections::BTreeMap;

/// Connection properties (the `java.util.Properties` argument of
/// `Driver.connect`). Keys are driver-specific, e.g. an SNMP community
/// string or a Ganglia parse mode.
pub type Properties = BTreeMap<String, String>;

/// Static description of a driver, mirroring the paper's `DriverMetaData`
/// used during registration (Table 1): the registration component "remains
/// generic by avoiding any direct reference to the driver's actual class
/// name".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DriverMetaData {
    /// Unique driver name, e.g. `jdbc-snmp`.
    pub name: String,
    /// Sub-protocol the driver serves, e.g. `snmp`.
    pub subprotocol: String,
    /// Version `(major, minor)`.
    pub version: (u32, u32),
    /// Human-readable description.
    pub description: String,
}

/// A GridRM data-source driver (the `java.sql.Driver` role).
///
/// The paper's minimal-driver contract (§3.2.1): the driver "determines if
/// \[it\] is capable of operating with the specified data source"
/// ([`Driver::accepts_url`]) and opens sessions ([`Driver::connect`]).
/// Drivers must be `Send + Sync`: the gateway shares them across request
/// handling threads.
pub trait Driver: Send + Sync {
    /// Static metadata used by the registration machinery.
    fn meta(&self) -> DriverMetaData;

    /// Can this driver talk to the data source named by `url`?
    ///
    /// This is the predicate the `GridRMDriverManager` scans during dynamic
    /// driver location (Table 2 of the paper): the first registered driver
    /// returning `true` is used. Implementations should be cheap — they are
    /// called once per registered driver on a cache miss — and should accept
    /// wildcard URLs (`jdbc:://…`) only if they can actually probe the host.
    fn accepts_url(&self, url: &JdbcUrl) -> bool;

    /// Open a session with the data source.
    fn connect(&self, url: &JdbcUrl, props: &Properties) -> DbcResult<Box<dyn Connection>>;

    /// Convenience: the driver's registered name.
    fn name(&self) -> String {
        self.meta().name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SqlError;

    struct NullDriver;
    impl Driver for NullDriver {
        fn meta(&self) -> DriverMetaData {
            DriverMetaData {
                name: "jdbc-null".into(),
                subprotocol: "null".into(),
                version: (1, 2),
                description: "accepts nothing".into(),
            }
        }
        fn accepts_url(&self, url: &JdbcUrl) -> bool {
            url.subprotocol == "null"
        }
        fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
            Err(SqlError::Connection(format!("cannot connect to {url}")))
        }
    }

    #[test]
    fn meta_and_accepts() {
        let d = NullDriver;
        assert_eq!(d.name(), "jdbc-null");
        assert_eq!(d.meta().version, (1, 2));
        assert!(d.accepts_url(&JdbcUrl::new("null", "h", "")));
        assert!(!d.accepts_url(&JdbcUrl::new("snmp", "h", "")));
    }
}
