#![warn(missing_docs)]

//! # gridrm-dbc — the GridRM data-bridge connectivity layer
//!
//! A Rust rendering of the JDBC API roles the GridRM paper builds its driver
//! infrastructure on (§3, §3.2.1): *"The drivers, which are implemented using
//! the Java JDBC API, are passed a query, and in response, return a standard
//! Java SQL object (a `javax.sql.ResultSet`)"* — **"String queries in, and
//! ResultSets out."**
//!
//! The pieces map one-to-one onto the paper's minimal-driver checklist:
//!
//! | Paper (Java)              | Here                                        |
//! |---------------------------|---------------------------------------------|
//! | `java.sql.Driver`         | [`Driver`] trait                            |
//! | `java.sql.Connection`     | [`Connection`] trait                        |
//! | `java.sql.Statement`      | [`Statement`] trait                         |
//! | `java.sql.ResultSet`      | [`ResultSet`] trait + [`RowSet`] concrete   |
//! | `java.sql.ResultSetMetaData` | [`ResultSetMetaData`]                    |
//! | `java.sql.DriverManager`  | [`DriverManager`]                           |
//! | JDBC URL                  | [`JdbcUrl`]                                 |
//!
//! ## Incremental driver development
//!
//! The paper implements the JDBC interfaces "to return nulls or throw
//! `SQLExceptions`" so drivers can be grown incrementally. Rust traits give
//! the same effect through *default methods*: [`ResultSet`] requires only a
//! cursor (`advance`), a cell accessor (`get`) and metadata; the remaining
//! typed getters are defaults built on those, while optional capabilities
//! (rewinding, row counts, updates) default to
//! [`SqlError::NotImplemented`] — exactly the `SQLException` a partially
//! implemented Java driver would throw.

pub mod connection;
pub mod driver;
pub mod error;
pub mod manager;
pub mod result_set;
pub mod statement;
pub mod url;

pub use connection::{Connection, ConnectionMetadata};
pub use driver::{Driver, DriverMetaData, Properties};
pub use error::{DbcResult, GridRmError, SqlError};
pub use manager::{DriverManager, SelectionStats};
pub use result_set::{ColumnMeta, ResultSet, ResultSetMetaData, RowSet};
pub use statement::Statement;
pub use url::JdbcUrl;

// The shared value/type vocabulary comes from the SQL crate.
pub use gridrm_sqlparse::{SqlType, SqlValue};
