//! One-call installation of the standard driver set into a gateway.

use crate::base::DriverEnv;
use crate::{
    mappings, GangliaDriver, NetLoggerDriver, NwsDriver, ScmsDriver, SnmpDriver, SqlStoreDriver,
};
use gridrm_dbc::DriverManager;
use std::sync::Arc;

/// Register the paper's initial driver set — "SNMP, Ganglia, NWS, Net
/// Logger and SCMS" (§3.2.4) — plus the local SQL-store driver, together
/// with their GLUE mappings. Mirrors the gateway's start-up registration
/// of "a number of drivers that come as default with the site" (§3.2.2).
///
/// Registration order matters: it is the priority order the Table 2 scan
/// probes wildcard URLs in. SNMP first (cheapest probe), then the
/// coarse-grained drivers, then the local store.
pub fn register_standard_drivers(manager: &DriverManager, env: &Arc<DriverEnv>) {
    env.schema.register_mapping(mappings::snmp_mapping());
    env.schema.register_mapping(mappings::ganglia_mapping());
    env.schema.register_mapping(mappings::nws_mapping());
    env.schema.register_mapping(mappings::netlogger_mapping());
    env.schema.register_mapping(mappings::scms_mapping());

    manager.register(SnmpDriver::new(env.clone()));
    manager.register(GangliaDriver::new(env.clone()));
    manager.register(NwsDriver::new(env.clone()));
    manager.register(NetLoggerDriver::new(env.clone()));
    manager.register(ScmsDriver::new(env.clone()));
    manager.register(SqlStoreDriver::new(env.clone()));
}

/// Install GridRM-rs's standard event formatters into an Event Manager
/// (Fig 4's per-driver formatter plug-ins).
pub fn install_standard_formatters(events: &gridrm_core::events::EventManager) {
    events.register_formatter(Arc::new(crate::formatters::SnmpTrapFormatter));
    events.register_formatter(Arc::new(crate::formatters::NetLoggerLineFormatter));
}

/// One-call gateway bootstrap: build the [`DriverEnv`] from a gateway's
/// own network/schema/identity, mount its history store as `history`,
/// register the standard drivers with the GridRM Driver Manager and plug
/// in the standard event formatters. Returns the environment so callers
/// can mount further stores or build additional drivers.
pub fn install_into_gateway(gateway: &gridrm_core::Gateway) -> Arc<DriverEnv> {
    let env = DriverEnv::new(
        gateway.network().clone(),
        gateway.schema().clone(),
        &gateway.config().address,
    );
    env.mount_store("history", gateway.history().store().clone());
    register_standard_drivers(gateway.driver_manager().base(), &env);
    // The gateway's own metrics, health, journal, slow-query log and
    // live subscriptions, queryable as the `gridrm_telemetry`/
    // `gridrm_health`/`gridrm_journal`/`gridrm_slow_queries`/
    // `gridrm_subscriptions` virtual tables via
    // `jdbc:telemetry://local/metrics`.
    gateway
        .driver_manager()
        .register(crate::TelemetryDriver::with_streams(
            gateway.telemetry().clone(),
            Some(gateway.health().clone()),
            Some(gateway.streams().clone()),
        ));
    install_standard_formatters(gateway.events());
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_agents::deploy_site;
    use gridrm_dbc::{JdbcUrl, Properties, RowSet};
    use gridrm_glue::SchemaManager;
    use gridrm_resmodel::{SiteModel, SiteSpec};
    use gridrm_simnet::{Network, SimClock};

    fn setup() -> (Arc<DriverEnv>, DriverManager) {
        let net = Network::new(SimClock::new(), 11);
        let mut spec = SiteSpec::new("r", 3, 2);
        spec.peers = vec!["node00.elsewhere".to_owned()];
        let site = SiteModel::generate(31, &spec);
        site.advance_to(600_000);
        let agents = deploy_site(&net, site);
        agents.pump();
        let env = DriverEnv::new(net, Arc::new(SchemaManager::new()), "gw");
        env.mount_store("history", gridrm_store::Store::new());
        let dm = DriverManager::new();
        register_standard_drivers(&dm, &env);
        (env, dm)
    }

    #[test]
    fn six_drivers_registered_with_mappings() {
        let (env, dm) = setup();
        assert_eq!(dm.len(), 6);
        assert_eq!(env.schema.mapped_drivers().len(), 5);
    }

    #[test]
    fn static_urls_resolve_to_right_driver() {
        let (_env, dm) = setup();
        for (url, name) in [
            ("jdbc:snmp://node01.r/public", "jdbc-snmp"),
            ("jdbc:ganglia://node00.r/r", "jdbc-ganglia"),
            ("jdbc:nws://node00.r/perf", "jdbc-nws"),
            ("jdbc:netlogger://node00.r/log", "jdbc-netlogger"),
            ("jdbc:scms://node00.r/", "jdbc-scms"),
            ("jdbc:gridrm://local/history", "jdbc-gridrm"),
        ] {
            let d = dm.locate(&JdbcUrl::parse(url).unwrap()).unwrap();
            assert_eq!(d.name(), name, "for {url}");
        }
    }

    #[test]
    fn wildcard_url_dynamic_selection_paper_example() {
        // §3.2.2: `jdbc:://host/path` uses "the first available driver".
        let (_env, dm) = setup();
        // An SNMP host with community 'public': SNMP probes first and wins.
        let d = dm
            .locate(&JdbcUrl::parse("jdbc:://node01.r/public").unwrap())
            .unwrap();
        assert_eq!(d.name(), "jdbc-snmp");
        // No driver for a dead host.
        assert!(dm
            .locate(&JdbcUrl::parse("jdbc:://deadhost/x").unwrap())
            .is_err());
    }

    #[test]
    fn same_query_same_answer_shape_across_drivers() {
        // The homogeneity claim (§1): `SELECT Hostname, Load1 FROM
        // Processor` works identically against SNMP, Ganglia and SCMS.
        let (_env, dm) = setup();
        let sql = "SELECT Hostname, Load1 FROM Processor WHERE Hostname = 'node01.r'";
        let mut answers = Vec::new();
        for url in [
            "jdbc:snmp://node01.r/public",
            "jdbc:ganglia://node00.r/r",
            "jdbc:scms://node00.r/",
        ] {
            let url = JdbcUrl::parse(url).unwrap();
            let mut conn = dm.connect(&url, &Properties::new()).unwrap();
            let mut stmt = conn.create_statement().unwrap();
            let mut rs = stmt.execute_query(sql).unwrap();
            let rs = RowSet::materialize(rs.as_mut()).unwrap();
            assert_eq!(rs.len(), 1, "via {url}");
            assert_eq!(rs.meta().column_name(0).unwrap(), "Hostname");
            assert_eq!(rs.meta().column_name(1).unwrap(), "Load1");
            let host = rs.rows()[0][0].clone();
            let load = rs.rows()[0][1].as_f64().unwrap();
            answers.push((host, load));
        }
        // All three report the same host and closely agreeing loads (the
        // sources quantise differently: SNMP is centi-load, Ganglia prints
        // two decimals).
        assert!(answers
            .iter()
            .all(|(h, _)| h == &gridrm_sqlparse::SqlValue::Str("node01.r".into())));
        let loads: Vec<f64> = answers.iter().map(|(_, l)| *l).collect();
        let spread = loads.iter().cloned().fold(f64::MIN, f64::max)
            - loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.02, "loads disagree: {loads:?}");
    }

    #[test]
    fn runtime_unregister_reroutes_wildcards() {
        let (_env, dm) = setup();
        // Kill the SNMP driver; the wildcard URL should now fall through
        // to another driver that can talk to the head node.
        dm.unregister("jdbc-snmp");
        let d = dm
            .locate(&JdbcUrl::parse("jdbc:://node00.r/x").unwrap())
            .unwrap();
        assert_eq!(d.name(), "jdbc-ganglia");
    }
}
