//! The JDBC-Ganglia driver: coarse-grained whole-cluster XML responses
//! (§3.2.4: "responses are typically coarse grained. A greater overhead is
//! required to parse values from the response, which is typically XML").
//!
//! Per the paper's guidance that "implementations should address these
//! issues by using caching policies within the plug-in, as appropriate for
//! the characteristics of a particular type of data source", this driver
//! supports:
//!
//! * a TTL cache of the raw dump (`?ttl=<ms>`, default 5000 virtual ms) —
//!   one gmond fetch serves many queries;
//! * eager (`?parse=eager`, default) vs lazy (`?parse=lazy`) parsing —
//!   eager runs the full XML scanner once and caches typed rows; lazy
//!   string-scans only the metrics a query actually needs.
//!
//! URL form: `jdbc:ganglia://<head-host>/<cluster>[?ttl=ms&parse=mode]`.

use crate::base::{
    finish_select, glue_translate, guess_value, parse_select, DriverEnv, DriverStats,
};
use crate::xml::{attr, scan, XmlEvent};
use gridrm_dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, SqlError,
    Statement,
};
use gridrm_glue::{NativeRow, SchemaHandle, Translator};
use gridrm_sqlparse::SqlValue;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Driver name as registered with the gateway.
pub const DRIVER_NAME: &str = "jdbc-ganglia";

/// Parse strategy for the XML dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseMode {
    /// Full scan once, typed rows cached.
    Eager,
    /// Per-query string scan extracting only needed metrics.
    Lazy,
}

struct CacheEntry {
    fetched_ms: u64,
    raw: Arc<String>,
    parsed: Option<Arc<Vec<NativeRow>>>,
}

/// The JDBC-Ganglia [`Driver`].
pub struct GangliaDriver {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    cache: Mutex<HashMap<String, CacheEntry>>,
    /// Self-reference so `connect(&self)` can hand statements a shared
    /// handle to the driver-level TTL cache.
    this: std::sync::Weak<GangliaDriver>,
}

impl GangliaDriver {
    /// Create the driver over a gateway environment.
    pub fn new(env: Arc<DriverEnv>) -> Arc<GangliaDriver> {
        Arc::new_cyclic(|this| GangliaDriver {
            env,
            stats: Arc::new(DriverStats::default()),
            cache: Mutex::new(HashMap::new()),
            this: this.clone(),
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> Arc<DriverStats> {
        self.stats.clone()
    }

    fn ttl_of(url: &JdbcUrl) -> u64 {
        url.param("ttl")
            .and_then(|s| s.parse().ok())
            .unwrap_or(5000)
    }

    fn mode_of(url: &JdbcUrl) -> ParseMode {
        match url.param("parse") {
            Some("lazy") => ParseMode::Lazy,
            _ => ParseMode::Eager,
        }
    }

    /// Fetch the raw dump, honouring the TTL cache.
    fn fetch_raw(&self, url: &JdbcUrl) -> DbcResult<Arc<String>> {
        let now = self.env.clock.now_millis();
        let ttl = Self::ttl_of(url);
        {
            let cache = self.cache.lock();
            if let Some(entry) = cache.get(&url.host) {
                if ttl > 0 && now.saturating_sub(entry.fetched_ms) < ttl {
                    self.stats.hit();
                    return Ok(entry.raw.clone());
                }
            }
        }
        self.stats.native();
        let bytes = self.env.native_request(&url.host, "ganglia", b"")?;
        let raw = Arc::new(
            String::from_utf8(bytes)
                .map_err(|_| SqlError::Driver("gmond returned non-UTF-8 XML".into()))?,
        );
        self.cache.lock().insert(
            url.host.clone(),
            CacheEntry {
                fetched_ms: now,
                raw: raw.clone(),
                parsed: None,
            },
        );
        Ok(raw)
    }

    /// Eager path: parsed rows, cached alongside the raw text.
    fn fetch_parsed(&self, url: &JdbcUrl) -> DbcResult<Arc<Vec<NativeRow>>> {
        let raw = self.fetch_raw(url)?;
        {
            let cache = self.cache.lock();
            if let Some(entry) = cache.get(&url.host) {
                if Arc::ptr_eq(&entry.raw, &raw) {
                    if let Some(parsed) = &entry.parsed {
                        return Ok(parsed.clone());
                    }
                }
            }
        }
        self.stats.parsed(raw.len());
        let rows = Arc::new(parse_dump_eager(&raw)?);
        let mut cache = self.cache.lock();
        if let Some(entry) = cache.get_mut(&url.host) {
            if Arc::ptr_eq(&entry.raw, &raw) {
                entry.parsed = Some(rows.clone());
            }
        }
        Ok(rows)
    }
}

/// Full XML scan into one native row per host.
pub fn parse_dump_eager(xml: &str) -> DbcResult<Vec<NativeRow>> {
    let events = scan(xml).map_err(|e| SqlError::Driver(format!("bad gmond XML: {e}")))?;
    let mut rows = Vec::new();
    let mut current: Option<NativeRow> = None;
    for ev in events {
        match ev {
            XmlEvent::Open { name, attrs } if name == "HOST" => {
                let mut row = NativeRow::new();
                if let Some(h) = attr(&attrs, "NAME") {
                    row.insert("host.name".into(), SqlValue::Str(h.to_owned()));
                }
                if let Some(ip) = attr(&attrs, "IP") {
                    row.insert("host.ip".into(), SqlValue::Str(ip.to_owned()));
                }
                if let Some(rep) = attr(&attrs, "REPORTED") {
                    row.insert("host.reported".into(), guess_value(rep));
                }
                current = Some(row);
            }
            XmlEvent::SelfClose { name, attrs } if name == "METRIC" => {
                if let Some(row) = current.as_mut() {
                    if let (Some(metric), Some(val)) = (attr(&attrs, "NAME"), attr(&attrs, "VAL")) {
                        row.insert(metric.to_owned(), guess_value(val));
                    }
                }
            }
            XmlEvent::Close { name } if name == "HOST" => {
                if let Some(mut row) = current.take() {
                    // derived.uptime_sec = REPORTED - boottime.
                    let reported = row.get("host.reported").and_then(SqlValue::as_i64);
                    let boot = row.get("boottime").and_then(SqlValue::as_i64);
                    if let (Some(r), Some(b)) = (reported, boot) {
                        row.insert("derived.uptime_sec".into(), SqlValue::Int(r - b));
                    }
                    rows.push(row);
                }
            }
            _ => {}
        }
    }
    Ok(rows)
}

/// Lazy path: extract only `needed` metric names (plus host attributes)
/// with a line scan instead of a full XML parse.
pub fn parse_dump_lazy(xml: &str, needed: &[String]) -> Vec<NativeRow> {
    let mut rows = Vec::new();
    let mut current: Option<NativeRow> = None;
    for line in xml.lines() {
        let line = line.trim_start();
        if let Some(rest) = line.strip_prefix("<HOST ") {
            let mut row = NativeRow::new();
            if let Some(name) = extract_attr(rest, "NAME") {
                row.insert(
                    "host.name".into(),
                    SqlValue::Str(crate::xml::unescape(&name)),
                );
            }
            if let Some(ip) = extract_attr(rest, "IP") {
                row.insert("host.ip".into(), SqlValue::Str(ip));
            }
            if let Some(rep) = extract_attr(rest, "REPORTED") {
                row.insert("host.reported".into(), guess_value(&rep));
            }
            current = Some(row);
        } else if line.starts_with("</HOST>") {
            if let Some(mut row) = current.take() {
                if needed.iter().any(|n| n == "derived.uptime_sec") {
                    let reported = row.get("host.reported").and_then(SqlValue::as_i64);
                    let boot = row.get("boottime").and_then(SqlValue::as_i64);
                    if let (Some(r), Some(b)) = (reported, boot) {
                        row.insert("derived.uptime_sec".into(), SqlValue::Int(r - b));
                    }
                }
                rows.push(row);
            }
        } else if let Some(rest) = line.strip_prefix("<METRIC ") {
            let Some(row) = current.as_mut() else {
                continue;
            };
            let Some(name) = extract_attr(rest, "NAME") else {
                continue;
            };
            // `boottime` feeds the derived uptime, so treat it as needed
            // whenever uptime is.
            let wanted = needed.contains(&name)
                || (name == "boottime" && needed.iter().any(|n| n == "derived.uptime_sec"));
            if wanted {
                if let Some(val) = extract_attr(rest, "VAL") {
                    row.insert(name, guess_value(&val));
                }
            }
        }
    }
    rows
}

fn extract_attr(tag_rest: &str, key: &str) -> Option<String> {
    let pat = format!("{key}=\"");
    let idx = tag_rest.find(&pat)?;
    let rest = &tag_rest[idx + pat.len()..];
    let end = rest.find('"')?;
    Some(rest[..end].to_owned())
}

impl Driver for GangliaDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: DRIVER_NAME.to_owned(),
            subprotocol: "ganglia".to_owned(),
            version: (1, 0),
            description: "GridRM driver for Ganglia gmond XML cluster dumps".to_owned(),
        }
    }

    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        if url.subprotocol == "ganglia" {
            return true;
        }
        if !url.is_wildcard() {
            return false;
        }
        // Probe: a gmond answers any payload with an XML dump.
        matches!(
            self.env.native_request(&url.host, "ganglia", b""),
            Ok(bytes) if bytes.starts_with(b"<?xml")
        )
    }

    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        // Prime the cache (and verify connectivity).
        self.fetch_raw(url)?;
        let handle = self.env.schema.handle_for(DRIVER_NAME);
        Ok(Box::new(GangliaConnection {
            driver_env: self.env.clone(),
            stats: self.stats.clone(),
            this: self.this.upgrade(),
            url: url.clone(),
            handle,
            closed: false,
        }))
    }
}

struct GangliaConnection {
    driver_env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    /// The owning driver (shares the TTL cache). `None` only if the driver
    /// was dropped while connections were still alive.
    this: Option<Arc<GangliaDriver>>,
    url: JdbcUrl,
    handle: SchemaHandle,
    closed: bool,
}

impl Connection for GangliaConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        Ok(Box::new(GangliaStatement {
            env: self.driver_env.clone(),
            stats: self.stats.clone(),
            driver: self.this.clone(),
            url: self.url.clone(),
            handle: self.handle.clone(),
        }))
    }

    fn url(&self) -> &JdbcUrl {
        &self.url
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }

    fn ping(&mut self) -> DbcResult<()> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        self.driver_env
            .native_request(&self.url.host, "ganglia", b"")
            .map(|_| ())
    }
}

struct GangliaStatement {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    driver: Option<Arc<GangliaDriver>>,
    url: JdbcUrl,
    handle: SchemaHandle,
}

impl Statement for GangliaStatement {
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        self.stats.query();
        let sel = parse_select(sql)?;
        self.env
            .schema
            .ensure_current(&mut self.handle, DRIVER_NAME);
        let group = self
            .handle
            .group(&sel.table)
            .ok_or_else(|| SqlError::Unsupported(format!("unknown GLUE group '{}'", sel.table)))?
            .clone();
        let mapping = self
            .handle
            .mapping
            .clone()
            .filter(|m| m.supports_group(&group.name))
            .ok_or_else(|| {
                SqlError::Unsupported(format!(
                    "{DRIVER_NAME} does not implement group '{}'",
                    group.name
                ))
            })?;

        let mode = GangliaDriver::mode_of(&self.url);
        let native_rows: Vec<NativeRow> = match (&self.driver, mode) {
            (Some(driver), ParseMode::Eager) => (*driver.fetch_parsed(&self.url)?).clone(),
            (Some(driver), ParseMode::Lazy) => {
                let raw = driver.fetch_raw(&self.url)?;
                let needed: Vec<&str> = match sel.required_columns() {
                    Some(cols) => group
                        .attributes
                        .iter()
                        .filter(|a| cols.iter().any(|c| c.eq_ignore_ascii_case(&a.name)))
                        .map(|a| a.name.as_str())
                        .collect(),
                    None => group.attributes.iter().map(|a| a.name.as_str()).collect(),
                };
                let keys = mapping.native_keys_for(&group.name, &needed);
                self.stats.parsed(raw.len());
                parse_dump_lazy(&raw, &keys)
            }
            // No driver Arc (plain trait-object connect): fetch directly.
            (None, _) => {
                self.stats.native();
                let bytes = self.env.native_request(&self.url.host, "ganglia", b"")?;
                let xml = String::from_utf8(bytes)
                    .map_err(|_| SqlError::Driver("non-UTF-8 XML".into()))?;
                self.stats.parsed(xml.len());
                parse_dump_eager(&xml)?
            }
        };

        let translator = Translator::new(&self.handle);
        let rows = glue_translate(&translator, &group.name, &native_rows)?;
        let rs = finish_select(&group, rows, &sel, self.env.clock.now_ts())?;
        Ok(Box::new(rs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_agents::deploy_site;
    use gridrm_glue::SchemaManager;
    use gridrm_resmodel::{SiteModel, SiteSpec};
    use gridrm_simnet::{Network, SimClock};

    fn setup(hosts: usize) -> (Arc<DriverEnv>, Arc<GangliaDriver>) {
        let net = Network::new(SimClock::new(), 7);
        let site = SiteModel::generate(13, &SiteSpec::new("g", hosts, 2));
        site.advance_to(300_000);
        deploy_site(&net, site);
        let schema = Arc::new(SchemaManager::new());
        schema.register_mapping(crate::mappings::ganglia_mapping());
        let env = DriverEnv::new(net, schema, "gw");
        let driver = GangliaDriver::new(env.clone());
        (env, driver)
    }

    fn query(driver: &Arc<GangliaDriver>, url: &str, sql: &str) -> gridrm_dbc::RowSet {
        let url = JdbcUrl::parse(url).unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        let mut rs = stmt.execute_query(sql).unwrap();
        gridrm_dbc::RowSet::materialize(rs.as_mut()).unwrap()
    }

    #[test]
    fn cluster_query_returns_row_per_host() {
        let (_env, driver) = setup(4);
        let rs = query(
            &driver,
            "jdbc:ganglia://node00.g/g",
            "SELECT Hostname, NCpu, Load1 FROM Processor ORDER BY Hostname",
        );
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.rows()[0][0], SqlValue::Str("node00.g".into()));
        assert_eq!(rs.rows()[3][0], SqlValue::Str("node03.g".into()));
        assert_eq!(rs.rows()[0][1], SqlValue::Int(2));
    }

    #[test]
    fn memory_unit_conversion() {
        let (_env, driver) = setup(1);
        let rs = query(
            &driver,
            "jdbc:ganglia://node00.g/g",
            "SELECT RAMSizeMB FROM MainMemory",
        );
        // Simulated hosts have 2048 MB; gmond reports KB; mapping scales back.
        assert_eq!(rs.rows()[0][0].as_i64().unwrap(), 2048);
    }

    #[test]
    fn ttl_cache_avoids_refetch() {
        let (env, driver) = setup(2);
        let url = "jdbc:ganglia://node00.g/g?ttl=10000";
        let _ = query(&driver, url, "SELECT Load1 FROM Processor");
        let served_before = env
            .network
            .endpoint_stats("node00.g:ganglia")
            .unwrap()
            .snapshot()
            .requests_served;
        for _ in 0..5 {
            let _ = query(&driver, url, "SELECT Load1 FROM Processor");
        }
        let served_after = env
            .network
            .endpoint_stats("node00.g:ganglia")
            .unwrap()
            .snapshot()
            .requests_served;
        assert_eq!(served_after, served_before, "cache was bypassed");

        // Advance past the TTL: next query refetches.
        env.clock.advance(20_000);
        let _ = query(&driver, url, "SELECT Load1 FROM Processor");
        let served_final = env
            .network
            .endpoint_stats("node00.g:ganglia")
            .unwrap()
            .snapshot()
            .requests_served;
        assert_eq!(served_final, served_before + 1);
    }

    #[test]
    fn ttl_zero_disables_cache() {
        let (env, driver) = setup(1);
        let url = "jdbc:ganglia://node00.g/g?ttl=0";
        let _ = query(&driver, url, "SELECT Load1 FROM Processor");
        let _ = query(&driver, url, "SELECT Load1 FROM Processor");
        let served = env
            .network
            .endpoint_stats("node00.g:ganglia")
            .unwrap()
            .snapshot()
            .requests_served;
        // connect primes once, then each query fetches.
        assert!(served >= 3, "served {served}");
    }

    #[test]
    fn lazy_and_eager_agree() {
        let (_env, driver) = setup(3);
        let sql = "SELECT Hostname, Load1, CpuIdle FROM Processor ORDER BY Hostname";
        let eager = query(&driver, "jdbc:ganglia://node00.g/g?parse=eager", sql);
        let lazy = query(&driver, "jdbc:ganglia://node00.g/g?parse=lazy", sql);
        assert_eq!(eager.rows(), lazy.rows());
    }

    #[test]
    fn os_group_via_strings() {
        let (_env, driver) = setup(1);
        let rs = query(
            &driver,
            "jdbc:ganglia://node00.g/g",
            "SELECT Name, Release, Version FROM OperatingSystem",
        );
        assert_eq!(rs.rows()[0][0], SqlValue::Str("Linux".into()));
        assert_eq!(rs.rows()[0][1], SqlValue::Str("2.4.20".into()));
        // Version unmapped by gmond → NULL.
        assert!(rs.rows()[0][2].is_null());
    }

    #[test]
    fn derived_uptime() {
        let (_env, driver) = setup(1);
        let rs = query(
            &driver,
            "jdbc:ganglia://node00.g/g",
            "SELECT UpTimeSec FROM Host",
        );
        assert_eq!(rs.rows()[0][0].as_i64().unwrap(), 300);
        let lazy = query(
            &driver,
            "jdbc:ganglia://node00.g/g?parse=lazy",
            "SELECT UpTimeSec FROM Host",
        );
        assert_eq!(lazy.rows()[0][0].as_i64().unwrap(), 300);
    }

    #[test]
    fn wildcard_probe() {
        let (_env, driver) = setup(1);
        assert!(driver.accepts_url(&JdbcUrl::parse("jdbc:://node00.g/x").unwrap()));
        assert!(!driver.accepts_url(&JdbcUrl::parse("jdbc:://nowhere/x").unwrap()));
    }

    #[test]
    fn unknown_host_fails_connect() {
        let (_env, driver) = setup(1);
        let url = JdbcUrl::parse("jdbc:ganglia://ghost/g").unwrap();
        assert!(driver.connect(&url, &Properties::new()).is_err());
    }
}
