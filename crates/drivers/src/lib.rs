#![warn(missing_docs)]

//! # gridrm-drivers — the GridRM data-source driver plug-ins
//!
//! "A key element of GridRM is the driver layer for interacting with data
//! sources. The drivers are modular plug-ins that can be installed or
//! removed at runtime" (§3.2). This crate ships the paper's initial driver
//! set — JDBC-SNMP, JDBC-Ganglia, JDBC-NWS, JDBC-NetLogger, JDBC-SCMS —
//! plus a JDBC-GridRM driver over the embedded historical store.
//!
//! Every driver follows the paper's minimal-driver recipe (§3.2.1):
//!
//! 1. a [`gridrm_dbc::Driver`] that decides URL compatibility (and, for
//!    wildcard `jdbc:://…` URLs, *probes* the data source — Table 2's
//!    "supports the URL AND can connect" check),
//! 2. a `Connection` that "creates a session with the data source and
//!    initialises schema settings for the session" (the GLUE
//!    [`gridrm_glue::SchemaHandle`] is cached at connect time, Fig 5),
//! 3. a `Statement` that re-validates the cached schema, translates SQL to
//!    the native protocol, fetches, normalises via the GLUE mapping, and
//! 4. returns a populated `ResultSet`.
//!
//! The shared plumbing (SQL parsing, GLUE translation, WHERE/projection
//! execution) lives in [`base`], the per-protocol logic in one module per
//! driver, and the paper's per-driver GLUE mappings in [`mappings`].

pub mod base;
pub mod formatters;
pub mod ganglia;
pub mod mappings;
pub mod netlogger;
pub mod nws;
pub mod registry;
pub mod scms;
pub mod snmp;
pub mod sqlstore;
pub mod telemetry;
pub mod xml;

pub use base::{DriverEnv, DriverStats};
pub use formatters::{NetLoggerLineFormatter, SnmpTrapFormatter, UlmLineTransmitter};
pub use ganglia::GangliaDriver;
pub use netlogger::NetLoggerDriver;
pub use nws::NwsDriver;
pub use registry::{install_into_gateway, install_standard_formatters, register_standard_drivers};
pub use scms::ScmsDriver;
pub use snmp::SnmpDriver;
pub use sqlstore::SqlStoreDriver;
pub use telemetry::TelemetryDriver;
