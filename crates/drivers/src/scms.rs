//! The JDBC-SCMS driver: simple `key: value` cluster-status text covering
//! host groups and the site-level `ComputeElement` summary.
//!
//! URL form: `jdbc:scms://<head-host>/<anything>`.

use crate::base::{
    finish_select, glue_translate, guess_value, parse_select, DriverEnv, DriverStats,
};
use crate::netlogger::find_eq_literal;
use gridrm_agents::scms::parse_blocks;
use gridrm_dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, SqlError,
    Statement,
};
use gridrm_glue::{NativeRow, SchemaHandle, Translator};
use gridrm_sqlparse::SqlValue;
use std::sync::Arc;

/// Driver name as registered with the gateway.
pub const DRIVER_NAME: &str = "jdbc-scms";

/// The JDBC-SCMS [`Driver`].
pub struct ScmsDriver {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
}

impl ScmsDriver {
    /// Create the driver over a gateway environment.
    pub fn new(env: Arc<DriverEnv>) -> Arc<ScmsDriver> {
        Arc::new(ScmsDriver {
            env,
            stats: Arc::new(DriverStats::default()),
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> Arc<DriverStats> {
        self.stats.clone()
    }

    fn text_request(&self, host: &str, cmd: &str) -> DbcResult<String> {
        self.stats.native();
        let bytes = self.env.native_request(host, "scms", cmd.as_bytes())?;
        self.stats.parsed(bytes.len());
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if text.starts_with("ERROR") {
            return Err(SqlError::Driver(format!("SCMS: {}", text.trim())));
        }
        Ok(text)
    }
}

impl Driver for ScmsDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: DRIVER_NAME.to_owned(),
            subprotocol: "scms".to_owned(),
            version: (1, 0),
            description: "GridRM driver for SCMS cluster status".to_owned(),
        }
    }

    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        if url.subprotocol == "scms" {
            return true;
        }
        url.is_wildcard() && self.text_request(&url.host, "SUMMARY").is_ok()
    }

    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        self.text_request(&url.host, "SUMMARY")?;
        let handle = self.env.schema.handle_for(DRIVER_NAME);
        Ok(Box::new(ScmsConnection {
            env: self.env.clone(),
            stats: self.stats.clone(),
            url: url.clone(),
            handle,
            closed: false,
        }))
    }
}

struct ScmsConnection {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    url: JdbcUrl,
    handle: SchemaHandle,
    closed: bool,
}

impl Connection for ScmsConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        Ok(Box::new(ScmsStatement {
            env: self.env.clone(),
            stats: self.stats.clone(),
            url: self.url.clone(),
            handle: self.handle.clone(),
        }))
    }

    fn url(&self) -> &JdbcUrl {
        &self.url
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }
}

struct ScmsStatement {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    url: JdbcUrl,
    handle: SchemaHandle,
}

impl ScmsStatement {
    fn text_request(&self, cmd: &str) -> DbcResult<String> {
        self.stats.native();
        let bytes = self
            .env
            .native_request(&self.url.host, "scms", cmd.as_bytes())?;
        self.stats.parsed(bytes.len());
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if text.starts_with("ERROR") {
            return Err(SqlError::Driver(format!("SCMS: {}", text.trim())));
        }
        Ok(text)
    }
}

impl Statement for ScmsStatement {
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        self.stats.query();
        let sel = parse_select(sql)?;
        self.env
            .schema
            .ensure_current(&mut self.handle, DRIVER_NAME);
        let group = self
            .handle
            .group(&sel.table)
            .ok_or_else(|| SqlError::Unsupported(format!("unknown GLUE group '{}'", sel.table)))?
            .clone();
        let mapping = self
            .handle
            .mapping
            .clone()
            .filter(|m| m.supports_group(&group.name))
            .ok_or_else(|| {
                SqlError::Unsupported(format!(
                    "{DRIVER_NAME} does not implement group '{}'",
                    group.name
                ))
            })?;
        let _ = mapping;

        let native_rows: Vec<NativeRow> = if group.name.eq_ignore_ascii_case("ComputeElement") {
            // Site summary: one row.
            let text = self.text_request("SUMMARY")?;
            let mut row = NativeRow::new();
            for line in text.lines() {
                if let Some((k, v)) = line.split_once(':') {
                    row.insert(k.trim().to_owned(), guess_value(v));
                }
            }
            if let Some(site) = row.get("site").cloned() {
                row.insert("ce_id".into(), site);
            }
            row.insert("status".into(), SqlValue::Str("production".into()));
            vec![row]
        } else {
            // Host-level groups: push a `Hostname = 'x'` equality down to
            // a native STATUS request, otherwise dump everything.
            let cmd = sel
                .where_clause
                .as_ref()
                .and_then(|w| find_eq_literal(w, "Hostname"))
                .and_then(|v| v.as_str().map(|h| format!("STATUS {h}")))
                .unwrap_or_else(|| "ALL".to_owned());
            let text = match self.text_request(&cmd) {
                Ok(t) => t,
                // STATUS for an unknown host: no rows, not an error.
                Err(SqlError::Driver(msg)) if msg.contains("no such host") => String::new(),
                Err(e) => return Err(e),
            };
            parse_blocks(&text)
                .into_iter()
                .map(|block| {
                    block
                        .into_iter()
                        .map(|(k, v)| (k, guess_value(&v)))
                        .collect()
                })
                .collect()
        };

        let translator = Translator::new(&self.handle);
        let rows = glue_translate(&translator, &group.name, &native_rows)?;
        let rs = finish_select(&group, rows, &sel, self.env.clock.now_ts())?;
        Ok(Box::new(rs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_agents::deploy_site;
    use gridrm_glue::SchemaManager;
    use gridrm_resmodel::{SiteModel, SiteSpec};
    use gridrm_simnet::{Network, SimClock};

    fn setup() -> (Arc<DriverEnv>, Arc<ScmsDriver>) {
        let net = Network::new(SimClock::new(), 9);
        let site = SiteModel::generate(23, &SiteSpec::new("c", 3, 4));
        site.advance_to(45_000);
        deploy_site(&net, site);
        let schema = Arc::new(SchemaManager::new());
        schema.register_mapping(crate::mappings::scms_mapping());
        let env = DriverEnv::new(net, schema, "gw");
        let driver = ScmsDriver::new(env.clone());
        (env, driver)
    }

    fn query(driver: &ScmsDriver, sql: &str) -> gridrm_dbc::RowSet {
        let url = JdbcUrl::parse("jdbc:scms://node00.c/").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        let mut rs = stmt.execute_query(sql).unwrap();
        gridrm_dbc::RowSet::materialize(rs.as_mut()).unwrap()
    }

    #[test]
    fn processor_rows_per_host() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "SELECT Hostname, NCpu, Load1 FROM Processor ORDER BY Hostname",
        );
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.rows()[0][1], SqlValue::Int(4));
    }

    #[test]
    fn hostname_pushdown_uses_status() {
        let (env, driver) = setup();
        let before = env
            .network
            .endpoint_stats("node00.c:scms")
            .unwrap()
            .snapshot()
            .bytes_served;
        let rs = query(
            &driver,
            "SELECT Hostname FROM Processor WHERE Hostname = 'node01.c'",
        );
        assert_eq!(rs.len(), 1);
        let after = env
            .network
            .endpoint_stats("node00.c:scms")
            .unwrap()
            .snapshot()
            .bytes_served;
        // STATUS response is one block (~10 lines), much smaller than ALL;
        // together with the connect-time SUMMARY it stays small.
        assert!(after - before < 400, "served {} bytes", after - before);
    }

    #[test]
    fn compute_element_summary() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "SELECT CEId, SiteName, TotalCpus, FreeCpus, Status FROM ComputeElement",
        );
        assert_eq!(rs.len(), 1);
        let row = &rs.rows()[0];
        assert_eq!(row[1], SqlValue::Str("c".into()));
        assert_eq!(row[2], SqlValue::Int(12));
        assert_eq!(row[4], SqlValue::Str("production".into()));
    }

    #[test]
    fn unknown_host_filter_gives_empty() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "SELECT Hostname FROM Processor WHERE Hostname = 'ghost'",
        );
        assert!(rs.is_empty());
    }

    #[test]
    fn wildcard_probe() {
        let (_env, driver) = setup();
        assert!(driver.accepts_url(&JdbcUrl::parse("jdbc:://node00.c/x").unwrap()));
        assert!(!driver.accepts_url(&JdbcUrl::parse("jdbc:://ghost/x").unwrap()));
    }
}
