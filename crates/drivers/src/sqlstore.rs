//! The JDBC-GridRM driver: SQL access to stores mounted in the gateway —
//! the "SQL" plug-in of Fig 2's Abstract Data Layer and the path the
//! RequestManager uses for historical queries (§3.1.1).
//!
//! URL form: `jdbc:gridrm://local/<store-name>`.

use crate::base::{DriverEnv, DriverStats};
use gridrm_dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, SqlError,
    Statement,
};
use gridrm_store::{ExecOutcome, Store};
use std::sync::Arc;

/// Driver name as registered with the gateway.
pub const DRIVER_NAME: &str = "jdbc-gridrm";

/// The JDBC-GridRM [`Driver`].
pub struct SqlStoreDriver {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
}

impl SqlStoreDriver {
    /// Create the driver over a gateway environment.
    pub fn new(env: Arc<DriverEnv>) -> Arc<SqlStoreDriver> {
        Arc::new(SqlStoreDriver {
            env,
            stats: Arc::new(DriverStats::default()),
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> Arc<DriverStats> {
        self.stats.clone()
    }
}

impl Driver for SqlStoreDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: DRIVER_NAME.to_owned(),
            subprotocol: "gridrm".to_owned(),
            version: (1, 0),
            description: "GridRM driver for gateway-local SQL stores (history)".to_owned(),
        }
    }

    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        if url.subprotocol == "gridrm" {
            return true;
        }
        url.is_wildcard() && url.host == "local" && self.env.store(&url.path).is_some()
    }

    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        let store = self
            .env
            .store(&url.path)
            .ok_or_else(|| SqlError::Connection(format!("no store mounted at '{}'", url.path)))?;
        Ok(Box::new(SqlStoreConnection {
            env: self.env.clone(),
            stats: self.stats.clone(),
            url: url.clone(),
            store,
            closed: false,
        }))
    }
}

struct SqlStoreConnection {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    url: JdbcUrl,
    store: Store,
    closed: bool,
}

impl Connection for SqlStoreConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        Ok(Box::new(SqlStoreStatement {
            env: self.env.clone(),
            stats: self.stats.clone(),
            store: self.store.clone(),
        }))
    }

    fn url(&self) -> &JdbcUrl {
        &self.url
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }
}

struct SqlStoreStatement {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    store: Store,
}

impl Statement for SqlStoreStatement {
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        self.stats.query();
        let now = self.env.clock.now_ts();
        match self.store.execute_sql(sql, now) {
            Ok(ExecOutcome::Rows(rs)) => Ok(Box::new(rs)),
            Ok(_) => Err(SqlError::Unsupported(
                "statement did not produce rows; use execute_update".into(),
            )),
            Err(e) => Err(SqlError::Driver(e.to_string())),
        }
    }

    /// Unlike agent drivers, the local store is writable: this is the
    /// optional capability a "fully implemented" driver provides.
    fn execute_update(&mut self, sql: &str) -> DbcResult<usize> {
        self.stats.query();
        let now = self.env.clock.now_ts();
        match self.store.execute_sql(sql, now) {
            Ok(ExecOutcome::Affected(n)) => Ok(n),
            Ok(ExecOutcome::Done) => Ok(0),
            Ok(ExecOutcome::Rows(_)) => Err(SqlError::Unsupported(
                "SELECT passed to execute_update".into(),
            )),
            Err(e) => Err(SqlError::Driver(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_glue::SchemaManager;
    use gridrm_simnet::{Network, SimClock};

    fn setup() -> (Arc<DriverEnv>, Arc<SqlStoreDriver>) {
        let net = Network::new(SimClock::new(), 1);
        let env = DriverEnv::new(net, Arc::new(SchemaManager::new()), "gw");
        env.mount_store("history", Store::new());
        let driver = SqlStoreDriver::new(env.clone());
        (env, driver)
    }

    #[test]
    fn full_sql_lifecycle() {
        let (_env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:gridrm://local/history").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        assert_eq!(
            stmt.execute_update("CREATE TABLE h (host TEXT, v REAL)")
                .unwrap(),
            0
        );
        assert_eq!(
            stmt.execute_update("INSERT INTO h VALUES ('a', 1.5), ('b', 2.5)")
                .unwrap(),
            2
        );
        let mut rs = stmt
            .execute_query("SELECT host FROM h WHERE v > 2 ORDER BY host")
            .unwrap();
        assert!(rs.advance().unwrap());
        assert_eq!(rs.get_string(0).unwrap(), "b");
        assert!(!rs.advance().unwrap());
    }

    #[test]
    fn unknown_store_rejected() {
        let (_env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:gridrm://local/nope").unwrap();
        assert!(matches!(
            driver.connect(&url, &Properties::new()).err().unwrap(),
            SqlError::Connection(_)
        ));
    }

    #[test]
    fn mismatched_statement_kinds() {
        let (_env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:gridrm://local/history").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        stmt.execute_update("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(stmt.execute_query("INSERT INTO t VALUES (1)").is_err());
        assert!(stmt.execute_update("SELECT * FROM t").is_err());
    }

    #[test]
    fn wildcard_accepts_only_mounted_local() {
        let (_env, driver) = setup();
        assert!(driver.accepts_url(&JdbcUrl::parse("jdbc:://local/history").unwrap()));
        assert!(!driver.accepts_url(&JdbcUrl::parse("jdbc:://local/other").unwrap()));
        assert!(!driver.accepts_url(&JdbcUrl::parse("jdbc:://remote/history").unwrap()));
        assert!(driver.accepts_url(&JdbcUrl::parse("jdbc:gridrm://local/x").unwrap()));
    }
}
