//! A minimal XML pull-scanner, sufficient for the gmond dialect (elements,
//! double-quoted attributes, self-closing tags, declarations, no text
//! content we care about). The Ganglia driver's "greater overhead … to
//! parse values from the response" (§3.2.4) happens here.

use std::fmt;

/// One scanned markup event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name a="v" ...>`
    Open {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// `<name a="v" .../>`
    SelfClose {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// `</name>`
    Close {
        /// Element name.
        name: String,
    },
}

/// Scanner errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset.
    pub offset: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Decode the five standard entities.
pub fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let (entity, len) = if rest.starts_with("&amp;") {
            ("&", 5)
        } else if rest.starts_with("&lt;") {
            ("<", 4)
        } else if rest.starts_with("&gt;") {
            (">", 4)
        } else if rest.starts_with("&quot;") {
            ("\"", 6)
        } else if rest.starts_with("&apos;") {
            ("'", 6)
        } else {
            ("&", 1)
        };
        out.push_str(entity);
        rest = &rest[len..];
    }
    out.push_str(rest);
    out
}

/// Scan a document into events, skipping declarations, comments and text.
pub fn scan(xml: &str) -> Result<Vec<XmlEvent>, XmlError> {
    let bytes = xml.as_bytes();
    let mut pos = 0usize;
    let mut events = Vec::new();
    while pos < bytes.len() {
        // Find the next tag.
        let Some(lt) = xml[pos..].find('<') else {
            break;
        };
        pos += lt;
        let start = pos;
        let Some(gt_rel) = xml[pos..].find('>') else {
            return Err(XmlError {
                message: "unterminated tag".into(),
                offset: start,
            });
        };
        let inner = &xml[pos + 1..pos + gt_rel];
        pos += gt_rel + 1;
        if inner.starts_with('?') || inner.starts_with('!') {
            continue; // declaration / comment / doctype
        }
        if let Some(name) = inner.strip_prefix('/') {
            events.push(XmlEvent::Close {
                name: name.trim().to_owned(),
            });
            continue;
        }
        let self_close = inner.ends_with('/');
        let body = if self_close {
            &inner[..inner.len() - 1]
        } else {
            inner
        };
        let (name, attrs) = parse_tag_body(body, start)?;
        events.push(if self_close {
            XmlEvent::SelfClose { name, attrs }
        } else {
            XmlEvent::Open { name, attrs }
        });
    }
    Ok(events)
}

fn parse_tag_body(body: &str, offset: usize) -> Result<(String, Vec<(String, String)>), XmlError> {
    let body = body.trim();
    let name_end = body.find(|c: char| c.is_whitespace()).unwrap_or(body.len());
    let name = body[..name_end].to_owned();
    if name.is_empty() {
        return Err(XmlError {
            message: "empty tag name".into(),
            offset,
        });
    }
    let mut attrs = Vec::new();
    let mut rest = body[name_end..].trim_start();
    while !rest.is_empty() {
        let Some(eq) = rest.find('=') else {
            return Err(XmlError {
                message: format!("attribute without '=': {rest}"),
                offset,
            });
        };
        let key = rest[..eq].trim().to_owned();
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(XmlError {
                message: "attribute value must be double-quoted".into(),
                offset,
            });
        }
        let Some(endq) = rest[1..].find('"') else {
            return Err(XmlError {
                message: "unterminated attribute value".into(),
                offset,
            });
        };
        let value = unescape(&rest[1..1 + endq]);
        attrs.push((key, value));
        rest = rest[endq + 2..].trim_start();
    }
    Ok((name, attrs))
}

/// Fetch a named attribute from an attribute list.
pub fn attr<'a>(attrs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_gmond_shape() {
        let xml = r#"<?xml version="1.0"?>
<GANGLIA_XML VERSION="2.5.7" SOURCE="gmond">
<CLUSTER NAME="site-a" LOCALTIME="120">
<HOST NAME="node00" IP="10.0.0.1" REPORTED="120">
<METRIC NAME="load_one" VAL="0.75" TYPE="float" UNITS=""/>
</HOST>
</CLUSTER>
</GANGLIA_XML>"#;
        let events = scan(xml).unwrap();
        assert_eq!(events.len(), 7);
        match &events[0] {
            XmlEvent::Open { name, attrs } => {
                assert_eq!(name, "GANGLIA_XML");
                assert_eq!(attr(attrs, "VERSION"), Some("2.5.7"));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(&events[3], XmlEvent::SelfClose { name, .. } if name == "METRIC"));
        assert!(matches!(&events[6], XmlEvent::Close { name } if name == "GANGLIA_XML"));
    }

    #[test]
    fn unescape_entities() {
        assert_eq!(unescape("a&lt;b&amp;c&gt;&quot;&apos;"), "a<b&c>\"'");
        assert_eq!(unescape("no entities"), "no entities");
        assert_eq!(unescape("lone & amp"), "lone & amp");
    }

    #[test]
    fn escaped_attr_roundtrip() {
        let xml = r#"<X NAME="a&amp;b &lt;c&gt;"/>"#;
        let events = scan(xml).unwrap();
        let XmlEvent::SelfClose { attrs, .. } = &events[0] else {
            panic!()
        };
        assert_eq!(attr(attrs, "NAME"), Some("a&b <c>"));
    }

    #[test]
    fn errors_reported() {
        assert!(scan("<unclosed").is_err());
        assert!(scan(r#"<A B/>"#).is_err()); // attribute without =
        assert!(scan(r#"<A B='x'/>"#).is_err()); // single quotes unsupported
        assert!(scan(r#"<A B="x/>"#).is_err()); // unterminated value
    }

    #[test]
    fn text_content_ignored() {
        let events = scan("<a>some text</a>").unwrap();
        assert_eq!(events.len(), 2);
    }
}
