//! The JDBC-NWS driver: plain-text Network Weather Service responses for
//! the GLUE `NetworkElement` group, including forecasts.
//!
//! Per §3.2.4's guidance that caching policies be chosen "as appropriate
//! for the characteristics of a particular type of data source", the
//! driver caches translated pair rows with a TTL (`?ttl=<ms>`, default 0 —
//! forecasts are usually wanted fresh; NWS sensors measure every ~60 s,
//! so a TTL up to that is safe).
//!
//! URL form: `jdbc:nws://<head-host>/<path>[?ttl=ms]` (the path is
//! ignored, as with a real NWS nameserver registration namespace).

use crate::base::{
    finish_select, glue_translate, guess_value, parse_select, DriverEnv, DriverStats,
};
use gridrm_dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, SqlError,
    Statement,
};
use gridrm_glue::{NativeRow, SchemaHandle, Translator};
use gridrm_sqlparse::SqlValue;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// Driver name as registered with the gateway.
pub const DRIVER_NAME: &str = "jdbc-nws";

/// Cache key: `(host, with_forecast)`; value: `(fetched_ms, rows)`.
type PairCache = HashMap<(String, bool), (u64, Arc<Vec<NativeRow>>)>;

/// The JDBC-NWS [`Driver`].
pub struct NwsDriver {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    cache: Mutex<PairCache>,
    this: Weak<NwsDriver>,
}

impl NwsDriver {
    /// Create the driver over a gateway environment.
    pub fn new(env: Arc<DriverEnv>) -> Arc<NwsDriver> {
        Arc::new_cyclic(|this| NwsDriver {
            env,
            stats: Arc::new(DriverStats::default()),
            cache: Mutex::new(HashMap::new()),
            this: this.clone(),
        })
    }

    fn ttl_of(url: &JdbcUrl) -> u64 {
        url.param("ttl").and_then(|s| s.parse().ok()).unwrap_or(0)
    }

    fn cache_lookup(&self, url: &JdbcUrl, forecast: bool, now: u64) -> Option<Arc<Vec<NativeRow>>> {
        let ttl = Self::ttl_of(url);
        if ttl == 0 {
            return None;
        }
        let cache = self.cache.lock();
        let (at, rows) = cache.get(&(url.host.clone(), forecast))?;
        if now.saturating_sub(*at) < ttl {
            self.stats.hit();
            Some(rows.clone())
        } else {
            None
        }
    }

    fn cache_store(&self, url: &JdbcUrl, forecast: bool, now: u64, rows: Arc<Vec<NativeRow>>) {
        if Self::ttl_of(url) == 0 {
            return;
        }
        self.cache
            .lock()
            .insert((url.host.clone(), forecast), (now, rows));
    }

    /// Activity counters.
    pub fn stats(&self) -> Arc<DriverStats> {
        self.stats.clone()
    }

    fn text_request(&self, host: &str, cmd: &str) -> DbcResult<String> {
        self.stats.native();
        let bytes = self.env.native_request(host, "nws", cmd.as_bytes())?;
        self.stats.parsed(bytes.len());
        let text = String::from_utf8(bytes)
            .map_err(|_| SqlError::Driver("NWS returned non-UTF-8 text".into()))?;
        if text.starts_with("ERROR") {
            return Err(SqlError::Driver(format!("NWS: {}", text.trim())));
        }
        Ok(text)
    }
}

impl Driver for NwsDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: DRIVER_NAME.to_owned(),
            subprotocol: "nws".to_owned(),
            version: (1, 0),
            description: "GridRM driver for the Network Weather Service".to_owned(),
        }
    }

    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        if url.subprotocol == "nws" {
            return true;
        }
        url.is_wildcard() && self.text_request(&url.host, "SERIES").is_ok()
    }

    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        // Verify the sensor answers.
        self.text_request(&url.host, "SERIES")?;
        let handle = self.env.schema.handle_for(DRIVER_NAME);
        Ok(Box::new(NwsConnection {
            env: self.env.clone(),
            stats: self.stats.clone(),
            driver: self.this.upgrade(),
            url: url.clone(),
            handle,
            closed: false,
        }))
    }
}

struct NwsConnection {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    driver: Option<Arc<NwsDriver>>,
    url: JdbcUrl,
    handle: SchemaHandle,
    closed: bool,
}

impl Connection for NwsConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        Ok(Box::new(NwsStatement {
            env: self.env.clone(),
            stats: self.stats.clone(),
            driver: self.driver.clone(),
            url: self.url.clone(),
            handle: self.handle.clone(),
        }))
    }

    fn url(&self) -> &JdbcUrl {
        &self.url
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }

    fn ping(&mut self) -> DbcResult<()> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        self.env
            .native_request(&self.url.host, "nws", b"SERIES")
            .map(|_| ())
    }
}

struct NwsStatement {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    driver: Option<Arc<NwsDriver>>,
    url: JdbcUrl,
    handle: SchemaHandle,
}

/// Parse `key value [key value ...]`-style NWS lines into a map.
fn parse_kv_lines(text: &str) -> NativeRow {
    let mut row = NativeRow::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let Some(key) = parts.next() else { continue };
        let Some(value) = parts.next() else { continue };
        row.insert(key.to_owned(), guess_value(value));
        // FORECAST lines carry `method <name> mse <e>` suffixes.
        let rest: Vec<&str> = parts.collect();
        let mut i = 0;
        while i + 1 < rest.len() {
            row.insert(format!("{key}.{}", rest[i]), guess_value(rest[i + 1]));
            i += 2;
        }
    }
    row
}

impl Statement for NwsStatement {
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        self.stats.query();
        let sel = parse_select(sql)?;
        self.env
            .schema
            .ensure_current(&mut self.handle, DRIVER_NAME);
        let group = self
            .handle
            .group(&sel.table)
            .ok_or_else(|| SqlError::Unsupported(format!("unknown GLUE group '{}'", sel.table)))?
            .clone();
        if !group.name.eq_ignore_ascii_case("NetworkElement") {
            return Err(SqlError::Unsupported(format!(
                "{DRIVER_NAME} only implements NetworkElement, not '{}'",
                group.name
            )));
        }

        // Does the query need forecasts at all? (Avoid the expensive
        // FORECAST call when only raw measurements are selected.)
        let needs_forecast = match sel.required_columns() {
            Some(cols) => cols
                .iter()
                .any(|c| c.to_ascii_lowercase().contains("forecast")),
            None => true,
        };

        // Driver-level TTL cache (§3.2.4): serve cached pair rows without
        // touching the sensor at all when fresh enough.
        let now_ms = self.env.clock.now_millis();
        if let Some(driver) = &self.driver {
            if let Some(cached) = driver.cache_lookup(&self.url, needs_forecast, now_ms) {
                let translator = Translator::new(&self.handle);
                let rows = glue_translate(&translator, &group.name, &cached)?;
                let rs = finish_select(&group, rows, &sel, self.env.clock.now_ts())?;
                return Ok(Box::new(rs));
            }
        }

        // 1. Which pairs exist?
        let series = {
            self.stats.native();
            let bytes = self.env.native_request(&self.url.host, "nws", b"SERIES")?;
            self.stats.parsed(bytes.len());
            String::from_utf8(bytes)
                .map_err(|_| SqlError::Driver("NWS returned non-UTF-8 text".into()))?
        };
        let mut pairs: Vec<(String, String)> = Vec::new();
        for line in series.lines() {
            let mut parts = line.split_whitespace();
            if parts.next() == Some("bandwidthMbps") {
                if let (Some(s), Some(d)) = (parts.next(), parts.next()) {
                    pairs.push((s.to_owned(), d.to_owned()));
                }
            }
        }

        // 2. One MEASURE (and maybe FORECAST) per pair — coarse-grained.
        let mut native_rows = Vec::with_capacity(pairs.len());
        for (src, dst) in &pairs {
            let measure = {
                self.stats.native();
                let bytes = self.env.native_request(
                    &self.url.host,
                    "nws",
                    format!("MEASURE {src} {dst}").as_bytes(),
                )?;
                self.stats.parsed(bytes.len());
                String::from_utf8_lossy(&bytes).into_owned()
            };
            if measure.starts_with("ERROR") {
                continue;
            }
            let mut row = parse_kv_lines(&measure);
            row.insert("src".into(), SqlValue::Str(src.clone()));
            row.insert("dst".into(), SqlValue::Str(dst.clone()));
            if needs_forecast {
                self.stats.native();
                let bytes = self.env.native_request(
                    &self.url.host,
                    "nws",
                    format!("FORECAST {src} {dst}").as_bytes(),
                )?;
                self.stats.parsed(bytes.len());
                let text = String::from_utf8_lossy(&bytes).into_owned();
                if !text.starts_with("ERROR") {
                    let f = parse_kv_lines(&text);
                    if let Some(v) = f.get("bandwidthMbps_forecast") {
                        row.insert("forecastBandwidthMbps".into(), v.clone());
                    }
                    if let Some(v) = f.get("latencyMs_forecast") {
                        row.insert("forecastLatencyMs".into(), v.clone());
                    }
                    if let Some(v) = f.get("bandwidthMbps_forecast.method") {
                        row.insert("forecastMethod".into(), v.clone());
                    }
                }
            }
            native_rows.push(row);
        }

        let native_rows = Arc::new(native_rows);
        if let Some(driver) = &self.driver {
            driver.cache_store(&self.url, needs_forecast, now_ms, native_rows.clone());
        }
        let translator = Translator::new(&self.handle);
        let rows = glue_translate(&translator, &group.name, &native_rows)?;
        let rs = finish_select(&group, rows, &sel, self.env.clock.now_ts())?;
        Ok(Box::new(rs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_agents::deploy_site;
    use gridrm_glue::SchemaManager;
    use gridrm_resmodel::{SiteModel, SiteSpec};
    use gridrm_simnet::{Network, SimClock};

    fn setup() -> (Arc<DriverEnv>, Arc<NwsDriver>) {
        let net = Network::new(SimClock::new(), 4);
        let mut spec = SiteSpec::new("n", 3, 2);
        spec.peers = vec!["node00.remote".to_owned()];
        let site = SiteModel::generate(5, &spec);
        site.advance_to(1_800_000);
        deploy_site(&net, site);
        let schema = Arc::new(SchemaManager::new());
        schema.register_mapping(crate::mappings::nws_mapping());
        let env = DriverEnv::new(net, schema, "gw");
        let driver = NwsDriver::new(env.clone());
        (env, driver)
    }

    fn query(driver: &NwsDriver, sql: &str) -> gridrm_dbc::RowSet {
        let url = JdbcUrl::parse("jdbc:nws://node00.n/perfdata").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        let mut rs = stmt.execute_query(sql).unwrap();
        gridrm_dbc::RowSet::materialize(rs.as_mut()).unwrap()
    }

    #[test]
    fn network_element_rows() {
        let (_env, driver) = setup();
        let rs = query(&driver, "SELECT * FROM NetworkElement");
        assert!(rs.len() >= 2, "{} pairs", rs.len());
        let src = rs.meta().column_index("SourceHost").unwrap();
        let bw = rs.meta().column_index("BandwidthMbps").unwrap();
        let fm = rs.meta().column_index("ForecastMethod").unwrap();
        for row in rs.rows() {
            assert!(!row[src].is_null());
            assert!(row[bw].as_f64().unwrap() > 0.0);
            assert!(!row[fm].is_null(), "forecast method missing");
        }
    }

    #[test]
    fn forecast_skipped_when_not_selected() {
        let (env, driver) = setup();
        let before = env
            .network
            .stats_for("gw", "node00.n:nws")
            .snapshot()
            .requests;
        let rs = query(
            &driver,
            "SELECT SourceHost, BandwidthMbps FROM NetworkElement",
        );
        let after = env
            .network
            .stats_for("gw", "node00.n:nws")
            .snapshot()
            .requests;
        let per_pair = (after - before - 2) as usize; // minus connect probe + SERIES
        assert_eq!(per_pair, rs.len(), "one MEASURE per pair, no FORECAST");
    }

    #[test]
    fn where_filters_pairs() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "SELECT SourceHost, DestHost FROM NetworkElement WHERE DestHost = 'node00.remote'",
        );
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn other_groups_unsupported() {
        let (_env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:nws://node00.n/x").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        assert!(matches!(
            stmt.execute_query("SELECT * FROM Processor").err().unwrap(),
            SqlError::Unsupported(_)
        ));
    }

    #[test]
    fn wildcard_probe() {
        let (_env, driver) = setup();
        assert!(driver.accepts_url(&JdbcUrl::parse("jdbc:://node00.n/x").unwrap()));
        assert!(!driver.accepts_url(&JdbcUrl::parse("jdbc:://ghost/x").unwrap()));
    }

    #[test]
    fn kv_parser_handles_method_suffix() {
        let row = parse_kv_lines("bandwidthMbps_forecast 42.5 method sliding_mean_5 mse 0.01\n");
        assert_eq!(
            row.get("bandwidthMbps_forecast"),
            Some(&SqlValue::Float(42.5))
        );
        assert_eq!(
            row.get("bandwidthMbps_forecast.method"),
            Some(&SqlValue::Str("sliding_mean_5".into()))
        );
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use gridrm_agents::deploy_site;
    use gridrm_glue::SchemaManager;
    use gridrm_resmodel::{SiteModel, SiteSpec};
    use gridrm_simnet::{Network, SimClock};

    #[test]
    fn ttl_cache_avoids_sensor_traffic() {
        let net = Network::new(SimClock::new(), 3);
        let mut spec = SiteSpec::new("nc", 2, 2);
        spec.peers = vec!["node00.far".to_owned()];
        let site = SiteModel::generate(19, &spec);
        site.advance_to(900_000);
        deploy_site(&net, site);
        let schema = Arc::new(SchemaManager::new());
        schema.register_mapping(crate::mappings::nws_mapping());
        let env = DriverEnv::new(net.clone(), schema, "gw");
        let driver = NwsDriver::new(env.clone());

        let url = JdbcUrl::parse("jdbc:nws://node00.nc/perf?ttl=30000").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        let sql = "SELECT SourceHost, BandwidthMbps FROM NetworkElement";
        let _ = stmt.execute_query(sql).unwrap();
        let agent = net.endpoint_stats("node00.nc:nws").unwrap();
        let before = agent.snapshot().requests_served;
        for _ in 0..10 {
            let _ = stmt.execute_query(sql).unwrap();
        }
        assert_eq!(agent.snapshot().requests_served, before, "cache bypassed");
        // After the TTL, the sensor is consulted again.
        env.clock.advance(60_000);
        let _ = stmt.execute_query(sql).unwrap();
        assert!(agent.snapshot().requests_served > before);
        let (_q, _n, hits, _b) = driver.stats().snapshot();
        assert_eq!(hits, 10);
    }

    #[test]
    fn forecast_and_plain_cached_separately() {
        let net = Network::new(SimClock::new(), 3);
        let mut spec = SiteSpec::new("nd", 2, 2);
        spec.peers = vec!["node00.far".to_owned()];
        let site = SiteModel::generate(23, &spec);
        site.advance_to(900_000);
        deploy_site(&net, site);
        let schema = Arc::new(SchemaManager::new());
        schema.register_mapping(crate::mappings::nws_mapping());
        let env = DriverEnv::new(net.clone(), schema, "gw");
        let driver = NwsDriver::new(env);

        let url = JdbcUrl::parse("jdbc:nws://node00.nd/perf?ttl=30000").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        // Plain query cached; forecast query must still hit the sensor
        // once (different cache key), then be served from cache too.
        let _ = stmt
            .execute_query("SELECT SourceHost, BandwidthMbps FROM NetworkElement")
            .unwrap();
        let agent = net.endpoint_stats("node00.nd:nws").unwrap();
        let before = agent.snapshot().requests_served;
        let rs = stmt
            .execute_query("SELECT SourceHost, ForecastMethod FROM NetworkElement")
            .unwrap();
        drop(rs);
        assert!(agent.snapshot().requests_served > before);
        let mid = agent.snapshot().requests_served;
        let _ = stmt
            .execute_query("SELECT SourceHost, ForecastMethod FROM NetworkElement")
            .unwrap();
        assert_eq!(agent.snapshot().requests_served, mid);
    }
}
