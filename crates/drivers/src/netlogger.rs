//! The JDBC-NetLogger driver: fine-grained ULM log queries for the GLUE
//! `Event` group, with predicate push-down — a `WHERE Category = '…'`
//! becomes a native `QUERY <event>` instead of a full `TAIL` (§3.2.4:
//! "fine grained native requests for data are possible").
//!
//! URL form: `jdbc:netlogger://<head-host>/<log>[?limit=n]`.

use crate::base::{finish_select, glue_translate, parse_select, DriverEnv, DriverStats};
use gridrm_agents::netlogger::UlmEvent;
use gridrm_dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, SqlError,
    Statement,
};
use gridrm_glue::{NativeRow, SchemaHandle, Translator};
use gridrm_sqlparse::ast::{BinaryOp, Expr};
use gridrm_sqlparse::SqlValue;
use std::sync::Arc;

/// Driver name as registered with the gateway.
pub const DRIVER_NAME: &str = "jdbc-netlogger";

/// The JDBC-NetLogger [`Driver`].
pub struct NetLoggerDriver {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
}

impl NetLoggerDriver {
    /// Create the driver over a gateway environment.
    pub fn new(env: Arc<DriverEnv>) -> Arc<NetLoggerDriver> {
        Arc::new(NetLoggerDriver {
            env,
            stats: Arc::new(DriverStats::default()),
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> Arc<DriverStats> {
        self.stats.clone()
    }
}

/// Find an equality constraint `column = 'literal'` anywhere in the
/// top-level AND-chain of a predicate — the push-down opportunity.
pub fn find_eq_literal<'e>(expr: &'e Expr, column: &str) -> Option<&'e SqlValue> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column { name, .. }, Expr::Literal(v))
            | (Expr::Literal(v), Expr::Column { name, .. })
                if name.eq_ignore_ascii_case(column) =>
            {
                Some(v)
            }
            _ => None,
        },
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => find_eq_literal(left, column).or_else(|| find_eq_literal(right, column)),
        _ => None,
    }
}

impl Driver for NetLoggerDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: DRIVER_NAME.to_owned(),
            subprotocol: "netlogger".to_owned(),
            version: (1, 0),
            description: "GridRM driver for NetLogger ULM event logs".to_owned(),
        }
    }

    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        if url.subprotocol == "netlogger" {
            return true;
        }
        if !url.is_wildcard() {
            return false;
        }
        matches!(
            self.env.native_request(&url.host, "netlogger", b"TAIL 1"),
            Ok(bytes) if !bytes.starts_with(b"ERROR")
        )
    }

    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        self.stats.native();
        let probe = self.env.native_request(&url.host, "netlogger", b"TAIL 1")?;
        if probe.starts_with(b"ERROR") {
            return Err(SqlError::Connection(
                "NetLogger agent rejected probe".into(),
            ));
        }
        let handle = self.env.schema.handle_for(DRIVER_NAME);
        Ok(Box::new(NetLoggerConnection {
            env: self.env.clone(),
            stats: self.stats.clone(),
            url: url.clone(),
            handle,
            closed: false,
        }))
    }
}

struct NetLoggerConnection {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    url: JdbcUrl,
    handle: SchemaHandle,
    closed: bool,
}

impl Connection for NetLoggerConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        Ok(Box::new(NetLoggerStatement {
            env: self.env.clone(),
            stats: self.stats.clone(),
            url: self.url.clone(),
            handle: self.handle.clone(),
        }))
    }

    fn url(&self) -> &JdbcUrl {
        &self.url
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }
}

struct NetLoggerStatement {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    url: JdbcUrl,
    handle: SchemaHandle,
}

impl Statement for NetLoggerStatement {
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        self.stats.query();
        let sel = parse_select(sql)?;
        self.env
            .schema
            .ensure_current(&mut self.handle, DRIVER_NAME);
        let group = self
            .handle
            .group(&sel.table)
            .ok_or_else(|| SqlError::Unsupported(format!("unknown GLUE group '{}'", sel.table)))?
            .clone();
        if !group.name.eq_ignore_ascii_case("Event") {
            return Err(SqlError::Unsupported(format!(
                "{DRIVER_NAME} only implements Event, not '{}'",
                group.name
            )));
        }

        let limit: usize = self
            .url
            .param("limit")
            .and_then(|s| s.parse().ok())
            .unwrap_or(500);

        // Predicate push-down: Category = 'x' → native QUERY; otherwise a
        // HOSTQ for Hostname = 'x'; otherwise a plain TAIL.
        let cmd = if let Some(category) = sel
            .where_clause
            .as_ref()
            .and_then(|w| find_eq_literal(w, "Category"))
            .and_then(|v| v.as_str().map(str::to_owned))
        {
            format!("QUERY {category} {limit}")
        } else if let Some(host) = sel
            .where_clause
            .as_ref()
            .and_then(|w| find_eq_literal(w, "Hostname"))
            .and_then(|v| v.as_str().map(str::to_owned))
        {
            format!("HOSTQ {host} {limit}")
        } else {
            format!("TAIL {limit}")
        };

        self.stats.native();
        let bytes = self
            .env
            .native_request(&self.url.host, "netlogger", cmd.as_bytes())?;
        self.stats.parsed(bytes.len());
        let text = String::from_utf8_lossy(&bytes);
        if text.starts_with("ERROR") {
            return Err(SqlError::Driver(format!("NetLogger: {}", text.trim())));
        }

        let source_url = self.url.to_string();
        let native_rows: Vec<NativeRow> = text
            .lines()
            .filter_map(UlmEvent::parse)
            .map(|e| {
                let mut row = NativeRow::new();
                row.insert("source_url".into(), SqlValue::Str(source_url.clone()));
                row.insert("host".into(), SqlValue::Str(e.host.clone()));
                row.insert("level".into(), SqlValue::Str(e.level.clone()));
                row.insert("event".into(), SqlValue::Str(e.event.clone()));
                row.insert("line".into(), SqlValue::Str(e.to_line()));
                row.insert("at_ms".into(), SqlValue::Timestamp(e.at_ms as i64));
                row.insert("value".into(), SqlValue::from(e.value));
                row
            })
            .collect();

        let translator = Translator::new(&self.handle);
        let rows = glue_translate(&translator, &group.name, &native_rows)?;
        let rs = finish_select(&group, rows, &sel, self.env.clock.now_ts())?;
        Ok(Box::new(rs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_agents::deploy_site;
    use gridrm_glue::SchemaManager;
    use gridrm_resmodel::{SiteModel, SiteSpec};
    use gridrm_simnet::{Network, SimClock};

    fn setup() -> (Arc<DriverEnv>, Arc<NetLoggerDriver>) {
        let net = Network::new(SimClock::new(), 6);
        let site = SiteModel::generate(17, &SiteSpec::new("l", 2, 2));
        site.advance_to(60_000);
        let agents = deploy_site(&net, site);
        agents.pump(); // generate one batch of events
        let schema = Arc::new(SchemaManager::new());
        schema.register_mapping(crate::mappings::netlogger_mapping());
        let env = DriverEnv::new(net, schema, "gw");
        let driver = NetLoggerDriver::new(env.clone());
        (env, driver)
    }

    fn query(driver: &NetLoggerDriver, sql: &str) -> gridrm_dbc::RowSet {
        let url = JdbcUrl::parse("jdbc:netlogger://node00.l/log").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        let mut rs = stmt.execute_query(sql).unwrap();
        gridrm_dbc::RowSet::materialize(rs.as_mut()).unwrap()
    }

    #[test]
    fn events_normalised_to_glue() {
        let (_env, driver) = setup();
        let rs = query(&driver, "SELECT Hostname, Category, Value, At FROM Event");
        assert!(rs.len() >= 4, "{} events", rs.len());
        for row in rs.rows() {
            assert!(!row[0].is_null());
            assert!(!row[1].is_null());
            assert!(matches!(row[3], SqlValue::Timestamp(_)));
        }
    }

    #[test]
    fn category_pushdown_filters_natively() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "SELECT Category FROM Event WHERE Category = 'cpu.load'",
        );
        assert!(rs.len() >= 2);
        assert!(rs
            .rows()
            .iter()
            .all(|r| r[0] == SqlValue::Str("cpu.load".into())));
    }

    #[test]
    fn hostname_pushdown() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "SELECT Hostname FROM Event WHERE Hostname = 'node01.l'",
        );
        assert!(!rs.is_empty());
        assert!(rs
            .rows()
            .iter()
            .all(|r| r[0] == SqlValue::Str("node01.l".into())));
    }

    #[test]
    fn eq_literal_finder() {
        let w = gridrm_sqlparse::parse_expr("Category = 'cpu.load' AND Value > 1").unwrap();
        assert_eq!(
            find_eq_literal(&w, "Category"),
            Some(&SqlValue::Str("cpu.load".into()))
        );
        assert_eq!(find_eq_literal(&w, "Hostname"), None);
        // OR-chains must NOT push down (the other branch could match more).
        let w = gridrm_sqlparse::parse_expr("Category = 'a' OR Hostname = 'b'").unwrap();
        assert_eq!(find_eq_literal(&w, "Category"), None);
        // Reversed operand order still found.
        let w = gridrm_sqlparse::parse_expr("'x' = Category").unwrap();
        assert!(find_eq_literal(&w, "Category").is_some());
    }

    #[test]
    fn event_group_only() {
        let (_env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:netlogger://node00.l/log").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        assert!(matches!(
            stmt.execute_query("SELECT * FROM Processor").err().unwrap(),
            SqlError::Unsupported(_)
        ));
    }

    #[test]
    fn wildcard_probe() {
        let (_env, driver) = setup();
        assert!(driver.accepts_url(&JdbcUrl::parse("jdbc:://node00.l/x").unwrap()));
        assert!(!driver.accepts_url(&JdbcUrl::parse("jdbc:://ghost/x").unwrap()));
    }
}
