//! The GridRM driver development kit (§3.2.1's "supplied as part of a
//! GridRM driver development API"): the shared environment handle, SQL
//! parsing helpers, GLUE result assembly and per-driver statistics.

use gridrm_dbc::{ColumnMeta, DbcResult, ResultSetMetaData, RowSet, SqlError};
use gridrm_glue::{GroupDef, NativeRow, SchemaManager, Translator};
use gridrm_simnet::{Network, SimClock};
use gridrm_sqlparse::ast::{ColumnDef, SelectStatement, Statement};
use gridrm_sqlparse::SqlValue;
use gridrm_store::{Store, Table};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-driver activity counters (read by experiments E8/E9).
#[derive(Debug, Default)]
pub struct DriverStats {
    /// SQL queries executed.
    pub queries: AtomicU64,
    /// Native protocol requests sent to agents.
    pub native_requests: AtomicU64,
    /// Queries answered from a driver-internal cache.
    pub cache_hits: AtomicU64,
    /// Bytes of native payload parsed.
    pub bytes_parsed: AtomicU64,
}

impl DriverStats {
    /// Snapshot `(queries, native_requests, cache_hits, bytes_parsed)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.queries.load(Ordering::Relaxed),
            self.native_requests.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.bytes_parsed.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn native(&self) {
        self.native_requests.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn parsed(&self, bytes: usize) {
        self.bytes_parsed.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// Everything a driver needs from its hosting gateway: the network, the
/// schema manager, the virtual clock, the gateway's own network identity,
/// and any locally mounted stores (for the JDBC-GridRM driver).
pub struct DriverEnv {
    /// The (simulated) network agents live on.
    pub network: Arc<Network>,
    /// The gateway's Naming Schema Manager.
    pub schema: Arc<SchemaManager>,
    /// Shared virtual clock.
    pub clock: Arc<SimClock>,
    /// Address requests originate from (the gateway's identity).
    pub source_addr: String,
    /// Locally mounted SQL stores by name (`jdbc:gridrm://local/<name>`).
    pub stores: RwLock<HashMap<String, Store>>,
}

impl DriverEnv {
    /// Build an environment.
    pub fn new(
        network: Arc<Network>,
        schema: Arc<SchemaManager>,
        source_addr: &str,
    ) -> Arc<DriverEnv> {
        let clock = network.clock().clone();
        Arc::new(DriverEnv {
            network,
            schema,
            clock,
            source_addr: source_addr.to_owned(),
            stores: RwLock::new(HashMap::new()),
        })
    }

    /// Mount a store under a name for the JDBC-GridRM driver.
    pub fn mount_store(&self, name: &str, store: Store) {
        self.stores.write().insert(name.to_owned(), store);
    }

    /// Resolve a mounted store.
    pub fn store(&self, name: &str) -> Option<Store> {
        self.stores.read().get(name).cloned()
    }

    /// Send a native request to `"{host}:{proto}"` over the network,
    /// mapping network failures to [`SqlError::Connection`].
    pub fn native_request(&self, host: &str, proto: &str, payload: &[u8]) -> DbcResult<Vec<u8>> {
        self.network
            .request(&self.source_addr, &format!("{host}:{proto}"), payload)
            .map_err(|e| SqlError::Connection(e.to_string()))
    }
}

/// Parse SQL and require a `SELECT` (agent data sources are read-only).
pub fn parse_select(sql: &str) -> DbcResult<SelectStatement> {
    match gridrm_sqlparse::parse(sql)? {
        Statement::Select(sel) => Ok(sel),
        other => Err(SqlError::Unsupported(format!(
            "data-source drivers only accept SELECT, got: {other}"
        ))),
    }
}

/// GLUE-translate a batch of native rows for `group`, reporting the
/// translation into the ambient trace (when the query is traced): a
/// `glue {group}` child span whose `glue_translate` stage lists the
/// group attributes this driver's mapping cannot translate at all —
/// the §3.2.3 "not possible to translate" drops — plus the NULL count
/// across the batch.
pub fn glue_translate(
    translator: &Translator<'_>,
    group: &str,
    native_rows: &[NativeRow],
) -> DbcResult<Vec<Vec<SqlValue>>> {
    let span = gridrm_telemetry::active::child_span(&format!("glue {group}"));
    let result = translator
        .translate_all(group, native_rows)
        .ok_or_else(|| SqlError::Driver("group vanished from schema".into()));
    if let Some(mut s) = span {
        match &result {
            Ok((rows, nulls)) => {
                let dropped = translator.unmapped_attributes(group);
                let detail = if dropped.is_empty() {
                    format!("dropped none; {} rows, {nulls} nulls", rows.len())
                } else {
                    format!(
                        "dropped {}; {} rows, {nulls} nulls",
                        dropped.join(","),
                        rows.len()
                    )
                };
                s.stage_with("glue_translate", &detail);
                s.finish("ok");
            }
            Err(_) => {
                s.stage_with("glue_translate", "group vanished from schema");
                s.finish("error");
            }
        }
    }
    result.map(|(rows, _nulls)| rows)
}

/// Assemble the final result set from GLUE-translated rows: builds a
/// transient table over the group's attributes and runs the full SELECT
/// semantics (`WHERE`, projection, `ORDER BY`, `LIMIT`, aggregates) via the
/// store's query engine. Column metadata carries the GLUE units.
pub fn finish_select(
    group: &GroupDef,
    rows: Vec<Vec<SqlValue>>,
    sel: &SelectStatement,
    now: i64,
) -> DbcResult<RowSet> {
    let columns: Vec<ColumnDef> = group
        .attributes
        .iter()
        .map(|a| ColumnDef {
            name: a.name.clone(),
            ty: a.ty,
            primary_key: false,
        })
        .collect();
    let table = Table {
        name: group.name.clone(),
        columns,
        rows,
    };
    let rs = gridrm_store::select_in_memory(&table, sel, now)
        .map_err(|e| SqlError::Driver(e.to_string()))?;
    // Re-decorate metadata with GLUE units where columns are plain attrs.
    let meta = ResultSetMetaData::new(
        rs.meta()
            .columns()
            .iter()
            .map(|c| {
                let mut cm = ColumnMeta::new(c.name.clone(), c.ty).with_table(group.name.clone());
                if let Some(attr) = group.attribute(&c.name) {
                    if let Some(u) = &attr.unit {
                        cm = cm.with_unit(u.clone());
                    }
                }
                cm
            })
            .collect(),
    );
    RowSet::new(meta, rs.rows().to_vec())
}

/// Convert an SNMP-style text number into an [`SqlValue`] guess (used by
/// the text-based drivers). Integers stay integral.
pub fn guess_value(text: &str) -> SqlValue {
    let t = text.trim();
    if let Ok(i) = t.parse::<i64>() {
        return SqlValue::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return SqlValue::Float(f);
    }
    match t.to_ascii_lowercase().as_str() {
        "true" | "yes" | "up" => SqlValue::Bool(true),
        "false" | "no" | "down" => SqlValue::Bool(false),
        _ => SqlValue::Str(t.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_glue::builtin_schema;
    use gridrm_sqlparse::SqlType;

    #[test]
    fn parse_select_rejects_dml() {
        assert!(parse_select("SELECT * FROM Processor").is_ok());
        assert!(matches!(
            parse_select("DELETE FROM Processor"),
            Err(SqlError::Unsupported(_))
        ));
        assert!(matches!(parse_select("garbage"), Err(SqlError::Syntax(_))));
    }

    #[test]
    fn guess_value_types() {
        assert_eq!(guess_value("42"), SqlValue::Int(42));
        assert_eq!(guess_value("4.5"), SqlValue::Float(4.5));
        assert_eq!(guess_value("up"), SqlValue::Bool(true));
        assert_eq!(guess_value("hello"), SqlValue::Str("hello".into()));
    }

    #[test]
    fn finish_select_applies_where_and_projection() {
        let schema = builtin_schema();
        let group = schema.group("Processor").unwrap();
        let ncols = group.attributes.len();
        let mk_row = |host: &str, load: f64| {
            let mut row = vec![SqlValue::Null; ncols];
            row[group.attribute_index("Hostname").unwrap()] = SqlValue::Str(host.to_owned());
            row[group.attribute_index("Load1").unwrap()] = SqlValue::Float(load);
            row
        };
        let rows = vec![mk_row("a", 0.2), mk_row("b", 1.5), mk_row("c", 2.5)];
        let sel =
            parse_select("SELECT Hostname FROM Processor WHERE Load1 > 1.0 ORDER BY Load1 DESC")
                .unwrap();
        let rs = finish_select(group, rows, &sel, 0).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows()[0][0], SqlValue::Str("c".into()));
        assert_eq!(rs.meta().column_count(), 1);
    }

    #[test]
    fn finish_select_carries_units() {
        let schema = builtin_schema();
        let group = schema.group("MainMemory").unwrap();
        let sel = parse_select("SELECT RAMSizeMB FROM MainMemory").unwrap();
        let rs = finish_select(group, Vec::new(), &sel, 0).unwrap();
        assert_eq!(rs.meta().column(0).unwrap().unit.as_deref(), Some("MB"));
        assert_eq!(rs.meta().column_type(0).unwrap(), SqlType::Int);
    }

    #[test]
    fn env_store_mounting() {
        let net = Network::new(SimClock::new(), 1);
        let env = DriverEnv::new(net, Arc::new(SchemaManager::new()), "gw");
        assert!(env.store("history").is_none());
        env.mount_store("history", Store::new());
        assert!(env.store("history").is_some());
    }
}
