//! The bundled drivers' GLUE implementation metadata (§3.2.3): for each
//! driver, which GLUE attributes it can supply from which native keys, and
//! with which transforms. Registered with the gateway's `SchemaManager`
//! when the drivers are installed.
//!
//! Attributes deliberately left unmapped (e.g. `IPAddress` via SNMP, CPU
//! `Model` via Ganglia) exercise the paper's rule that untranslatable
//! values come back NULL.

use gridrm_agents::snmp::oids;
use gridrm_glue::{DriverMapping, FieldMapping, Transform};
use gridrm_sqlparse::SqlValue;
use std::collections::BTreeMap;

const KB_TO_MB: f64 = 1.0 / 1024.0;
const CENTI: f64 = 0.01;

fn scaled(key: &str, factor: f64) -> FieldMapping {
    FieldMapping::scaled(key, factor)
}

fn direct(key: &str) -> FieldMapping {
    FieldMapping::direct(key)
}

/// GLUE mapping for the JDBC-SNMP driver. Native keys are OID strings;
/// indexed (table) groups use the column *prefix* OID.
pub fn snmp_mapping() -> DriverMapping {
    let la1 = format!("{}.1", oids::LA_LOAD_INT);
    let la5 = format!("{}.2", oids::LA_LOAD_INT);
    let la15 = format!("{}.3", oids::LA_LOAD_INT);
    let mut up_table = BTreeMap::new();
    up_table.insert("1".to_owned(), SqlValue::Bool(true));
    up_table.insert("2".to_owned(), SqlValue::Bool(false));
    DriverMapping::new("jdbc-snmp")
        .with_group(
            "Host",
            [
                ("Hostname", direct(oids::SYS_NAME)),
                // sysUpTime is TimeTicks (centiseconds) → seconds.
                ("UpTimeSec", scaled(oids::SYS_UPTIME, CENTI)),
            ],
        )
        .with_group(
            "Processor",
            [
                ("Hostname", direct(oids::SYS_NAME)),
                ("NCpu", direct(oids::HR_NUM_CPU)),
                ("ClockMHz", direct(oids::CPU_MHZ)),
                ("Model", direct(oids::CPU_MODEL)),
                ("Vendor", direct(oids::CPU_VENDOR)),
                ("Load1", scaled(la1.as_str(), CENTI)),
                ("Load5", scaled(la5.as_str(), CENTI)),
                ("Load15", scaled(la15.as_str(), CENTI)),
                ("CpuUser", direct(oids::SS_CPU_USER)),
                ("CpuSystem", direct(oids::SS_CPU_SYSTEM)),
                ("CpuIdle", direct(oids::SS_CPU_IDLE)),
            ],
        )
        .with_group(
            "MainMemory",
            [
                ("Hostname", direct(oids::SYS_NAME)),
                ("RAMSizeMB", scaled(oids::HR_MEMORY_SIZE, KB_TO_MB)),
                ("RAMAvailableMB", scaled(oids::MEM_AVAIL_REAL, KB_TO_MB)),
                ("VirtualSizeMB", scaled(oids::MEM_TOTAL_SWAP, KB_TO_MB)),
                ("VirtualAvailableMB", scaled(oids::MEM_AVAIL_SWAP, KB_TO_MB)),
            ],
        )
        .with_group(
            "OperatingSystem",
            [
                ("Hostname", direct(oids::SYS_NAME)),
                // sysDescr carries the whole identity string; Release and
                // Version are not separately available → NULL (§3.2.3).
                ("Name", direct(oids::SYS_DESCR)),
            ],
        )
        .with_group(
            "NetworkAdapter",
            [
                ("Hostname", direct(oids::SYS_NAME)),
                ("Name", direct(oids::IF_DESCR)),
                ("MTU", direct(oids::IF_MTU)),
                ("RxBytes", direct(oids::IF_IN_OCTETS)),
                ("TxBytes", direct(oids::IF_OUT_OCTETS)),
                (
                    "Up",
                    FieldMapping {
                        native_key: oids::IF_OPER_STATUS.to_owned(),
                        transform: Transform::Enum { table: up_table },
                    },
                ),
            ],
        )
        .with_group(
            "FileSystem",
            [
                ("Hostname", direct(oids::SYS_NAME)),
                ("Name", direct(oids::HR_STORAGE_DESCR)),
                ("SizeMB", direct(oids::HR_STORAGE_SIZE)),
                // Synthesised by the driver from size - used.
                ("AvailableMB", direct("derived.hrStorageAvail")),
            ],
        )
        .with_group(
            "Disk",
            [
                ("Hostname", direct(oids::SYS_NAME)),
                ("Device", direct(oids::DISK_IO_DEVICE)),
                ("ReadCount", direct(oids::DISK_IO_READS)),
                ("WriteCount", direct(oids::DISK_IO_WRITES)),
            ],
        )
}

/// GLUE mapping for the JDBC-Ganglia driver. Native keys are gmond metric
/// names plus the synthetic `host.*` keys the driver extracts from HOST
/// element attributes.
pub fn ganglia_mapping() -> DriverMapping {
    DriverMapping::new("jdbc-ganglia")
        .with_group(
            "Host",
            [
                ("Hostname", direct("host.name")),
                ("UpTimeSec", direct("derived.uptime_sec")),
                ("BootTime", scaled("boottime", 1000.0)),
            ],
        )
        .with_group(
            "Processor",
            [
                ("Hostname", direct("host.name")),
                ("NCpu", direct("cpu_num")),
                ("ClockMHz", direct("cpu_speed")),
                ("Load1", direct("load_one")),
                ("Load5", direct("load_five")),
                ("Load15", direct("load_fifteen")),
                ("CpuUser", direct("cpu_user")),
                ("CpuSystem", direct("cpu_system")),
                ("CpuIdle", direct("cpu_idle")),
            ],
        )
        .with_group(
            "MainMemory",
            [
                ("Hostname", direct("host.name")),
                ("RAMSizeMB", scaled("mem_total", KB_TO_MB)),
                ("RAMAvailableMB", scaled("mem_free", KB_TO_MB)),
                ("VirtualSizeMB", scaled("swap_total", KB_TO_MB)),
                ("VirtualAvailableMB", scaled("swap_free", KB_TO_MB)),
            ],
        )
        .with_group(
            "OperatingSystem",
            [
                ("Hostname", direct("host.name")),
                ("Name", direct("os_name")),
                ("Release", direct("os_release")),
            ],
        )
        .with_group(
            "NetworkAdapter",
            [
                ("Hostname", direct("host.name")),
                ("IPAddress", direct("host.ip")),
                ("RxBytes", direct("bytes_in")),
                ("TxBytes", direct("bytes_out")),
            ],
        )
}

/// GLUE mapping for the JDBC-NWS driver (NetworkElement group).
pub fn nws_mapping() -> DriverMapping {
    DriverMapping::new("jdbc-nws").with_group(
        "NetworkElement",
        [
            ("SourceHost", direct("src")),
            ("DestHost", direct("dst")),
            ("BandwidthMbps", direct("bandwidthMbps")),
            ("LatencyMs", direct("latencyMs")),
            ("ForecastBandwidthMbps", direct("forecastBandwidthMbps")),
            ("ForecastLatencyMs", direct("forecastLatencyMs")),
            ("ForecastMethod", direct("forecastMethod")),
        ],
    )
}

/// GLUE mapping for the JDBC-NetLogger driver (Event group).
pub fn netlogger_mapping() -> DriverMapping {
    DriverMapping::new("jdbc-netlogger").with_group(
        "Event",
        [
            ("SourceUrl", direct("source_url")),
            ("Hostname", direct("host")),
            ("Severity", direct("level")),
            ("Category", direct("event")),
            ("Message", direct("line")),
            ("At", direct("at_ms")),
            ("Value", direct("value")),
        ],
    )
}

/// GLUE mapping for the JDBC-SCMS driver.
pub fn scms_mapping() -> DriverMapping {
    DriverMapping::new("jdbc-scms")
        .with_group(
            "Host",
            [
                ("Hostname", direct("host")),
                ("UpTimeSec", direct("uptime_sec")),
            ],
        )
        .with_group(
            "Processor",
            [
                ("Hostname", direct("host")),
                ("NCpu", direct("ncpu")),
                ("ClockMHz", direct("cpu_mhz")),
                ("Load1", direct("load1")),
                ("Load5", direct("load5")),
            ],
        )
        .with_group(
            "MainMemory",
            [
                ("Hostname", direct("host")),
                ("RAMSizeMB", direct("mem_total_mb")),
                ("RAMAvailableMB", direct("mem_free_mb")),
            ],
        )
        .with_group(
            "ComputeElement",
            [
                ("CEId", direct("ce_id")),
                ("SiteName", direct("site")),
                ("TotalCpus", direct("cpus_total")),
                ("FreeCpus", direct("cpus_free")),
                ("RunningJobs", direct("jobs_running")),
                ("WaitingJobs", direct("jobs_waiting")),
                ("Status", direct("status")),
            ],
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_mappings_name_their_driver() {
        assert_eq!(snmp_mapping().driver, "jdbc-snmp");
        assert_eq!(ganglia_mapping().driver, "jdbc-ganglia");
        assert_eq!(nws_mapping().driver, "jdbc-nws");
        assert_eq!(netlogger_mapping().driver, "jdbc-netlogger");
        assert_eq!(scms_mapping().driver, "jdbc-scms");
    }

    #[test]
    fn snmp_supports_processor_not_networkelement() {
        let m = snmp_mapping();
        assert!(m.supports_group("Processor"));
        assert!(m.supports_group("FileSystem"));
        assert!(!m.supports_group("NetworkElement"));
    }

    #[test]
    fn mapping_attributes_exist_in_builtin_schema() {
        // Every mapped attribute must actually be a GLUE attribute of the
        // group it claims to implement.
        let schema = gridrm_glue::builtin_schema();
        for mapping in [
            snmp_mapping(),
            ganglia_mapping(),
            nws_mapping(),
            netlogger_mapping(),
            scms_mapping(),
        ] {
            for (group, fields) in &mapping.groups {
                let def = schema
                    .group(group)
                    .unwrap_or_else(|| panic!("{}: unknown group {group}", mapping.driver));
                for attr in fields.keys() {
                    assert!(
                        def.attribute(attr).is_some(),
                        "{}: {group}.{attr} not in GLUE",
                        mapping.driver
                    );
                }
            }
        }
    }

    #[test]
    fn load_uses_centi_scale() {
        let m = snmp_mapping();
        let fields = m.group("Processor").unwrap();
        let load1 = &fields["Load1"];
        assert!(matches!(
            load1.transform,
            Transform::Scale { factor } if (factor - 0.01).abs() < 1e-12
        ));
    }
}
