//! The JDBC-Telemetry driver: the gateway's own observability surfaces
//! exposed as virtual SQL tables, queryable through the normal driver
//! path — the "monitor the monitor" loop.
//!
//! `gridrm_telemetry` — one row per flattened registry sample:
//!
//! | column | type  | meaning                                        |
//! |--------|-------|------------------------------------------------|
//! | name   | TEXT  | sample name (`gridrm_requests_total`, `…_sum`) |
//! | kind   | TEXT  | family kind: counter, gauge or histogram       |
//! | labels | TEXT  | rendered labels (`driver="jdbc-snmp",le="10"`) |
//! | value  | REAL  | sample value                                   |
//!
//! `gridrm_health` — one row per tracked data source (see
//! `gridrm_core::health`): source, state, consecutive failure/success
//! streaks, last-ok/last-probe/last-transition times, last error, last
//! failed driver and total transition count.
//!
//! `gridrm_journal` — one row per structured journal entry: seq, at_ms,
//! severity, kind, source, driver, stage, message and the trace id of
//! the query that produced the entry (NULL for untraced events).
//!
//! `gridrm_slow_queries` — one row per slow-query log entry: trace id,
//! request summary, source, started/finished/duration, outcome and a
//! rendered per-stage breakdown.
//!
//! `gridrm_spans` — one row per span in the trace ring buffer, oldest
//! first: trace/span/parent identifiers, originating site, request,
//! timings, outcome and the rendered stage breakdown. Joining rows on
//! `trace_id` reconstructs the same tree `EXPLAIN ANALYZE` renders.
//!
//! `gridrm_metrics_history` — one row per recorded time-series sample
//! (see `gridrm_telemetry::timeseries`), ordered by series then time:
//!
//! | column     | type      | meaning                                  |
//! |------------|-----------|------------------------------------------|
//! | ts_ms      | TIMESTAMP | virtual sample time                      |
//! | name       | TEXT      | series name (histograms expand to        |
//! |            |           | `_count`/`_sum`/`_p50`/`_p95`/`_p99`)    |
//! | labels     | TEXT      | rendered labels                          |
//! | kind       | TEXT      | `counter` or `gauge`                     |
//! | value      | REAL      | sampled value                            |
//! | delta      | REAL      | counter increase since the previous      |
//! |            |           | sample (NULL for gauges/first sample)    |
//! | rate_per_s | REAL      | counter rate over the sample gap (NULL   |
//! |            |           | for gauges/first sample)                 |
//!
//! Equality filters on `name`/`labels` are pushed down to the recorder
//! so a single series is extracted without materialising every ring.
//! The canonical rollup is `TIME_BUCKET` + `GROUP BY`:
//! `SELECT TIME_BUCKET(60000, ts_ms) AS bucket, AVG(value) FROM
//! gridrm_metrics_history WHERE name = '…' GROUP BY
//! TIME_BUCKET(60000, ts_ms) ORDER BY bucket`.
//!
//! `gridrm_slo` — one row per declared SLO (see
//! `gridrm_telemetry::slo`): name, objective description, target,
//! last-observed good/total, fast/slow burn rates, remaining error
//! budget, firing flag, last transition time and transition count.
//!
//! `gridrm_subscriptions` — one row per live continuous-query
//! subscription (see `gridrm_core::stream`): id, origin, sql, watched
//! source count, cadence, backpressure policy, buffer capacity,
//! pending/emitted/delivered/dropped counts and emit/registration
//! times. Served empty when no stream manager is attached.
//!
//! `gridrm_query_costs` — one row per recently finished root query,
//! oldest first, from the cost ledger (see `gridrm_telemetry::cost`):
//! trace id, site, request, start/finish/duration, wire messages and
//! bytes in both directions, rows scanned/returned, driver fetch units
//! and whether the inclusive cost breached the configured budget.
//!
//! `gridrm_intrusion` — one row per (site, cause) intrusion bucket:
//! how much wire traffic this gateway imposed on each grid site
//! (endured, for its own site), split by cause (`query`, `probe`,
//! `subscription`, `gossip`), with per-virtual-second rates over the
//! bucket's observation window.
//!
//! URL form: `jdbc:telemetry://local/metrics`.

use crate::base::{parse_select, DriverStats};
use gridrm_core::health::HealthMonitor;
use gridrm_core::stream::StreamManager;
use gridrm_dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, SqlError,
    Statement,
};
use gridrm_sqlparse::ast::{BinaryOp, ColumnDef, Expr, SelectStatement};
use gridrm_sqlparse::{SqlType, SqlValue};
use gridrm_store::Table;
use gridrm_telemetry::GatewayTelemetry;
use std::sync::Arc;

/// Driver name as registered with the gateway.
pub const DRIVER_NAME: &str = "jdbc-telemetry";

/// The metrics virtual table name.
pub const TABLE_NAME: &str = "gridrm_telemetry";

/// The per-source health virtual table name.
pub const HEALTH_TABLE: &str = "gridrm_health";

/// The structured event-journal virtual table name.
pub const JOURNAL_TABLE: &str = "gridrm_journal";

/// The slow-query log virtual table name.
pub const SLOW_TABLE: &str = "gridrm_slow_queries";

/// The hierarchical-span virtual table name.
pub const SPANS_TABLE: &str = "gridrm_spans";

/// The metrics time-series virtual table name.
pub const HISTORY_TABLE: &str = "gridrm_metrics_history";

/// The SLO status virtual table name.
pub const SLO_TABLE: &str = "gridrm_slo";

/// The live-subscription virtual table name.
pub const SUBSCRIPTIONS_TABLE: &str = "gridrm_subscriptions";

/// The per-query cost-ledger virtual table name.
pub const COSTS_TABLE: &str = "gridrm_query_costs";

/// The per-site intrusion-profile virtual table name.
pub const INTRUSION_TABLE: &str = "gridrm_intrusion";

/// The JDBC-Telemetry [`Driver`].
pub struct TelemetryDriver {
    telemetry: GatewayTelemetry,
    health: Option<Arc<HealthMonitor>>,
    streams: Option<Arc<StreamManager>>,
    stats: Arc<DriverStats>,
}

impl TelemetryDriver {
    /// Create the driver over a gateway's telemetry hub. Without a
    /// health monitor the `gridrm_health` table is served empty.
    pub fn new(telemetry: GatewayTelemetry) -> Arc<TelemetryDriver> {
        TelemetryDriver::with_health(telemetry, None)
    }

    /// Create the driver over a gateway's telemetry hub and health
    /// monitor, enabling the `gridrm_health` table.
    pub fn with_health(
        telemetry: GatewayTelemetry,
        health: Option<Arc<HealthMonitor>>,
    ) -> Arc<TelemetryDriver> {
        TelemetryDriver::with_streams(telemetry, health, None)
    }

    /// Create the driver over a gateway's telemetry hub, health monitor
    /// and stream manager, enabling every virtual table.
    pub fn with_streams(
        telemetry: GatewayTelemetry,
        health: Option<Arc<HealthMonitor>>,
        streams: Option<Arc<StreamManager>>,
    ) -> Arc<TelemetryDriver> {
        Arc::new(TelemetryDriver {
            telemetry,
            health,
            streams,
            stats: Arc::new(DriverStats::default()),
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> Arc<DriverStats> {
        self.stats.clone()
    }
}

impl Driver for TelemetryDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: DRIVER_NAME.to_owned(),
            subprotocol: "telemetry".to_owned(),
            version: (1, 0),
            description: "Virtual SQL tables over the gateway's metrics, \
                          health, journal and slow-query log"
                .to_owned(),
        }
    }

    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        url.subprotocol == "telemetry"
    }

    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        Ok(Box::new(TelemetryConnection {
            telemetry: self.telemetry.clone(),
            health: self.health.clone(),
            streams: self.streams.clone(),
            stats: self.stats.clone(),
            url: url.clone(),
            closed: false,
        }))
    }
}

struct TelemetryConnection {
    telemetry: GatewayTelemetry,
    health: Option<Arc<HealthMonitor>>,
    streams: Option<Arc<StreamManager>>,
    stats: Arc<DriverStats>,
    url: JdbcUrl,
    closed: bool,
}

impl Connection for TelemetryConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        Ok(Box::new(TelemetryStatement {
            telemetry: self.telemetry.clone(),
            health: self.health.clone(),
            streams: self.streams.clone(),
            stats: self.stats.clone(),
        }))
    }

    fn url(&self) -> &JdbcUrl {
        &self.url
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }
}

struct TelemetryStatement {
    telemetry: GatewayTelemetry,
    health: Option<Arc<HealthMonitor>>,
    streams: Option<Arc<StreamManager>>,
    stats: Arc<DriverStats>,
}

fn columns(spec: &[(&str, SqlType)]) -> Vec<ColumnDef> {
    spec.iter()
        .map(|(name, ty)| ColumnDef {
            name: (*name).to_owned(),
            ty: *ty,
            primary_key: false,
        })
        .collect()
}

fn opt_str(v: &Option<String>) -> SqlValue {
    match v {
        Some(s) => SqlValue::Str(s.clone()),
        None => SqlValue::Null,
    }
}

fn opt_ms(v: Option<u64>) -> SqlValue {
    match v {
        Some(ms) => SqlValue::Int(ms as i64),
        None => SqlValue::Null,
    }
}

fn opt_f64(v: Option<f64>) -> SqlValue {
    match v {
        Some(f) => SqlValue::Float(f),
        None => SqlValue::Null,
    }
}

/// Extract `column = 'literal'` string-equality conjuncts from a WHERE
/// clause, recursing only through `AND` — an equality under `OR`/`NOT`
/// is not a guaranteed filter and must not be pushed down. The full
/// WHERE is still re-applied by the in-memory executor, so pushdown is
/// purely a pre-filter and can afford to be conservative.
fn equality_pushdown(expr: &Expr, column: &str) -> Option<String> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => equality_pushdown(left, column).or_else(|| equality_pushdown(right, column)),
        Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } => {
            let pair = |a: &Expr, b: &Expr| match (a, b) {
                (
                    Expr::Column {
                        qualifier: None,
                        name,
                    },
                    Expr::Literal(SqlValue::Str(s)),
                ) if name.eq_ignore_ascii_case(column) => Some(s.clone()),
                _ => None,
            };
            pair(left, right).or_else(|| pair(right, left))
        }
        _ => None,
    }
}

/// Render a span's stage marks as `stage@offset_ms[=detail]` segments
/// joined with `;` — the same encoding the slow-query table uses.
fn render_stages(r: &gridrm_telemetry::TraceRecord) -> String {
    r.stages
        .iter()
        .map(|s| {
            let offset = s.at_ms.saturating_sub(r.started_ms);
            match &s.detail {
                Some(d) => format!("{}@{offset}={d}", s.stage),
                None => format!("{}@{offset}", s.stage),
            }
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Materialise the registry into the metrics virtual table: one row per
/// flattened sample, histogram buckets included.
fn metrics_table(telemetry: &GatewayTelemetry) -> Table {
    let rows = telemetry
        .registry()
        .snapshot()
        .into_iter()
        .flat_map(|family| {
            family.samples.into_iter().map(move |sample| {
                vec![
                    SqlValue::Str(sample.name),
                    SqlValue::Str(family.kind.clone()),
                    SqlValue::Str(sample.labels),
                    SqlValue::Float(sample.value),
                ]
            })
        })
        .collect();
    Table {
        name: TABLE_NAME.to_owned(),
        columns: columns(&[
            ("name", SqlType::Str),
            ("kind", SqlType::Str),
            ("labels", SqlType::Str),
            ("value", SqlType::Float),
        ]),
        rows,
    }
}

/// One row per tracked data source, straight from the health monitor's
/// state machine. Served empty when no monitor is attached.
fn health_table(health: Option<&Arc<HealthMonitor>>) -> Table {
    let rows = health
        .map(|h| h.snapshot())
        .unwrap_or_default()
        .into_iter()
        .map(|s| {
            vec![
                SqlValue::Str(s.source),
                SqlValue::Str(s.state.name().to_owned()),
                SqlValue::Int(s.consecutive_failures as i64),
                SqlValue::Int(s.consecutive_successes as i64),
                opt_ms(s.last_ok_ms),
                opt_str(&s.last_error),
                opt_ms(s.last_probe_ms),
                opt_str(&s.last_failed_driver),
                SqlValue::Int(s.transitions as i64),
                opt_ms(s.last_transition_ms),
            ]
        })
        .collect();
    Table {
        name: HEALTH_TABLE.to_owned(),
        columns: columns(&[
            ("source", SqlType::Str),
            ("state", SqlType::Str),
            ("consecutive_failures", SqlType::Int),
            ("consecutive_successes", SqlType::Int),
            ("last_ok_ms", SqlType::Int),
            ("last_error", SqlType::Str),
            ("last_probe_ms", SqlType::Int),
            ("last_failed_driver", SqlType::Str),
            ("transitions", SqlType::Int),
            ("last_transition_ms", SqlType::Int),
        ]),
        rows,
    }
}

/// One row per structured journal entry, oldest first.
fn journal_table(telemetry: &GatewayTelemetry) -> Table {
    let rows = telemetry
        .journal()
        .recent()
        .into_iter()
        .map(|e| {
            vec![
                SqlValue::Int(e.seq as i64),
                SqlValue::Int(e.at_ms as i64),
                SqlValue::Str(e.severity.name().to_owned()),
                SqlValue::Str(e.kind),
                SqlValue::Str(e.source),
                opt_str(&e.driver),
                opt_str(&e.stage),
                SqlValue::Str(e.message),
                opt_str(&e.trace_id),
            ]
        })
        .collect();
    Table {
        name: JOURNAL_TABLE.to_owned(),
        columns: columns(&[
            ("seq", SqlType::Int),
            ("at_ms", SqlType::Int),
            ("severity", SqlType::Str),
            ("kind", SqlType::Str),
            ("source", SqlType::Str),
            ("driver", SqlType::Str),
            ("stage", SqlType::Str),
            ("message", SqlType::Str),
            ("trace_id", SqlType::Str),
        ]),
        rows,
    }
}

/// One row per slow-query log entry, slowest first, with the per-stage
/// breakdown rendered as `stage@offset_ms[=detail]` segments.
fn slow_table(telemetry: &GatewayTelemetry) -> Table {
    let rows = telemetry
        .slow_queries()
        .top()
        .into_iter()
        .map(|r| {
            let stages = render_stages(&r);
            vec![
                SqlValue::Int(r.id as i64),
                SqlValue::Str(r.trace_id.clone()),
                SqlValue::Str(r.request.clone()),
                opt_str(&r.source),
                SqlValue::Int(r.started_ms as i64),
                SqlValue::Int(r.finished_ms as i64),
                SqlValue::Int(r.duration_ms() as i64),
                SqlValue::Str(r.outcome.clone()),
                SqlValue::Str(stages),
            ]
        })
        .collect();
    Table {
        name: SLOW_TABLE.to_owned(),
        columns: columns(&[
            ("id", SqlType::Int),
            ("trace_id", SqlType::Str),
            ("request", SqlType::Str),
            ("source", SqlType::Str),
            ("started_ms", SqlType::Int),
            ("finished_ms", SqlType::Int),
            ("duration_ms", SqlType::Int),
            ("outcome", SqlType::Str),
            ("stages", SqlType::Str),
        ]),
        rows,
    }
}

/// One row per span in the trace ring buffer, oldest first. Rows for one
/// `trace_id` reconstruct the same tree `EXPLAIN ANALYZE` renders: every
/// non-NULL `parent_span_id` names another `span_id` in the trace.
fn spans_table(telemetry: &GatewayTelemetry) -> Table {
    let rows = telemetry
        .traces()
        .recent()
        .into_iter()
        .map(|r| {
            let stages = render_stages(&r);
            vec![
                SqlValue::Str(r.trace_id.clone()),
                SqlValue::Str(r.span_id.clone()),
                opt_str(&r.parent_span_id),
                SqlValue::Str(r.site.clone()),
                SqlValue::Int(r.id as i64),
                SqlValue::Str(r.request.clone()),
                opt_str(&r.source),
                SqlValue::Int(r.started_ms as i64),
                SqlValue::Int(r.finished_ms as i64),
                SqlValue::Int(r.duration_ms() as i64),
                SqlValue::Str(r.outcome.clone()),
                SqlValue::Str(stages),
            ]
        })
        .collect();
    Table {
        name: SPANS_TABLE.to_owned(),
        columns: columns(&[
            ("trace_id", SqlType::Str),
            ("span_id", SqlType::Str),
            ("parent_span_id", SqlType::Str),
            ("site", SqlType::Str),
            ("id", SqlType::Int),
            ("request", SqlType::Str),
            ("source", SqlType::Str),
            ("started_ms", SqlType::Int),
            ("finished_ms", SqlType::Int),
            ("duration_ms", SqlType::Int),
            ("outcome", SqlType::Str),
            ("stages", SqlType::Str),
        ]),
        rows,
    }
}

/// One row per recorded time-series sample, ordered by series then time.
/// Equality filters on `name`/`labels` are pushed down to the recorder so
/// querying one series does not materialise every ring.
fn history_table(telemetry: &GatewayTelemetry, sel: &SelectStatement) -> Table {
    let (name, labels) = match &sel.where_clause {
        Some(w) => (equality_pushdown(w, "name"), equality_pushdown(w, "labels")),
        None => (None, None),
    };
    let rows = telemetry
        .timeseries()
        .history_for(name.as_deref(), labels.as_deref())
        .into_iter()
        .map(|r| {
            vec![
                SqlValue::Timestamp(r.ts_ms as i64),
                SqlValue::Str(r.name),
                SqlValue::Str(r.labels),
                SqlValue::Str(r.kind),
                SqlValue::Float(r.value),
                opt_f64(r.delta),
                opt_f64(r.rate_per_s),
            ]
        })
        .collect();
    Table {
        name: HISTORY_TABLE.to_owned(),
        columns: columns(&[
            ("ts_ms", SqlType::Timestamp),
            ("name", SqlType::Str),
            ("labels", SqlType::Str),
            ("kind", SqlType::Str),
            ("value", SqlType::Float),
            ("delta", SqlType::Float),
            ("rate_per_s", SqlType::Float),
        ]),
        rows,
    }
}

/// One row per declared SLO, straight from the burn-rate engine.
fn slo_table(telemetry: &GatewayTelemetry) -> Table {
    let rows = telemetry
        .slo()
        .snapshot()
        .into_iter()
        .map(|s| {
            vec![
                SqlValue::Str(s.name),
                SqlValue::Str(s.objective),
                SqlValue::Float(s.target),
                SqlValue::Float(s.good),
                SqlValue::Float(s.total),
                SqlValue::Float(s.burn_fast),
                SqlValue::Float(s.burn_slow),
                SqlValue::Float(s.error_budget_remaining),
                SqlValue::Bool(s.firing),
                SqlValue::Int(s.since_ms as i64),
                SqlValue::Int(s.transitions as i64),
            ]
        })
        .collect();
    Table {
        name: SLO_TABLE.to_owned(),
        columns: columns(&[
            ("name", SqlType::Str),
            ("objective", SqlType::Str),
            ("target", SqlType::Float),
            ("good", SqlType::Float),
            ("total", SqlType::Float),
            ("burn_fast", SqlType::Float),
            ("burn_slow", SqlType::Float),
            ("error_budget", SqlType::Float),
            ("firing", SqlType::Bool),
            ("since_ms", SqlType::Int),
            ("transitions", SqlType::Int),
        ]),
        rows,
    }
}

/// One row per live continuous-query subscription, ordered by id.
/// Served empty when no stream manager is attached.
fn subscriptions_table(streams: Option<&Arc<StreamManager>>) -> Table {
    let rows = streams
        .map(|s| s.snapshot())
        .unwrap_or_default()
        .into_iter()
        .map(|s| {
            vec![
                SqlValue::Int(s.id as i64),
                SqlValue::Str(s.origin),
                SqlValue::Str(s.sql),
                SqlValue::Int(s.sources as i64),
                SqlValue::Int(s.every_ms as i64),
                SqlValue::Str(s.policy),
                SqlValue::Int(s.buffer_capacity as i64),
                SqlValue::Int(s.pending as i64),
                SqlValue::Int(s.emitted as i64),
                SqlValue::Int(s.delivered as i64),
                SqlValue::Int(s.dropped as i64),
                opt_ms(s.last_emit_ms),
                SqlValue::Int(s.created_ms as i64),
            ]
        })
        .collect();
    Table {
        name: SUBSCRIPTIONS_TABLE.to_owned(),
        columns: columns(&[
            ("id", SqlType::Int),
            ("origin", SqlType::Str),
            ("sql", SqlType::Str),
            ("sources", SqlType::Int),
            ("every_ms", SqlType::Int),
            ("policy", SqlType::Str),
            ("buffer_capacity", SqlType::Int),
            ("pending", SqlType::Int),
            ("emitted", SqlType::Int),
            ("delivered", SqlType::Int),
            ("dropped", SqlType::Int),
            ("last_emit_ms", SqlType::Int),
            ("created_ms", SqlType::Int),
        ]),
        rows,
    }
}

/// One row per recently finished root query, oldest first, straight
/// from the cost ledger's entry ring.
fn costs_table(telemetry: &GatewayTelemetry) -> Table {
    let rows = telemetry
        .costs()
        .entries()
        .into_iter()
        .map(|e| {
            vec![
                SqlValue::Str(e.trace_id),
                SqlValue::Str(e.site),
                SqlValue::Str(e.request),
                SqlValue::Int(e.started_ms as i64),
                SqlValue::Int(e.finished_ms as i64),
                SqlValue::Int(e.finished_ms.saturating_sub(e.started_ms) as i64),
                SqlValue::Int(e.cost.msgs_out as i64),
                SqlValue::Int(e.cost.msgs_in as i64),
                SqlValue::Int(e.cost.bytes_out as i64),
                SqlValue::Int(e.cost.bytes_in as i64),
                SqlValue::Int(e.cost.rows_scanned as i64),
                SqlValue::Int(e.cost.rows_returned as i64),
                SqlValue::Int(e.cost.fetch_units as i64),
                SqlValue::Bool(e.over_budget),
            ]
        })
        .collect();
    Table {
        name: COSTS_TABLE.to_owned(),
        columns: columns(&[
            ("trace_id", SqlType::Str),
            ("site", SqlType::Str),
            ("request", SqlType::Str),
            ("started_ms", SqlType::Int),
            ("finished_ms", SqlType::Int),
            ("duration_ms", SqlType::Int),
            ("msgs_out", SqlType::Int),
            ("msgs_in", SqlType::Int),
            ("bytes_out", SqlType::Int),
            ("bytes_in", SqlType::Int),
            ("rows_scanned", SqlType::Int),
            ("rows_returned", SqlType::Int),
            ("fetch_units", SqlType::Int),
            ("over_budget", SqlType::Bool),
        ]),
        rows,
    }
}

/// One row per (site, cause) intrusion bucket, ordered by site then
/// cause, with rates over each bucket's virtual observation window.
fn intrusion_table(telemetry: &GatewayTelemetry) -> Table {
    let rows = telemetry
        .costs()
        .intrusion_snapshot()
        .into_iter()
        .map(|r| {
            vec![
                SqlValue::Str(r.site),
                SqlValue::Str(r.cause),
                SqlValue::Int(r.bucket.msgs as i64),
                SqlValue::Int(r.bucket.bytes as i64),
                SqlValue::Int(r.bucket.window_ms() as i64),
                SqlValue::Float(r.bucket.msgs_per_vsec()),
                SqlValue::Float(r.bucket.bytes_per_vsec()),
            ]
        })
        .collect();
    Table {
        name: INTRUSION_TABLE.to_owned(),
        columns: columns(&[
            ("site", SqlType::Str),
            ("cause", SqlType::Str),
            ("msgs", SqlType::Int),
            ("bytes", SqlType::Int),
            ("window_ms", SqlType::Int),
            ("msgs_per_vsec", SqlType::Float),
            ("bytes_per_vsec", SqlType::Float),
        ]),
        rows,
    }
}

impl Statement for TelemetryStatement {
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        self.stats.query();
        let sel = parse_select(sql)?;
        let table = if sel.table.eq_ignore_ascii_case(TABLE_NAME) {
            metrics_table(&self.telemetry)
        } else if sel.table.eq_ignore_ascii_case(HEALTH_TABLE) {
            health_table(self.health.as_ref())
        } else if sel.table.eq_ignore_ascii_case(JOURNAL_TABLE) {
            journal_table(&self.telemetry)
        } else if sel.table.eq_ignore_ascii_case(SLOW_TABLE) {
            slow_table(&self.telemetry)
        } else if sel.table.eq_ignore_ascii_case(SPANS_TABLE) {
            spans_table(&self.telemetry)
        } else if sel.table.eq_ignore_ascii_case(HISTORY_TABLE) {
            history_table(&self.telemetry, &sel)
        } else if sel.table.eq_ignore_ascii_case(SLO_TABLE) {
            slo_table(&self.telemetry)
        } else if sel.table.eq_ignore_ascii_case(SUBSCRIPTIONS_TABLE) {
            subscriptions_table(self.streams.as_ref())
        } else if sel.table.eq_ignore_ascii_case(COSTS_TABLE) {
            costs_table(&self.telemetry)
        } else if sel.table.eq_ignore_ascii_case(INTRUSION_TABLE) {
            intrusion_table(&self.telemetry)
        } else {
            return Err(SqlError::Unsupported(format!(
                "the telemetry driver serves {TABLE_NAME}, {HEALTH_TABLE}, \
                 {JOURNAL_TABLE}, {SLOW_TABLE}, {SPANS_TABLE}, \
                 {HISTORY_TABLE}, {SLO_TABLE}, {SUBSCRIPTIONS_TABLE}, \
                 {COSTS_TABLE} and {INTRUSION_TABLE}, got '{}'",
                sel.table
            )));
        };
        let now = self.telemetry.clock().now_ts();
        let rs = gridrm_store::select_in_memory(&table, &sel, now)
            .map_err(|e| SqlError::Driver(e.to_string()))?;
        Ok(Box::new(rs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::RowSet;
    use gridrm_simnet::SimClock;
    use gridrm_telemetry::Labels;

    fn driver() -> (GatewayTelemetry, Arc<TelemetryDriver>) {
        let telemetry = GatewayTelemetry::new(SimClock::new());
        let d = TelemetryDriver::new(telemetry.clone());
        (telemetry, d)
    }

    fn query(d: &TelemetryDriver, sql: &str) -> DbcResult<RowSet> {
        let url = JdbcUrl::parse("jdbc:telemetry://local/metrics").unwrap();
        let mut conn = d.connect(&url, &Properties::new())?;
        let mut stmt = conn.create_statement()?;
        let mut rs = stmt.execute_query(sql)?;
        RowSet::materialize(rs.as_mut())
    }

    #[test]
    fn counters_appear_as_rows() {
        let (t, d) = driver();
        t.registry()
            .counter("gridrm_cache_hits_total", "hits", Labels::none())
            .add(5);
        let rs = query(
            &d,
            "SELECT value FROM gridrm_telemetry WHERE name = 'gridrm_cache_hits_total'",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0][0].as_f64().unwrap(), 5.0);
    }

    #[test]
    fn like_filter_over_names() {
        let (t, d) = driver();
        t.registry()
            .counter("gridrm_cache_hits_total", "hits", Labels::none())
            .inc();
        t.registry()
            .counter("gridrm_cache_misses_total", "misses", Labels::none())
            .inc();
        t.registry()
            .counter("gridrm_requests_total", "requests", Labels::none())
            .inc();
        let rs = query(
            &d,
            "SELECT name FROM gridrm_telemetry WHERE name LIKE 'gridrm_cache%' ORDER BY name",
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(
            rs.rows()[0][0],
            SqlValue::Str("gridrm_cache_hits_total".into())
        );
    }

    #[test]
    fn histogram_samples_flatten() {
        let (t, d) = driver();
        let h = t.registry().histogram(
            "gridrm_driver_latency_ms",
            "latency",
            Labels::from_pairs(&[("driver", "jdbc-snmp")]),
            &[1.0, 10.0],
        );
        h.observe(3.0);
        // 2 finite buckets + +Inf + _sum + _count = 5 rows.
        let rs = query(
            &d,
            "SELECT name FROM gridrm_telemetry WHERE name LIKE 'gridrm_driver_latency_ms%'",
        )
        .unwrap();
        assert_eq!(rs.len(), 5);
    }

    #[test]
    fn other_tables_rejected() {
        let (_t, d) = driver();
        assert!(matches!(
            query(&d, "SELECT * FROM Processor"),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn health_table_reflects_monitor_state() {
        use gridrm_core::health::{HealthConfig, HealthMonitor};
        let telemetry = GatewayTelemetry::new(SimClock::new());
        let monitor = Arc::new(HealthMonitor::new(
            HealthConfig::default(),
            telemetry.journal().clone(),
        ));
        monitor.record_failure("jdbc:snmp://n/p", Some("jdbc-snmp"), "timed out", 5);
        let d = TelemetryDriver::with_health(telemetry, Some(monitor));
        let rs = query(
            &d,
            "SELECT source, state, consecutive_failures, last_failed_driver \
             FROM gridrm_health",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0][1], SqlValue::Str("degraded".into()));
        assert_eq!(rs.rows()[0][2], SqlValue::Int(1));
        assert_eq!(rs.rows()[0][3], SqlValue::Str("jdbc-snmp".into()));
    }

    #[test]
    fn health_table_empty_without_monitor() {
        let (_t, d) = driver();
        let rs = query(&d, "SELECT * FROM gridrm_health").unwrap();
        assert_eq!(rs.len(), 0);
    }

    #[test]
    fn journal_table_serves_entries() {
        use gridrm_telemetry::{JournalSeverity, KIND_PROBE};
        let (t, d) = driver();
        t.journal().record(
            7,
            JournalSeverity::Warning,
            KIND_PROBE,
            "jdbc:snmp://n/p",
            Some("jdbc-snmp"),
            Some("probe"),
            "probe failed",
        );
        let rs = query(
            &d,
            "SELECT seq, severity, kind, driver, message FROM gridrm_journal",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0][1], SqlValue::Str("warning".into()));
        assert_eq!(rs.rows()[0][2], SqlValue::Str("probe".into()));
        assert_eq!(rs.rows()[0][3], SqlValue::Str("jdbc-snmp".into()));
    }

    #[test]
    fn slow_query_table_renders_stage_breakdown() {
        let telemetry = GatewayTelemetry::with_capacities(
            SimClock::new(),
            gridrm_telemetry::TelemetryCapacities {
                slow_query_threshold_ms: 1,
                ..Default::default()
            },
        );
        let clock = telemetry.clock().clone();
        let mut span = telemetry.span("SELECT Load1 FROM Processor");
        span.stage("acil");
        clock.advance(40);
        span.stage_with("driver_execute", "jdbc-snmp");
        span.finish("ok");
        let d = TelemetryDriver::new(telemetry);
        let rs = query(
            &d,
            "SELECT duration_ms, outcome, stages FROM gridrm_slow_queries",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0][0], SqlValue::Int(40));
        assert_eq!(rs.rows()[0][1], SqlValue::Str("ok".into()));
        let stages = rs.rows()[0][2].as_str().unwrap();
        assert!(stages.contains("acil@0"), "stages: {stages}");
        assert!(
            stages.contains("driver_execute@40=jdbc-snmp"),
            "stages: {stages}"
        );
    }

    #[test]
    fn spans_table_links_children_to_parents() {
        let (t, d) = driver();
        t.set_identity("siteA", "gw-a");
        let root = t.span("SELECT Load1 FROM Processor");
        let mut child = root.child("driver_execute jdbc-snmp");
        child.stage_with("driver_execute", "jdbc-snmp");
        child.finish("ok");
        root.finish("ok");
        let rs = query(
            &d,
            "SELECT trace_id, span_id, parent_span_id, site, stages FROM gridrm_spans",
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        let (child_row, root_row) = (&rs.rows()[0], &rs.rows()[1]);
        // Both spans share the trace, the child points at the root, and
        // every span is stamped with the gateway's site.
        assert_eq!(child_row[0], root_row[0]);
        assert_eq!(child_row[2], root_row[1]);
        assert!(root_row[2].is_null());
        assert_eq!(root_row[3], SqlValue::Str("siteA".into()));
        assert!(child_row[4]
            .as_str()
            .unwrap()
            .contains("driver_execute@0=jdbc-snmp"));
    }

    #[test]
    fn journal_table_carries_trace_ids() {
        use gridrm_telemetry::{JournalSeverity, KIND_CACHE_SERVE};
        let (t, d) = driver();
        t.journal().record_traced(
            3,
            JournalSeverity::Info,
            KIND_CACHE_SERVE,
            "jdbc:snmp://n/p",
            None,
            None,
            "served",
            Some("gw-a:1"),
        );
        let rs = query(&d, "SELECT trace_id FROM gridrm_journal").unwrap();
        assert_eq!(rs.rows()[0][0], SqlValue::Str("gw-a:1".into()));
    }

    #[test]
    fn history_table_serves_recorded_series() {
        use gridrm_telemetry::PointKind;
        let (t, d) = driver();
        let ts = t.timeseries();
        ts.record_point("gridrm_x_total", "", PointKind::Counter, 0, 1.0);
        ts.record_point("gridrm_x_total", "", PointKind::Counter, 1_000, 5.0);
        ts.record_point("gridrm_load1", "host=\"n1\"", PointKind::Gauge, 500, 0.7);
        let rs = query(
            &d,
            "SELECT ts_ms, value, delta, rate_per_s FROM gridrm_metrics_history \
             WHERE name = 'gridrm_x_total' ORDER BY ts_ms",
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert!(rs.rows()[0][2].is_null(), "oldest point has no delta");
        assert_eq!(rs.rows()[1][2], SqlValue::Float(4.0));
        assert_eq!(rs.rows()[1][3], SqlValue::Float(4.0));
        // Pushdown under OR must not drop the other branch's rows.
        let rs = query(
            &d,
            "SELECT name FROM gridrm_metrics_history \
             WHERE name = 'gridrm_x_total' OR name = 'gridrm_load1'",
        )
        .unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn history_time_bucket_group_by_aggregates() {
        use gridrm_telemetry::PointKind;
        let (t, d) = driver();
        let ts = t.timeseries();
        for i in 0..10u64 {
            ts.record_point("gridrm_load1", "", PointKind::Gauge, i * 250, i as f64);
        }
        let rs = query(
            &d,
            "SELECT TIME_BUCKET(1000, ts_ms) AS bucket, COUNT(*), MIN(value), \
             MAX(value), AVG(value), SUM(value) \
             FROM gridrm_metrics_history WHERE name = 'gridrm_load1' \
             GROUP BY TIME_BUCKET(1000, ts_ms) ORDER BY bucket",
        )
        .unwrap();
        // Points at 0..2250 ms fall into buckets 0, 1000 and 2000.
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.rows()[0][0], SqlValue::Timestamp(0));
        assert_eq!(rs.rows()[0][1], SqlValue::Int(4));
        assert_eq!(rs.rows()[0][2], SqlValue::Float(0.0));
        assert_eq!(rs.rows()[0][3], SqlValue::Float(3.0));
        assert_eq!(rs.rows()[0][4], SqlValue::Float(1.5));
        assert_eq!(rs.rows()[1][5], SqlValue::Float(4.0 + 5.0 + 6.0 + 7.0));
        assert_eq!(rs.rows()[2][1], SqlValue::Int(2));
    }

    #[test]
    fn slo_table_reflects_engine_state() {
        use gridrm_telemetry::{SloObjective, SloSpec};
        let (t, d) = driver();
        t.slo().configure(&[SloSpec::new(
            "availability",
            SloObjective::Availability {
                bad_paths: vec!["denied".into()],
            },
            0.99,
        )]);
        let paths = t.registry().counter(
            "gridrm_request_paths_total",
            "Requests by path",
            Labels::from_pairs(&[("path", "denied")]),
        );
        t.slo().evaluate(0);
        paths.add(10);
        t.slo().evaluate(60_000);
        let rs = query(
            &d,
            "SELECT name, target, firing, burn_slow FROM gridrm_slo WHERE firing",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0][0], SqlValue::Str("availability".into()));
        assert_eq!(rs.rows()[0][1], SqlValue::Float(0.99));
        assert_eq!(rs.rows()[0][2], SqlValue::Bool(true));
        assert!(rs.rows()[0][3].as_f64().unwrap() > 2.0);
    }

    #[test]
    fn subscriptions_table_reflects_live_subscribers() {
        use gridrm_core::acil::ClientRequest;
        use gridrm_core::stream::{BackpressurePolicy, StreamSettings, SubscribeSpec};
        use gridrm_dbc::{ColumnMeta, ResultSetMetaData};
        let telemetry = GatewayTelemetry::new(SimClock::new());
        let streams = Arc::new(StreamManager::new(
            StreamSettings {
                buffer_capacity: 4,
                backpressure: BackpressurePolicy::DropOldest,
                min_every_ms: 1,
                max_subscribers: 0,
            },
            "local:test".to_owned(),
            None,
        ));
        let spec = SubscribeSpec {
            request: ClientRequest::builder("SELECT Load1 FROM Processor EVERY 250")
                .sources(&["jdbc:snmp://n1.siteA/public"])
                .build(),
            every_ms: None,
            buffer: None,
            backpressure: Some(BackpressurePolicy::Coalesce),
        };
        let id = streams.subscribe(&spec, 0).unwrap();
        streams.pump(0, |_req| {
            RowSet::new(
                ResultSetMetaData::new(vec![ColumnMeta::new("Load1", SqlType::Float)]),
                vec![vec![SqlValue::Float(0.5)]],
            )
        });
        let d = TelemetryDriver::with_streams(telemetry, None, Some(streams));
        let rs = query(
            &d,
            "SELECT id, sql, every_ms, policy, pending, emitted FROM gridrm_subscriptions",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0][0], SqlValue::Int(id as i64));
        assert_eq!(
            rs.rows()[0][1],
            SqlValue::Str("SELECT Load1 FROM Processor".into())
        );
        assert_eq!(rs.rows()[0][2], SqlValue::Int(250));
        assert_eq!(rs.rows()[0][3], SqlValue::Str("coalesce".into()));
        assert_eq!(rs.rows()[0][4], SqlValue::Int(1));
        assert_eq!(rs.rows()[0][5], SqlValue::Int(1));
    }

    #[test]
    fn subscriptions_table_empty_without_manager() {
        let (_t, d) = driver();
        let rs = query(&d, "SELECT * FROM gridrm_subscriptions").unwrap();
        assert_eq!(rs.len(), 0);
    }

    #[test]
    fn query_costs_table_serves_ledger_entries() {
        use gridrm_telemetry::CostVector;
        let (t, d) = driver();
        t.set_identity("siteA", "gw-a");
        t.costs().set_budget(10, 0);
        let mut span = t.span("SELECT Load1 FROM Processor");
        span.add_cost(&CostVector {
            msgs_out: 2,
            msgs_in: 2,
            bytes_out: 64,
            bytes_in: 256,
            rows_returned: 3,
            ..CostVector::default()
        });
        span.finish("ok");
        let rs = query(
            &d,
            "SELECT trace_id, site, bytes_in, rows_returned, over_budget \
             FROM gridrm_query_costs",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0][1], SqlValue::Str("siteA".into()));
        assert_eq!(rs.rows()[0][2], SqlValue::Int(256));
        assert_eq!(rs.rows()[0][3], SqlValue::Int(3));
        assert_eq!(rs.rows()[0][4], SqlValue::Bool(true));
    }

    #[test]
    fn intrusion_table_splits_sites_by_cause() {
        use gridrm_telemetry::{CostVector, IntrusionCause};
        let (t, d) = driver();
        let v = CostVector {
            msgs_out: 4,
            bytes_out: 400,
            ..CostVector::default()
        };
        t.costs().intrude("siteB", IntrusionCause::Query, &v);
        t.costs().intrude("siteB", IntrusionCause::Probe, &v);
        let rs = query(
            &d,
            "SELECT site, cause, msgs, bytes, msgs_per_vsec FROM gridrm_intrusion \
             ORDER BY cause",
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows()[0][0], SqlValue::Str("siteB".into()));
        assert_eq!(rs.rows()[0][1], SqlValue::Str("probe".into()));
        assert_eq!(rs.rows()[1][1], SqlValue::Str("query".into()));
        assert_eq!(rs.rows()[1][2], SqlValue::Int(4));
        assert_eq!(rs.rows()[1][3], SqlValue::Int(400));
        // Window floors at one virtual second, so 4 msgs → 4.0/vsec.
        assert_eq!(rs.rows()[1][4], SqlValue::Float(4.0));
    }

    #[test]
    fn accepts_only_telemetry_urls() {
        let (_t, d) = driver();
        assert!(d.accepts_url(&JdbcUrl::parse("jdbc:telemetry://local/metrics").unwrap()));
        assert!(!d.accepts_url(&JdbcUrl::parse("jdbc:snmp://node/public").unwrap()));
    }
}
