//! The JDBC-Telemetry driver: the gateway's own metrics exposed as a
//! virtual SQL table, queryable through the normal driver path — the
//! "monitor the monitor" loop. Every flattened registry sample becomes
//! one row of `gridrm_telemetry`:
//!
//! | column | type  | meaning                                        |
//! |--------|-------|------------------------------------------------|
//! | name   | TEXT  | sample name (`gridrm_requests_total`, `…_sum`) |
//! | kind   | TEXT  | family kind: counter, gauge or histogram       |
//! | labels | TEXT  | rendered labels (`driver="jdbc-snmp",le="10"`) |
//! | value  | REAL  | sample value                                   |
//!
//! URL form: `jdbc:telemetry://local/metrics`.

use crate::base::{parse_select, DriverStats};
use gridrm_dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, SqlError,
    Statement,
};
use gridrm_sqlparse::ast::ColumnDef;
use gridrm_sqlparse::{SqlType, SqlValue};
use gridrm_store::Table;
use gridrm_telemetry::GatewayTelemetry;
use std::sync::Arc;

/// Driver name as registered with the gateway.
pub const DRIVER_NAME: &str = "jdbc-telemetry";

/// The virtual table name.
pub const TABLE_NAME: &str = "gridrm_telemetry";

/// The JDBC-Telemetry [`Driver`].
pub struct TelemetryDriver {
    telemetry: GatewayTelemetry,
    stats: Arc<DriverStats>,
}

impl TelemetryDriver {
    /// Create the driver over a gateway's telemetry hub.
    pub fn new(telemetry: GatewayTelemetry) -> Arc<TelemetryDriver> {
        Arc::new(TelemetryDriver {
            telemetry,
            stats: Arc::new(DriverStats::default()),
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> Arc<DriverStats> {
        self.stats.clone()
    }
}

impl Driver for TelemetryDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: DRIVER_NAME.to_owned(),
            subprotocol: "telemetry".to_owned(),
            version: (1, 0),
            description: "Virtual SQL table over the gateway's own metric registry".to_owned(),
        }
    }

    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        url.subprotocol == "telemetry"
    }

    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        Ok(Box::new(TelemetryConnection {
            telemetry: self.telemetry.clone(),
            stats: self.stats.clone(),
            url: url.clone(),
            closed: false,
        }))
    }
}

struct TelemetryConnection {
    telemetry: GatewayTelemetry,
    stats: Arc<DriverStats>,
    url: JdbcUrl,
    closed: bool,
}

impl Connection for TelemetryConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        Ok(Box::new(TelemetryStatement {
            telemetry: self.telemetry.clone(),
            stats: self.stats.clone(),
        }))
    }

    fn url(&self) -> &JdbcUrl {
        &self.url
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }
}

struct TelemetryStatement {
    telemetry: GatewayTelemetry,
    stats: Arc<DriverStats>,
}

/// Materialise the registry into the virtual table: one row per
/// flattened sample, histogram buckets included.
fn metrics_table(telemetry: &GatewayTelemetry) -> Table {
    let columns = [
        ("name", SqlType::Str),
        ("kind", SqlType::Str),
        ("labels", SqlType::Str),
        ("value", SqlType::Float),
    ]
    .into_iter()
    .map(|(name, ty)| ColumnDef {
        name: name.to_owned(),
        ty,
        primary_key: false,
    })
    .collect();
    let rows = telemetry
        .registry()
        .snapshot()
        .into_iter()
        .flat_map(|family| {
            family.samples.into_iter().map(move |sample| {
                vec![
                    SqlValue::Str(sample.name),
                    SqlValue::Str(family.kind.clone()),
                    SqlValue::Str(sample.labels),
                    SqlValue::Float(sample.value),
                ]
            })
        })
        .collect();
    Table {
        name: TABLE_NAME.to_owned(),
        columns,
        rows,
    }
}

impl Statement for TelemetryStatement {
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        self.stats.query();
        let sel = parse_select(sql)?;
        if !sel.table.eq_ignore_ascii_case(TABLE_NAME) {
            return Err(SqlError::Unsupported(format!(
                "the telemetry driver only serves the {TABLE_NAME} table, got '{}'",
                sel.table
            )));
        }
        let table = metrics_table(&self.telemetry);
        let now = self.telemetry.clock().now_ts();
        let rs = gridrm_store::select_in_memory(&table, &sel, now)
            .map_err(|e| SqlError::Driver(e.to_string()))?;
        Ok(Box::new(rs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::RowSet;
    use gridrm_simnet::SimClock;
    use gridrm_telemetry::Labels;

    fn driver() -> (GatewayTelemetry, Arc<TelemetryDriver>) {
        let telemetry = GatewayTelemetry::new(SimClock::new());
        let d = TelemetryDriver::new(telemetry.clone());
        (telemetry, d)
    }

    fn query(d: &TelemetryDriver, sql: &str) -> DbcResult<RowSet> {
        let url = JdbcUrl::parse("jdbc:telemetry://local/metrics").unwrap();
        let mut conn = d.connect(&url, &Properties::new())?;
        let mut stmt = conn.create_statement()?;
        let mut rs = stmt.execute_query(sql)?;
        RowSet::materialize(rs.as_mut())
    }

    #[test]
    fn counters_appear_as_rows() {
        let (t, d) = driver();
        t.registry()
            .counter("gridrm_cache_hits_total", "hits", Labels::none())
            .add(5);
        let rs = query(
            &d,
            "SELECT value FROM gridrm_telemetry WHERE name = 'gridrm_cache_hits_total'",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0][0].as_f64().unwrap(), 5.0);
    }

    #[test]
    fn like_filter_over_names() {
        let (t, d) = driver();
        t.registry()
            .counter("gridrm_cache_hits_total", "hits", Labels::none())
            .inc();
        t.registry()
            .counter("gridrm_cache_misses_total", "misses", Labels::none())
            .inc();
        t.registry()
            .counter("gridrm_requests_total", "requests", Labels::none())
            .inc();
        let rs = query(
            &d,
            "SELECT name FROM gridrm_telemetry WHERE name LIKE 'gridrm_cache%' ORDER BY name",
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(
            rs.rows()[0][0],
            SqlValue::Str("gridrm_cache_hits_total".into())
        );
    }

    #[test]
    fn histogram_samples_flatten() {
        let (t, d) = driver();
        let h = t.registry().histogram(
            "gridrm_driver_latency_ms",
            "latency",
            Labels::from_pairs(&[("driver", "jdbc-snmp")]),
            &[1.0, 10.0],
        );
        h.observe(3.0);
        // 2 finite buckets + +Inf + _sum + _count = 5 rows.
        let rs = query(
            &d,
            "SELECT name FROM gridrm_telemetry WHERE name LIKE 'gridrm_driver_latency_ms%'",
        )
        .unwrap();
        assert_eq!(rs.len(), 5);
    }

    #[test]
    fn other_tables_rejected() {
        let (_t, d) = driver();
        assert!(matches!(
            query(&d, "SELECT * FROM Processor"),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn accepts_only_telemetry_urls() {
        let (_t, d) = driver();
        assert!(d.accepts_url(&JdbcUrl::parse("jdbc:telemetry://local/metrics").unwrap()));
        assert!(!d.accepts_url(&JdbcUrl::parse("jdbc:snmp://node/public").unwrap()));
    }
}
