//! Driver-supplied event formatters and transmitters (Fig 4: "Custom
//! Formatter plugged into each Driver" and the Transmitter API).
//!
//! Formatters translate *native* push payloads (SNMP traps, NetLogger ULM
//! lines) into normalised [`GridRMEvent`]s; transmitters do the reverse —
//! "the GridRM internal event format is translated to the data source's
//! native format" (§3.1.5) — which is how GridRM propagates events to
//! groups of diverse data sources and other gateways.

use gridrm_agents::netlogger::UlmEvent;
use gridrm_agents::snmp::codec::{self, Pdu, SnmpValue};
use gridrm_agents::snmp::oids;
use gridrm_core::events::{EventFormatter, EventTransmitter, GridRMEvent, Severity};
use gridrm_simnet::Network;
use std::sync::Arc;

/// Decodes SNMP trap pushes from `*:snmp` sources.
pub struct SnmpTrapFormatter;

impl EventFormatter for SnmpTrapFormatter {
    fn accepts(&self, source: &str) -> bool {
        source.ends_with(":snmp")
    }

    fn format(&self, source: &str, payload: &[u8], now_ms: i64) -> Vec<GridRMEvent> {
        let Ok(msg) = codec::decode(payload) else {
            return Vec::new();
        };
        let Pdu::Trap { trap_oid, bindings } = msg.pdu else {
            return Vec::new();
        };
        let mut hostname = None;
        let mut value = None;
        for (oid, v) in &bindings {
            let oid_s = oid.to_string();
            if oid_s == oids::SYS_NAME {
                if let SnmpValue::OctetString(s) = v {
                    hostname = Some(s.clone());
                }
            } else if oid_s.starts_with(oids::LA_LOAD_INT) {
                if let SnmpValue::Integer(centi) = v {
                    value = Some(*centi as f64 / 100.0);
                }
            }
        }
        let trap_s = trap_oid.to_string();
        let (category, severity) = if trap_s == oids::TRAP_LOAD_HIGH {
            ("cpu.load.high".to_owned(), Severity::Critical)
        } else {
            (format!("snmp.trap.{trap_s}"), Severity::Warning)
        };
        vec![GridRMEvent {
            id: 0,
            at_ms: now_ms,
            source: source.to_owned(),
            hostname: hostname.clone(),
            severity,
            category,
            message: format!(
                "SNMP trap {trap_s}{}",
                hostname
                    .as_deref()
                    .map(|h| format!(" from {h}"))
                    .unwrap_or_default()
            ),
            value,
        }]
    }
}

/// Decodes NetLogger ULM line pushes from `*:netlogger` sources.
pub struct NetLoggerLineFormatter;

impl EventFormatter for NetLoggerLineFormatter {
    fn accepts(&self, source: &str) -> bool {
        source.ends_with(":netlogger")
    }

    fn format(&self, source: &str, payload: &[u8], now_ms: i64) -> Vec<GridRMEvent> {
        let text = String::from_utf8_lossy(payload);
        text.lines()
            .filter_map(UlmEvent::parse)
            .map(|e| GridRMEvent {
                id: 0,
                at_ms: if e.at_ms > 0 { e.at_ms as i64 } else { now_ms },
                source: source.to_owned(),
                hostname: Some(e.host.clone()),
                severity: Severity::parse(&e.level),
                category: e.event.clone(),
                message: e.to_line(),
                value: e.value,
            })
            .collect()
    }
}

/// Transmits GridRM events back out as native ULM lines pushed to a
/// destination address — the Fig 4 outbound path.
pub struct UlmLineTransmitter {
    name: String,
    network: Arc<Network>,
    from: String,
    to: String,
    /// Only transmit events at or above this severity.
    pub min_severity: Severity,
}

impl UlmLineTransmitter {
    /// Transmitter pushing from `from` to `to` over `network`.
    pub fn new(
        name: &str,
        network: Arc<Network>,
        from: &str,
        to: &str,
        min_severity: Severity,
    ) -> Arc<UlmLineTransmitter> {
        Arc::new(UlmLineTransmitter {
            name: name.to_owned(),
            network,
            from: from.to_owned(),
            to: to.to_owned(),
            min_severity,
        })
    }
}

impl EventTransmitter for UlmLineTransmitter {
    fn name(&self) -> &str {
        &self.name
    }

    fn transmit(&self, event: &GridRMEvent) -> bool {
        if event.severity < self.min_severity {
            return false;
        }
        let ulm = UlmEvent {
            at_ms: event.at_ms.max(0) as u64,
            host: event.hostname.clone().unwrap_or_else(|| "unknown".into()),
            prog: "gridrm".to_owned(),
            level: match event.severity {
                Severity::Info => "Info".into(),
                Severity::Warning => "Warning".into(),
                Severity::Critical => "Error".into(),
            },
            event: event.category.clone(),
            value: event.value,
        };
        self.network
            .push(&self.from, &self.to, ulm.to_line().into_bytes())
            > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_agents::snmp::codec::SnmpMessage;
    use gridrm_simnet::SimClock;

    fn trap_payload() -> Vec<u8> {
        codec::encode(&SnmpMessage::v2c(
            "public",
            Pdu::Trap {
                trap_oid: oids::TRAP_LOAD_HIGH.parse().unwrap(),
                bindings: vec![
                    (
                        oids::SYS_NAME.parse().unwrap(),
                        SnmpValue::OctetString("node07".into()),
                    ),
                    (
                        format!("{}.1", oids::LA_LOAD_INT).parse().unwrap(),
                        SnmpValue::Integer(512),
                    ),
                ],
            },
        ))
    }

    #[test]
    fn snmp_trap_formatting() {
        let f = SnmpTrapFormatter;
        assert!(f.accepts("node07:snmp"));
        assert!(!f.accepts("node07:ganglia"));
        let events = f.format("node07:snmp", &trap_payload(), 42);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.category, "cpu.load.high");
        assert_eq!(e.severity, Severity::Critical);
        assert_eq!(e.hostname.as_deref(), Some("node07"));
        assert_eq!(e.value, Some(5.12));
    }

    #[test]
    fn snmp_garbage_yields_nothing() {
        let f = SnmpTrapFormatter;
        assert!(f.format("n:snmp", b"\xFF\x00garbage", 0).is_empty());
        // Non-trap PDUs are not events.
        let get = codec::encode(&SnmpMessage::v2c(
            "public",
            Pdu::Get {
                request_id: 1,
                oids: vec![],
            },
        ));
        assert!(f.format("n:snmp", &get, 0).is_empty());
    }

    #[test]
    fn ulm_line_formatting() {
        let f = NetLoggerLineFormatter;
        let line = UlmEvent {
            at_ms: 5000,
            host: "node01".into(),
            prog: "netlogger".into(),
            level: "Warning".into(),
            event: "cpu.load".into(),
            value: Some(3.5),
        }
        .to_line();
        let events = f.format("head:netlogger", line.as_bytes(), 99);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at_ms, 5000);
        assert_eq!(events[0].severity, Severity::Warning);
        assert_eq!(events[0].category, "cpu.load");
        // Multiple lines → multiple events.
        let two = format!("{line}\n{line}");
        assert_eq!(f.format("head:netlogger", two.as_bytes(), 0).len(), 2);
    }

    #[test]
    fn ulm_transmitter_roundtrips_through_formatter() {
        let net = Network::new(SimClock::new(), 1);
        net.register("sink", Arc::new(|_: &str, _: &[u8]| Vec::new()));
        net.register("gw", Arc::new(|_: &str, _: &[u8]| Vec::new()));
        let rx = net.subscribe("sink").unwrap();
        let t = UlmLineTransmitter::new("fwd", net, "gw", "sink", Severity::Warning);

        let event = GridRMEvent {
            id: 1,
            at_ms: 777,
            source: "x:snmp".into(),
            hostname: Some("node03".into()),
            severity: Severity::Critical,
            category: "cpu.load.high".into(),
            message: "m".into(),
            value: Some(9.5),
        };
        assert!(t.transmit(&event));
        let push = rx.try_recv().unwrap();
        let parsed = UlmEvent::parse(std::str::from_utf8(&push.payload).unwrap()).unwrap();
        assert_eq!(parsed.host, "node03");
        assert_eq!(parsed.event, "cpu.load.high");

        // Below min severity: filtered.
        let info = GridRMEvent {
            severity: Severity::Info,
            ..event
        };
        assert!(!t.transmit(&info));
        assert!(rx.try_recv().is_err());
    }
}
