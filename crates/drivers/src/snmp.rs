//! The JDBC-SNMP driver: fine-grained, per-attribute native requests
//! (§3.2.4: "fine grained native requests for data are possible, with
//! generally little or no parsing required").
//!
//! URL form: `jdbc:snmp://<host>[:port]/<community>`; the path is the SNMP
//! community string (defaults to `public`).

use crate::base::{finish_select, glue_translate, parse_select, DriverEnv, DriverStats};
use gridrm_agents::snmp::codec::{self, error_status, Pdu, SnmpMessage, SnmpValue};
use gridrm_agents::snmp::{oids, Oid};
use gridrm_dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, SqlError,
    Statement,
};
use gridrm_glue::{NativeRow, SchemaHandle, Translator};
use gridrm_sqlparse::SqlValue;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Driver name as registered with the gateway.
pub const DRIVER_NAME: &str = "jdbc-snmp";

/// GLUE groups whose rows are SNMP table walks rather than scalars.
const INDEXED_GROUPS: [&str; 3] = ["NetworkAdapter", "FileSystem", "Disk"];

fn snmp_to_sql(v: &SnmpValue) -> SqlValue {
    match v {
        SnmpValue::Integer(i) => SqlValue::Int(*i),
        SnmpValue::Counter64(c) => SqlValue::Int(*c as i64),
        SnmpValue::Gauge(g) => SqlValue::Int(*g as i64),
        SnmpValue::OctetString(s) => SqlValue::Str(s.clone()),
        SnmpValue::TimeTicks(t) => SqlValue::Int(*t as i64),
        SnmpValue::ObjectId(o) => SqlValue::Str(o.to_string()),
        SnmpValue::Null => SqlValue::Null,
    }
}

/// The JDBC-SNMP [`Driver`].
pub struct SnmpDriver {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    request_id: AtomicU32,
}

impl SnmpDriver {
    /// Create the driver over a gateway environment.
    pub fn new(env: Arc<DriverEnv>) -> Arc<SnmpDriver> {
        Arc::new(SnmpDriver {
            env,
            stats: Arc::new(DriverStats::default()),
            request_id: AtomicU32::new(1),
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> Arc<DriverStats> {
        self.stats.clone()
    }

    fn community_of(url: &JdbcUrl) -> String {
        if url.path.is_empty() {
            "public".to_owned()
        } else {
            url.path.clone()
        }
    }

    fn next_id(&self) -> u32 {
        self.request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Send one PDU and decode the response bindings.
    fn exchange(
        &self,
        host: &str,
        community: &str,
        pdu: Pdu,
    ) -> DbcResult<(u8, Vec<(Oid, SnmpValue)>)> {
        self.stats.native();
        let req = codec::encode(&SnmpMessage::v2c(community, pdu));
        let resp = self.env.native_request(host, "snmp", &req)?;
        self.stats.parsed(resp.len());
        let msg = codec::decode(&resp)
            .map_err(|e| SqlError::Driver(format!("bad SNMP response: {e}")))?;
        match msg.pdu {
            Pdu::Response {
                error_status,
                bindings,
                ..
            } => Ok((error_status, bindings)),
            other => Err(SqlError::Driver(format!(
                "unexpected SNMP PDU in response: {other:?}"
            ))),
        }
    }

    /// Cheap connectivity probe used for wildcard URLs (Table 2: "supports
    /// the URL AND can connect to the data source").
    fn probe(&self, url: &JdbcUrl) -> bool {
        let community = Self::community_of(url);
        let pdu = Pdu::Get {
            request_id: self.next_id(),
            oids: vec![oids::SYS_NAME.parse().expect("static OID")],
        };
        matches!(
            self.exchange(&url.host, &community, pdu),
            Ok((status, _)) if status == error_status::NO_ERROR
        )
    }
}

impl Driver for SnmpDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: DRIVER_NAME.to_owned(),
            subprotocol: "snmp".to_owned(),
            version: (1, 0),
            description: "GridRM driver for SNMP agents (MIB-2, host-resources, UCD)".to_owned(),
        }
    }

    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        if url.subprotocol == "snmp" {
            return true;
        }
        url.is_wildcard() && self.probe(url)
    }

    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        let community = Self::community_of(url);
        // Verify the agent answers before declaring the session open.
        let (status, _) = self.exchange(
            &url.host,
            &community,
            Pdu::Get {
                request_id: self.next_id(),
                oids: vec![oids::SYS_NAME.parse().expect("static OID")],
            },
        )?;
        if status == error_status::AUTH_ERROR {
            return Err(SqlError::Security(format!(
                "SNMP community rejected by {}",
                url.host
            )));
        }
        // "Schema is cached when the connection is created" (Fig 5).
        let handle = self.env.schema.handle_for(DRIVER_NAME);
        Ok(Box::new(SnmpConnection {
            env: self.env.clone(),
            stats: self.stats.clone(),
            url: url.clone(),
            community,
            handle,
            closed: false,
        }))
    }
}

/// An open SNMP session.
struct SnmpConnection {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    url: JdbcUrl,
    community: String,
    handle: SchemaHandle,
    closed: bool,
}

impl Connection for SnmpConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        Ok(Box::new(SnmpStatement {
            env: self.env.clone(),
            stats: self.stats.clone(),
            url: self.url.clone(),
            community: self.community.clone(),
            handle: self.handle.clone(),
        }))
    }

    fn url(&self) -> &JdbcUrl {
        &self.url
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }

    fn ping(&mut self) -> DbcResult<()> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        let req = codec::encode(&SnmpMessage::v2c(
            &self.community,
            Pdu::Get {
                request_id: 0,
                oids: vec![oids::SYS_UPTIME.parse().expect("static OID")],
            },
        ));
        self.env
            .native_request(&self.url.host, "snmp", &req)
            .map(|_| ())
    }

    fn metadata(&self) -> gridrm_dbc::ConnectionMetadata {
        gridrm_dbc::ConnectionMetadata {
            driver_name: DRIVER_NAME.to_owned(),
            driver_version: (1, 0),
            url: self.url.to_string(),
            agent_description: None,
        }
    }
}

struct SnmpStatement {
    env: Arc<DriverEnv>,
    stats: Arc<DriverStats>,
    url: JdbcUrl,
    community: String,
    handle: SchemaHandle,
}

impl SnmpStatement {
    fn exchange(&self, pdu: Pdu) -> DbcResult<(u8, Vec<(Oid, SnmpValue)>)> {
        self.stats.native();
        let req = codec::encode(&SnmpMessage::v2c(&self.community, pdu));
        let resp = self.env.native_request(&self.url.host, "snmp", &req)?;
        self.stats.parsed(resp.len());
        let msg = codec::decode(&resp)
            .map_err(|e| SqlError::Driver(format!("bad SNMP response: {e}")))?;
        match msg.pdu {
            Pdu::Response {
                error_status: st,
                bindings,
                ..
            } => {
                if st == error_status::AUTH_ERROR {
                    return Err(SqlError::Security("SNMP community rejected".into()));
                }
                Ok((st, bindings))
            }
            other => Err(SqlError::Driver(format!("unexpected PDU: {other:?}"))),
        }
    }

    /// Walk one table column prefix with GETBULK, returning index → value.
    fn walk(&self, prefix: &Oid) -> DbcResult<BTreeMap<u32, SnmpValue>> {
        let mut out = BTreeMap::new();
        let mut cursor = prefix.clone();
        loop {
            let (_, bindings) = self.exchange(Pdu::GetBulk {
                request_id: 0,
                max_repetitions: 32,
                oid: cursor.clone(),
            })?;
            if bindings.is_empty() {
                break;
            }
            let mut advanced = false;
            let got = bindings.len();
            for (oid, value) in bindings {
                if !prefix.is_prefix_of(&oid) {
                    return Ok(out);
                }
                if let Some(&idx) = oid.0.last() {
                    out.insert(idx, value);
                }
                cursor = oid;
                advanced = true;
            }
            if !advanced || got < 32 {
                break;
            }
        }
        Ok(out)
    }
}

impl Statement for SnmpStatement {
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        self.stats.query();
        let sel = parse_select(sql)?;
        // Fig 5: "Statement checks cache consistency before using schema
        // instance to connect to data source".
        self.env
            .schema
            .ensure_current(&mut self.handle, DRIVER_NAME);

        let group = self
            .handle
            .group(&sel.table)
            .ok_or_else(|| SqlError::Unsupported(format!("unknown GLUE group '{}'", sel.table)))?
            .clone();
        let mapping = self
            .handle
            .mapping
            .clone()
            .filter(|m| m.supports_group(&group.name))
            .ok_or_else(|| {
                SqlError::Unsupported(format!(
                    "{DRIVER_NAME} does not implement group '{}'",
                    group.name
                ))
            })?;

        // Which attributes do we actually need? (Fine-grained fetching.)
        let needed: Vec<&str> = match sel.required_columns() {
            Some(cols) => group
                .attributes
                .iter()
                .filter(|a| cols.iter().any(|c| c.eq_ignore_ascii_case(&a.name)))
                .map(|a| a.name.as_str())
                .collect(),
            None => group.attributes.iter().map(|a| a.name.as_str()).collect(),
        };
        let keys = mapping.native_keys_for(&group.name, &needed);

        let indexed = INDEXED_GROUPS
            .iter()
            .any(|g| g.eq_ignore_ascii_case(&group.name));

        let native_rows: Vec<NativeRow> = if !indexed {
            // Single-row group: one GET with every needed OID.
            let oids: Vec<Oid> = keys.iter().filter_map(|k| k.parse().ok()).collect();
            let mut row = NativeRow::new();
            if !oids.is_empty() {
                let (_, bindings) = self.exchange(Pdu::Get {
                    request_id: 0,
                    oids,
                })?;
                for (oid, value) in bindings {
                    row.insert(oid.to_string(), snmp_to_sql(&value));
                }
            }
            vec![row]
        } else {
            // Indexed group: the sysName key is scalar, everything else is
            // a column prefix to walk.
            let sysname_key = oids::SYS_NAME.to_owned();
            let mut scalar_row = NativeRow::new();
            if keys.contains(&sysname_key) {
                let (_, bindings) = self.exchange(Pdu::Get {
                    request_id: 0,
                    // xlint: allow(hot-path-panic) -- oids::SYS_NAME is a compile-time constant; covered by the oid unit tests
                    oids: vec![oids::SYS_NAME.parse().expect("static OID")],
                })?;
                for (oid, value) in bindings {
                    scalar_row.insert(oid.to_string(), snmp_to_sql(&value));
                }
            }
            let mut per_index: BTreeMap<u32, NativeRow> = BTreeMap::new();
            for key in keys.iter().filter(|k| **k != sysname_key) {
                // Derived keys are synthesised below, not walked.
                if key.starts_with("derived.") {
                    continue;
                }
                let Ok(prefix) = key.parse::<Oid>() else {
                    continue;
                };
                for (idx, value) in self.walk(&prefix)? {
                    per_index
                        .entry(idx)
                        .or_default()
                        .insert(key.clone(), snmp_to_sql(&value));
                }
            }
            // FileSystem.AvailableMB is size - used: if the query wants it,
            // make sure both inputs were walked, then synthesise.
            let wants_avail = keys.iter().any(|k| k == "derived.hrStorageAvail");
            if wants_avail {
                for extra in [oids::HR_STORAGE_SIZE, oids::HR_STORAGE_USED] {
                    if !keys.iter().any(|k| k == extra) {
                        // xlint: allow(hot-path-panic) -- both HR_STORAGE_* inputs are compile-time constant OIDs
                        let prefix: Oid = extra.parse().expect("static OID");
                        for (idx, value) in self.walk(&prefix)? {
                            per_index
                                .entry(idx)
                                .or_default()
                                .insert(extra.to_owned(), snmp_to_sql(&value));
                        }
                    }
                }
            }
            per_index
                .into_values()
                .map(|mut row| {
                    for (k, v) in &scalar_row {
                        row.insert(k.clone(), v.clone());
                    }
                    if wants_avail {
                        let size = row.get(oids::HR_STORAGE_SIZE).and_then(SqlValue::as_i64);
                        let used = row.get(oids::HR_STORAGE_USED).and_then(SqlValue::as_i64);
                        if let (Some(s), Some(u)) = (size, used) {
                            row.insert("derived.hrStorageAvail".to_owned(), SqlValue::Int(s - u));
                        }
                    }
                    row
                })
                .collect()
        };

        let translator = Translator::new(&self.handle);
        let rows = glue_translate(&translator, &group.name, &native_rows)?;
        let rs = finish_select(&group, rows, &sel, self.env.clock.now_ts())?;
        Ok(Box::new(rs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_agents::deploy_site;
    use gridrm_glue::SchemaManager;
    use gridrm_resmodel::{SiteModel, SiteSpec};
    use gridrm_simnet::{Network, SimClock};

    fn setup() -> (Arc<DriverEnv>, Arc<SnmpDriver>) {
        let net = Network::new(SimClock::new(), 2);
        let site = SiteModel::generate(42, &SiteSpec::new("s", 3, 4));
        site.advance_to(60_000);
        deploy_site(&net, site);
        let schema = Arc::new(SchemaManager::new());
        schema.register_mapping(crate::mappings::snmp_mapping());
        let env = DriverEnv::new(net, schema, "gw");
        let driver = SnmpDriver::new(env.clone());
        (env, driver)
    }

    fn query(driver: &SnmpDriver, url: &str, sql: &str) -> gridrm_dbc::RowSet {
        let url = JdbcUrl::parse(url).unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        let mut rs = stmt.execute_query(sql).unwrap();
        gridrm_dbc::RowSet::materialize(rs.as_mut()).unwrap()
    }

    #[test]
    fn processor_query_normalised() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "jdbc:snmp://node00.s/public",
            "SELECT Hostname, NCpu, Load1, Model FROM Processor",
        );
        assert_eq!(rs.len(), 1);
        let row = &rs.rows()[0];
        assert_eq!(row[0], SqlValue::Str("node00.s".into()));
        assert_eq!(row[1], SqlValue::Int(4));
        assert!(matches!(row[2], SqlValue::Float(l) if (0.0..16.0).contains(&l)));
        assert_eq!(row[3], SqlValue::Str("Xeon".into()));
    }

    #[test]
    fn select_star_has_all_glue_columns_with_nulls() {
        let (env, driver) = setup();
        let rs = query(
            &driver,
            "jdbc:snmp://node01.s/public",
            "SELECT * FROM OperatingSystem",
        );
        let group = env.schema.schema();
        let def = group.group("OperatingSystem").unwrap();
        assert_eq!(rs.meta().column_count(), def.attributes.len());
        // Release is unmapped for SNMP → NULL (§3.2.3).
        let rel_idx = rs.meta().column_index("Release").unwrap();
        assert!(rs.rows()[0][rel_idx].is_null());
        let name_idx = rs.meta().column_index("Name").unwrap();
        assert!(rs.rows()[0][name_idx].as_str().unwrap().contains("Linux"));
    }

    #[test]
    fn indexed_group_network_adapter() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "jdbc:snmp://node00.s/public",
            "SELECT Hostname, Name, MTU, Up FROM NetworkAdapter",
        );
        assert_eq!(rs.len(), 1); // one NIC per simulated host
        let row = &rs.rows()[0];
        assert_eq!(row[1], SqlValue::Str("eth0".into()));
        assert_eq!(row[2], SqlValue::Int(1500));
        assert_eq!(row[3], SqlValue::Bool(true));
    }

    #[test]
    fn filesystem_available_is_derived() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "jdbc:snmp://node00.s/public",
            "SELECT Name, SizeMB, AvailableMB FROM FileSystem ORDER BY Name",
        );
        assert_eq!(rs.len(), 2); // "/" and "/boot"
        for row in rs.rows() {
            let size = row[1].as_i64().unwrap();
            let avail = row[2].as_i64().unwrap();
            assert!(avail <= size, "avail {avail} > size {size}");
            assert!(avail >= 0);
        }
    }

    #[test]
    fn where_clause_pushapplied() {
        let (_env, driver) = setup();
        let rs = query(
            &driver,
            "jdbc:snmp://node00.s/public",
            "SELECT Hostname FROM Processor WHERE Load1 > 1000.0",
        );
        assert_eq!(rs.len(), 0);
    }

    #[test]
    fn wrong_community_is_security_error() {
        let (_env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:snmp://node00.s/wrongpass").unwrap();
        let err = driver.connect(&url, &Properties::new()).err().unwrap();
        assert!(matches!(err, SqlError::Security(_)), "{err}");
    }

    #[test]
    fn unknown_host_is_connection_error() {
        let (_env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:snmp://ghost/public").unwrap();
        assert!(matches!(
            driver.connect(&url, &Properties::new()).err().unwrap(),
            SqlError::Connection(_)
        ));
    }

    #[test]
    fn unsupported_group_rejected() {
        let (_env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:snmp://node00.s/public").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        assert!(matches!(
            stmt.execute_query("SELECT * FROM NetworkElement")
                .err()
                .unwrap(),
            SqlError::Unsupported(_)
        ));
        assert!(matches!(
            stmt.execute_query("SELECT * FROM NoSuchGroup")
                .err()
                .unwrap(),
            SqlError::Unsupported(_)
        ));
    }

    #[test]
    fn wildcard_url_probing() {
        let (_env, driver) = setup();
        assert!(driver.accepts_url(&JdbcUrl::parse("jdbc:://node00.s/public").unwrap()));
        assert!(!driver.accepts_url(&JdbcUrl::parse("jdbc:://nowhere/x").unwrap()));
        assert!(driver.accepts_url(&JdbcUrl::parse("jdbc:snmp://anything/x").unwrap()));
        assert!(!driver.accepts_url(&JdbcUrl::parse("jdbc:ganglia://node00.s/c").unwrap()));
    }

    #[test]
    fn fine_grained_fetch_requests_only_needed_oids() {
        let (env, driver) = setup();
        let before = env.network.stats_for("gw", "node00.s:snmp").snapshot();
        let _ = query(
            &driver,
            "jdbc:snmp://node00.s/public",
            "SELECT Load1 FROM Processor",
        );
        let after = env.network.stats_for("gw", "node00.s:snmp").snapshot();
        // connect probe + 1 GET for the single OID.
        assert_eq!(after.requests - before.requests, 2);
        // And the payloads are small (fine-grained property, E8).
        assert!(after.bytes_in - before.bytes_in < 200);
    }

    #[test]
    fn closed_connection_rejects_statements() {
        let (_env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:snmp://node00.s/public").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        conn.close().unwrap();
        assert!(matches!(conn.create_statement(), Err(SqlError::Closed)));
        assert!(matches!(conn.ping(), Err(SqlError::Closed)));
    }

    #[test]
    fn schema_update_reflected_without_reconnect() {
        let (env, driver) = setup();
        let url = JdbcUrl::parse("jdbc:snmp://node00.s/public").unwrap();
        let mut conn = driver.connect(&url, &Properties::new()).unwrap();
        let mut stmt = conn.create_statement().unwrap();
        let _ = stmt.execute_query("SELECT Load1 FROM Processor").unwrap();
        // Remove the mapping: the statement's cached handle is now stale
        // and must be refreshed (Fig 5's consistency check).
        env.schema.unregister_mapping(DRIVER_NAME);
        assert!(matches!(
            stmt.execute_query("SELECT Load1 FROM Processor")
                .err()
                .unwrap(),
            SqlError::Unsupported(_)
        ));
    }
}
