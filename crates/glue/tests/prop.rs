//! Property tests for the GLUE layer: transform laws, translation
//! totality, and schema serde round-trips.

use gridrm_glue::{
    builtin_schema, DriverMapping, FieldMapping, NativeRow, SchemaManager, Transform, Translator,
};
use gridrm_sqlparse::SqlValue;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = SqlValue> {
    prop_oneof![
        Just(SqlValue::Null),
        any::<bool>().prop_map(SqlValue::Bool),
        (-1_000_000i64..1_000_000).prop_map(SqlValue::Int),
        (-1e9f64..1e9).prop_map(SqlValue::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(SqlValue::Str),
    ]
}

proptest! {
    /// Scale by f then by 1/f returns (approximately) the numeric value;
    /// NULL and non-numerics map to NULL, never panic.
    #[test]
    fn scale_inverse_law(v in arb_value(), factor in prop::sample::select(vec![0.5f64, 2.0, 0.01, 100.0])) {
        let forward = Transform::Scale { factor };
        let backward = Transform::Scale { factor: 1.0 / factor };
        let out = backward.apply(&forward.apply(&v));
        match v.as_f64() {
            Some(x) if !v.is_null() => {
                let y = out.as_f64().expect("numeric in, numeric out");
                // round9 in the transform quantises; tolerate that.
                prop_assert!((x - y).abs() <= 1e-3 + x.abs() * 1e-9, "{} vs {}", x, y);
            }
            _ => prop_assert!(out.is_null()),
        }
    }

    /// Affine(identity parameters) is the numeric identity.
    #[test]
    fn affine_identity(v in arb_value()) {
        let t = Transform::Affine { scale: 1.0, offset: 0.0 };
        let out = t.apply(&v);
        match v.as_f64() {
            Some(x) if !v.is_null() => {
                prop_assert!((out.as_f64().unwrap() - x).abs() <= 1e-9 + x.abs() * 1e-9)
            }
            _ => prop_assert!(out.is_null()),
        }
    }

    /// Truthy never produces anything except Bool or NULL.
    #[test]
    fn truthy_closed(v in arb_value()) {
        let out = Transform::Truthy.apply(&v);
        prop_assert!(matches!(out, SqlValue::Bool(_) | SqlValue::Null));
    }

    /// Translation is total: for any native bag and any builtin group, the
    /// output row always has exactly the group's arity, and every non-NULL
    /// cell coerces to the declared attribute type.
    #[test]
    fn translation_total_and_typed(
        entries in prop::collection::vec(("[a-z.0-9]{1,16}", arb_value()), 0..10),
        group_idx in 0usize..11,
    ) {
        let schema = builtin_schema();
        let group = &schema.groups[group_idx % schema.groups.len()];
        let manager = SchemaManager::new();
        // A mapping that wires the first few attributes to arbitrary keys.
        let mut mapping = DriverMapping::new("prop-driver");
        let mut fields = std::collections::BTreeMap::new();
        for (i, attr) in group.attributes.iter().enumerate().take(3) {
            if let Some((key, _)) = entries.get(i) {
                fields.insert(attr.name.clone(), FieldMapping::direct(key));
            }
        }
        mapping.groups.insert(group.name.clone(), fields);
        manager.register_mapping(mapping);
        let handle = manager.handle_for("prop-driver");
        let translator = Translator::new(&handle);

        let mut native = NativeRow::new();
        for (k, v) in &entries {
            native.insert(k.clone(), v.clone());
        }
        let (row, nulls) = translator.translate(&group.name, &native).unwrap();
        prop_assert_eq!(row.len(), group.attributes.len());
        prop_assert!(nulls <= row.len());
        for (cell, attr) in row.iter().zip(&group.attributes) {
            if !cell.is_null() {
                prop_assert!(
                    cell.coerce(attr.ty).is_some(),
                    "cell {:?} not of type {:?}",
                    cell,
                    attr.ty
                );
            }
        }
    }

    /// Schema and mappings survive a JSON round-trip.
    #[test]
    fn schema_serde_roundtrip(extra_attr in "[A-Z][a-zA-Z]{0,10}") {
        let mut schema = builtin_schema();
        let mut group = schema.group("Processor").unwrap().clone();
        group.attributes.push(gridrm_glue::AttributeDef::new(
            &extra_attr,
            gridrm_sqlparse::SqlType::Float,
            Some("u"),
            "prop extension",
        ));
        schema.upsert_group(group);
        let json = serde_json::to_string(&schema).unwrap();
        let back: gridrm_glue::Schema = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, schema);
    }

    /// Handle versioning: any mutation invalidates outstanding handles;
    /// no mutation keeps them valid.
    #[test]
    fn handle_version_monotonic(mutations in prop::collection::vec(any::<bool>(), 1..8)) {
        let manager = SchemaManager::new();
        let mut last_version = manager.version();
        for (i, mutate) in mutations.iter().enumerate() {
            let handle = manager.handle_for("d");
            prop_assert!(manager.is_current(&handle));
            if *mutate {
                manager.register_mapping(DriverMapping::new(&format!("d{i}")));
                prop_assert!(!manager.is_current(&handle));
                prop_assert!(manager.version() > last_version);
            } else {
                prop_assert!(manager.is_current(&handle));
            }
            last_version = manager.version();
        }
    }
}
