//! Per-driver mapping tables from GLUE attributes to native data-source keys.
//!
//! "Essentially GLUE provides the values that must be utilised by the data
//! source's native API in order to execute the request" (§3.2.3): a driver
//! looks up the mapping for the queried group, learns which native keys
//! (OIDs, Ganglia metric names, NWS series, …) to fetch, and how to
//! transform the fetched values into the GLUE form.

use gridrm_sqlparse::SqlValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A value transform applied when translating native → GLUE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Transform {
    /// Use the native value as-is (after type coercion).
    Identity,
    /// Multiply a numeric native value by `factor` (unit conversion), e.g.
    /// KB → MB with `factor = 1.0/1024.0`.
    Scale {
        /// Multiplication factor.
        factor: f64,
    },
    /// Divide 100 by the value? No — generic affine transform
    /// `value * scale + offset`, covering centi-units and baselines.
    Affine {
        /// Multiplication factor applied first.
        scale: f64,
        /// Offset added second.
        offset: f64,
    },
    /// Translate enumerated native values through a lookup table; values
    /// missing from the table become NULL (untranslatable, §3.2.3).
    Enum {
        /// Native value (as string) → GLUE value.
        table: BTreeMap<String, SqlValue>,
    },
    /// Interpret a nonzero numeric / "true"-like string as boolean true.
    Truthy,
}

impl Transform {
    /// Apply the transform. Returns [`SqlValue::Null`] when the input is
    /// NULL or cannot be transformed — the paper's "translation was either
    /// not possible or currently not implemented" rule.
    pub fn apply(&self, value: &SqlValue) -> SqlValue {
        if value.is_null() {
            return SqlValue::Null;
        }
        match self {
            Transform::Identity => value.clone(),
            Transform::Scale { factor } => match value.as_f64() {
                Some(x) => SqlValue::Float(round9(x * factor)),
                None => SqlValue::Null,
            },
            Transform::Affine { scale, offset } => match value.as_f64() {
                Some(x) => SqlValue::Float(round9(x * scale + offset)),
                None => SqlValue::Null,
            },
            Transform::Enum { table } => {
                let key = value.to_string();
                table.get(&key).cloned().unwrap_or(SqlValue::Null)
            }
            Transform::Truthy => match value {
                SqlValue::Bool(b) => SqlValue::Bool(*b),
                SqlValue::Int(i) => SqlValue::Bool(*i != 0),
                SqlValue::Float(x) => SqlValue::Bool(*x != 0.0),
                SqlValue::Str(s) => SqlValue::Bool(matches!(
                    s.to_ascii_lowercase().as_str(),
                    "true" | "yes" | "on" | "up" | "1"
                )),
                _ => SqlValue::Null,
            },
        }
    }
}

/// Round to 9 decimal places so unit conversions don't leak binary float
/// noise into displayed values (57 × 0.01 would otherwise print as
/// 0.5700000000000001).
fn round9(x: f64) -> f64 {
    (x * 1e9).round() / 1e9
}

/// How one GLUE attribute is satisfied from the native source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldMapping {
    /// The native key to request (an OID, a metric name, a log field, …).
    pub native_key: String,
    /// Transform applied to the fetched native value.
    pub transform: Transform,
}

impl FieldMapping {
    /// Identity mapping to a native key.
    pub fn direct(native_key: &str) -> Self {
        FieldMapping {
            native_key: native_key.to_owned(),
            transform: Transform::Identity,
        }
    }

    /// Scaled mapping (unit conversion).
    pub fn scaled(native_key: &str, factor: f64) -> Self {
        FieldMapping {
            native_key: native_key.to_owned(),
            transform: Transform::Scale { factor },
        }
    }
}

/// The full GLUE implementation metadata of one driver: for each GLUE group
/// it supports, which attributes it can supply and how.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DriverMapping {
    /// Driver name this mapping belongs to (e.g. `jdbc-snmp`).
    pub driver: String,
    /// group name → (attribute name → field mapping). Attributes absent
    /// from the inner map are reported as NULL by the translator.
    pub groups: BTreeMap<String, BTreeMap<String, FieldMapping>>,
}

impl DriverMapping {
    /// Empty mapping for a driver.
    pub fn new(driver: &str) -> Self {
        DriverMapping {
            driver: driver.to_owned(),
            groups: BTreeMap::new(),
        }
    }

    /// Builder: add a group's attribute mappings.
    pub fn with_group(
        mut self,
        group: &str,
        fields: impl IntoIterator<Item = (&'static str, FieldMapping)>,
    ) -> Self {
        let map = fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
        self.groups.insert(group.to_owned(), map);
        self
    }

    /// Does this driver implement the given group at all?
    pub fn supports_group(&self, group: &str) -> bool {
        self.groups.keys().any(|g| g.eq_ignore_ascii_case(group))
    }

    /// The attribute mappings for a group (case-insensitive lookup).
    pub fn group(&self, group: &str) -> Option<&BTreeMap<String, FieldMapping>> {
        self.groups
            .iter()
            .find(|(g, _)| g.eq_ignore_ascii_case(group))
            .map(|(_, m)| m)
    }

    /// Native keys needed to satisfy `attributes` of `group`; unknown
    /// attributes are skipped (they will come back NULL).
    pub fn native_keys_for(&self, group: &str, attributes: &[&str]) -> Vec<String> {
        let Some(fields) = self.group(group) else {
            return Vec::new();
        };
        let mut keys: Vec<String> = attributes
            .iter()
            .filter_map(|a| {
                fields
                    .iter()
                    .find(|(name, _)| name.eq_ignore_ascii_case(a))
                    .map(|(_, fm)| fm.native_key.clone())
            })
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms() {
        assert_eq!(
            Transform::Scale { factor: 0.5 }.apply(&SqlValue::Int(10)),
            SqlValue::Float(5.0)
        );
        assert_eq!(
            Transform::Affine {
                scale: 0.01,
                offset: 0.0
            }
            .apply(&SqlValue::Int(250)),
            SqlValue::Float(2.5)
        );
        assert_eq!(Transform::Identity.apply(&SqlValue::Null), SqlValue::Null);
        assert_eq!(
            Transform::Scale { factor: 2.0 }.apply(&SqlValue::Str("abc".into())),
            SqlValue::Null
        );
        assert_eq!(
            Transform::Truthy.apply(&SqlValue::Str("Up".into())),
            SqlValue::Bool(true)
        );
        assert_eq!(
            Transform::Truthy.apply(&SqlValue::Int(0)),
            SqlValue::Bool(false)
        );
    }

    #[test]
    fn enum_transform_unknown_is_null() {
        let mut table = BTreeMap::new();
        table.insert("1".to_owned(), SqlValue::Str("up".into()));
        table.insert("2".to_owned(), SqlValue::Str("down".into()));
        let t = Transform::Enum { table };
        assert_eq!(t.apply(&SqlValue::Int(1)), SqlValue::Str("up".into()));
        assert_eq!(t.apply(&SqlValue::Int(7)), SqlValue::Null);
    }

    #[test]
    fn driver_mapping_lookup() {
        let m = DriverMapping::new("jdbc-snmp").with_group(
            "Processor",
            [
                (
                    "Load1",
                    FieldMapping::scaled("1.3.6.1.4.1.2021.10.1.5.1", 0.01),
                ),
                ("NCpu", FieldMapping::direct("hrSystemNumCpu")),
            ],
        );
        assert!(m.supports_group("processor"));
        assert!(!m.supports_group("Disk"));
        let keys = m.native_keys_for("Processor", &["Load1", "NCpu", "Missing"]);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&"hrSystemNumCpu".to_owned()));
    }

    #[test]
    fn native_keys_dedup() {
        let m = DriverMapping::new("d").with_group(
            "G",
            [
                ("A", FieldMapping::direct("same.key")),
                ("B", FieldMapping::direct("same.key")),
            ],
        );
        assert_eq!(m.native_keys_for("G", &["A", "B"]), vec!["same.key"]);
    }
}
