//! The Naming Schema Manager (paper §3.1.4).
//!
//! "The SchemaManager provides mapping and translation services for data
//! source drivers." Drivers fetch a [`SchemaHandle`] when a connection is
//! created ("Schema is cached when the connection is created", Fig 5) and
//! re-validate it before each statement ("Statement checks cache consistency
//! before using schema instance to connect to data source").

use crate::mapping::DriverMapping;
use crate::schema::{GroupDef, Schema};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing schema-manager traffic (experiment E11).
#[derive(Debug, Default)]
pub struct SchemaStats {
    /// Full handle fetches (connection creation).
    pub handle_fetches: AtomicU64,
    /// Cheap consistency validations (per statement).
    pub validations: AtomicU64,
    /// Validations that found a stale handle and forced a refetch.
    pub stale_hits: AtomicU64,
}

impl SchemaStats {
    /// Snapshot `(fetches, validations, stale)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.handle_fetches.load(Ordering::Relaxed),
            self.validations.load(Ordering::Relaxed),
            self.stale_hits.load(Ordering::Relaxed),
        )
    }
}

/// An immutable snapshot of the schema state a driver connection caches.
///
/// Cloning is cheap (`Arc`s); a handle knows the manager version it was cut
/// from, so [`SchemaManager::is_current`] is a single atomic load.
#[derive(Clone)]
pub struct SchemaHandle {
    /// Manager version this handle was created at.
    pub version: u64,
    /// The naming schema.
    pub schema: Arc<Schema>,
    /// The mapping for the driver that requested the handle, if registered.
    pub mapping: Option<Arc<DriverMapping>>,
}

impl SchemaHandle {
    /// Look up a group in the snapshot schema.
    pub fn group(&self, name: &str) -> Option<&GroupDef> {
        self.schema.group(name)
    }
}

/// The gateway-wide schema registry.
///
/// Holds the active naming schema (GLUE by default) and the per-driver GLUE
/// implementation mappings. Any mutation bumps `version`, invalidating all
/// outstanding [`SchemaHandle`]s.
pub struct SchemaManager {
    schema: RwLock<Arc<Schema>>,
    mappings: RwLock<HashMap<String, Arc<DriverMapping>>>,
    version: AtomicU64,
    stats: SchemaStats,
}

impl SchemaManager {
    /// Manager seeded with the built-in GLUE schema.
    pub fn new() -> Self {
        Self::with_schema(crate::schema::builtin_schema())
    }

    /// Manager with a custom schema.
    pub fn with_schema(schema: Schema) -> Self {
        SchemaManager {
            schema: RwLock::new(Arc::new(schema)),
            mappings: RwLock::new(HashMap::new()),
            version: AtomicU64::new(1),
            stats: SchemaStats::default(),
        }
    }

    /// Current schema version; bumps on every mutation.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Register (or replace) a driver's GLUE mapping. Typically called when
    /// the driver plug-in is registered with the gateway.
    pub fn register_mapping(&self, mapping: DriverMapping) {
        self.mappings
            .write()
            .insert(mapping.driver.clone(), Arc::new(mapping));
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Remove a driver's mapping (driver unregistered).
    pub fn unregister_mapping(&self, driver: &str) -> bool {
        let removed = self.mappings.write().remove(driver).is_some();
        if removed {
            self.version.fetch_add(1, Ordering::AcqRel);
        }
        removed
    }

    /// Replace or extend the naming schema itself (e.g. "as GLUE evolves",
    /// §3.2.3).
    pub fn upsert_group(&self, group: GroupDef) {
        let mut guard = self.schema.write();
        let mut schema = (**guard).clone();
        schema.upsert_group(group);
        *guard = Arc::new(schema);
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// The active schema (cheap Arc clone).
    pub fn schema(&self) -> Arc<Schema> {
        self.schema.read().clone()
    }

    /// Fetch a consistent snapshot for `driver` — the connect-time call.
    pub fn handle_for(&self, driver: &str) -> SchemaHandle {
        self.stats.handle_fetches.fetch_add(1, Ordering::Relaxed);
        // Read mappings and schema under their locks, then stamp with the
        // version read *before* both: if a writer races, the handle simply
        // reports stale on next validation.
        let version = self.version();
        let schema = self.schema.read().clone();
        let mapping = self.mappings.read().get(driver).cloned();
        SchemaHandle {
            version,
            schema,
            mapping,
        }
    }

    /// Fig 5's per-statement consistency check: is `handle` still current?
    pub fn is_current(&self, handle: &SchemaHandle) -> bool {
        self.stats.validations.fetch_add(1, Ordering::Relaxed);
        let current = handle.version == self.version();
        if !current {
            self.stats.stale_hits.fetch_add(1, Ordering::Relaxed);
        }
        current
    }

    /// Validate-or-refresh: the pattern driver statements use.
    pub fn ensure_current(&self, handle: &mut SchemaHandle, driver: &str) {
        if !self.is_current(handle) {
            *handle = self.handle_for(driver);
        }
    }

    /// Mapping registered for a driver, if any.
    pub fn mapping_for(&self, driver: &str) -> Option<Arc<DriverMapping>> {
        self.mappings.read().get(driver).cloned()
    }

    /// Names of drivers with registered mappings.
    pub fn mapped_drivers(&self) -> Vec<String> {
        let mut v: Vec<String> = self.mappings.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Traffic counters.
    pub fn stats(&self) -> &SchemaStats {
        &self.stats
    }
}

impl Default for SchemaManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::FieldMapping;
    use crate::schema::AttributeDef;
    use gridrm_sqlparse::SqlType;

    #[test]
    fn handle_caching_and_invalidation() {
        let m = SchemaManager::new();
        let mut h = m.handle_for("jdbc-snmp");
        assert!(m.is_current(&h));

        m.register_mapping(
            DriverMapping::new("jdbc-snmp")
                .with_group("Processor", [("Load1", FieldMapping::direct("laLoad.1"))]),
        );
        assert!(!m.is_current(&h));

        m.ensure_current(&mut h, "jdbc-snmp");
        assert!(m.is_current(&h));
        assert!(h.mapping.is_some());
        let (fetches, validations, stale) = m.stats().snapshot();
        assert_eq!(fetches, 2);
        assert!(validations >= 3);
        // Two stale observations: the explicit is_current above plus the
        // one inside ensure_current.
        assert_eq!(stale, 2);
    }

    #[test]
    fn unregister_bumps_version_only_when_present() {
        let m = SchemaManager::new();
        let v0 = m.version();
        assert!(!m.unregister_mapping("nope"));
        assert_eq!(m.version(), v0);
        m.register_mapping(DriverMapping::new("d"));
        assert!(m.unregister_mapping("d"));
        assert_eq!(m.version(), v0 + 2);
    }

    #[test]
    fn schema_extension_invalidates_handles() {
        let m = SchemaManager::new();
        let h = m.handle_for("d");
        m.upsert_group(GroupDef {
            name: "Sensor".into(),
            attributes: vec![AttributeDef::new("Reading", SqlType::Float, None, "")],
            description: "extension".into(),
        });
        assert!(!m.is_current(&h));
        assert!(m.schema().group("Sensor").is_some());
        // Old handle still sees the old schema snapshot (immutability).
        assert!(h.schema.group("Sensor").is_none());
    }

    #[test]
    fn mapped_drivers_sorted() {
        let m = SchemaManager::new();
        m.register_mapping(DriverMapping::new("z"));
        m.register_mapping(DriverMapping::new("a"));
        assert_eq!(m.mapped_drivers(), vec!["a".to_owned(), "z".into()]);
    }

    #[test]
    fn concurrent_handles() {
        let m = Arc::new(SchemaManager::new());
        let mut threads = Vec::new();
        for i in 0..8 {
            let m = m.clone();
            threads.push(std::thread::spawn(move || {
                for j in 0..100 {
                    if i == 0 && j % 10 == 0 {
                        m.register_mapping(DriverMapping::new("churn"));
                    }
                    let mut h = m.handle_for("churn");
                    m.ensure_current(&mut h, "churn");
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
    }
}
