//! Native → GLUE row translation (the normalisation step, §3.2.3).

use crate::manager::SchemaHandle;
use crate::schema::GroupDef;
use gridrm_sqlparse::SqlValue;
use std::collections::HashMap;

/// A bag of native key/value pairs fetched from a data source — one logical
/// entity's worth (one host, one interface, one host pair, …).
pub type NativeRow = HashMap<String, SqlValue>;

/// Translates native rows into GLUE-ordered rows using a driver's mapping.
///
/// The translator is the seam that makes heterogeneous sources homogeneous:
/// whatever shape the agent returned, the output row has exactly the
/// attributes of the GLUE group, in definition order, with
/// [`SqlValue::Null`] wherever the source has no translatable value.
pub struct Translator<'a> {
    handle: &'a SchemaHandle,
}

impl<'a> Translator<'a> {
    /// Translator over a schema handle (see [`crate::SchemaManager`]).
    pub fn new(handle: &'a SchemaHandle) -> Self {
        Translator { handle }
    }

    /// The group definition for `group`, if the schema knows it.
    pub fn group(&self, group: &str) -> Option<&GroupDef> {
        self.handle.group(group)
    }

    /// Translate one native row into a GLUE row for `group`.
    ///
    /// Returns `None` when the schema has no such group. Attributes the
    /// driver has no mapping for — or whose native key is absent from the
    /// row, or whose transform fails — come back as NULL and are counted in
    /// the second tuple element so drivers can report translation coverage.
    pub fn translate(&self, group: &str, native: &NativeRow) -> Option<(Vec<SqlValue>, usize)> {
        let def = self.handle.group(group)?;
        let fields = self
            .handle
            .mapping
            .as_ref()
            .and_then(|m| m.group(group).cloned())
            .unwrap_or_default();
        let mut nulls = 0usize;
        let row = def
            .attributes
            .iter()
            .map(|attr| {
                let mapped = fields
                    .iter()
                    .find(|(name, _)| name.eq_ignore_ascii_case(&attr.name))
                    .and_then(|(_, fm)| native.get(&fm.native_key).map(|v| fm.transform.apply(v)))
                    .unwrap_or(SqlValue::Null);
                // Coerce to the declared attribute type where possible; a
                // failed coercion is an untranslatable value → NULL.
                let coerced = mapped.coerce(attr.ty).unwrap_or(SqlValue::Null);
                if coerced.is_null() {
                    nulls += 1;
                }
                coerced
            })
            .collect();
        Some((row, nulls))
    }

    /// The attributes of `group` this driver's mapping cannot translate
    /// at all — "not possible to translate" drops (§3.2.3), as opposed
    /// to values that merely happen to be absent from one native row.
    /// Empty when the schema has no such group.
    pub fn unmapped_attributes(&self, group: &str) -> Vec<String> {
        let Some(def) = self.handle.group(group) else {
            return Vec::new();
        };
        let fields = self
            .handle
            .mapping
            .as_ref()
            .and_then(|m| m.group(group).cloned())
            .unwrap_or_default();
        def.attributes
            .iter()
            .filter(|attr| {
                !fields
                    .iter()
                    .any(|(name, _)| name.eq_ignore_ascii_case(&attr.name))
            })
            .map(|attr| attr.name.clone())
            .collect()
    }

    /// Translate a batch of native rows.
    pub fn translate_all(
        &self,
        group: &str,
        rows: &[NativeRow],
    ) -> Option<(Vec<Vec<SqlValue>>, usize)> {
        let mut out = Vec::with_capacity(rows.len());
        let mut total_nulls = 0;
        for r in rows {
            let (row, nulls) = self.translate(group, r)?;
            total_nulls += nulls;
            out.push(row);
        }
        Some((out, total_nulls))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::SchemaManager;
    use crate::mapping::{DriverMapping, FieldMapping, Transform};

    fn manager_with_snmp_mapping() -> SchemaManager {
        let m = SchemaManager::new();
        m.register_mapping(DriverMapping::new("jdbc-snmp").with_group(
            "Processor",
            [
                ("Hostname", FieldMapping::direct("sysName")),
                ("NCpu", FieldMapping::direct("hrNumCpu")),
                // UCD laLoad is reported in centi-load.
                (
                    "Load1",
                    FieldMapping {
                        native_key: "laLoadInt.1".into(),
                        transform: Transform::Scale { factor: 0.01 },
                    },
                ),
            ],
        ));
        m
    }

    #[test]
    fn translation_orders_and_nulls() {
        let m = manager_with_snmp_mapping();
        let h = m.handle_for("jdbc-snmp");
        let t = Translator::new(&h);
        let mut native = NativeRow::new();
        native.insert("sysName".into(), SqlValue::Str("node01".into()));
        native.insert("hrNumCpu".into(), SqlValue::Int(4));
        native.insert("laLoadInt.1".into(), SqlValue::Int(75));

        let (row, nulls) = t.translate("Processor", &native).unwrap();
        let def = h.group("Processor").unwrap();
        assert_eq!(row.len(), def.attributes.len());
        assert_eq!(
            row[def.attribute_index("Hostname").unwrap()],
            SqlValue::Str("node01".into())
        );
        assert_eq!(row[def.attribute_index("NCpu").unwrap()], SqlValue::Int(4));
        assert_eq!(
            row[def.attribute_index("Load1").unwrap()],
            SqlValue::Float(0.75)
        );
        // Everything unmapped (Model, Vendor, Load5, ...) is NULL.
        assert_eq!(nulls, def.attributes.len() - 3);
        assert_eq!(row[def.attribute_index("Model").unwrap()], SqlValue::Null);
    }

    #[test]
    fn missing_native_key_is_null() {
        let m = manager_with_snmp_mapping();
        let h = m.handle_for("jdbc-snmp");
        let t = Translator::new(&h);
        let native = NativeRow::new(); // agent returned nothing
        let (row, nulls) = t.translate("Processor", &native).unwrap();
        assert!(row.iter().all(SqlValue::is_null));
        assert_eq!(nulls, row.len());
    }

    #[test]
    fn unknown_group_is_none() {
        let m = manager_with_snmp_mapping();
        let h = m.handle_for("jdbc-snmp");
        let t = Translator::new(&h);
        assert!(t.translate("Bogus", &NativeRow::new()).is_none());
    }

    #[test]
    fn type_coercion_to_declared_type() {
        let m = SchemaManager::new();
        m.register_mapping(
            DriverMapping::new("d")
                .with_group("Processor", [("NCpu", FieldMapping::direct("ncpu"))]),
        );
        let h = m.handle_for("d");
        let t = Translator::new(&h);
        let mut native = NativeRow::new();
        // Agent returned a string; GLUE declares NCpu as Int.
        native.insert("ncpu".into(), SqlValue::Str("8".into()));
        let (row, _) = t.translate("Processor", &native).unwrap();
        let def = h.group("Processor").unwrap();
        assert_eq!(row[def.attribute_index("NCpu").unwrap()], SqlValue::Int(8));
    }

    #[test]
    fn failed_coercion_is_null() {
        let m = SchemaManager::new();
        m.register_mapping(
            DriverMapping::new("d")
                .with_group("Processor", [("NCpu", FieldMapping::direct("ncpu"))]),
        );
        let h = m.handle_for("d");
        let t = Translator::new(&h);
        let mut native = NativeRow::new();
        native.insert("ncpu".into(), SqlValue::Str("not-a-number".into()));
        let (row, _) = t.translate("Processor", &native).unwrap();
        let def = h.group("Processor").unwrap();
        assert_eq!(row[def.attribute_index("NCpu").unwrap()], SqlValue::Null);
    }

    #[test]
    fn no_mapping_registered_all_null() {
        let m = SchemaManager::new();
        let h = m.handle_for("unmapped-driver");
        let t = Translator::new(&h);
        let mut native = NativeRow::new();
        native.insert("anything".into(), SqlValue::Int(1));
        let (row, nulls) = t.translate("Host", &native).unwrap();
        assert_eq!(nulls, row.len());
    }

    #[test]
    fn unmapped_attributes_lists_untranslatable_drops() {
        let m = manager_with_snmp_mapping();
        let h = m.handle_for("jdbc-snmp");
        let t = Translator::new(&h);
        let dropped = t.unmapped_attributes("Processor");
        // The mapped trio never appears; everything else does.
        for mapped in ["Hostname", "NCpu", "Load1"] {
            assert!(!dropped.iter().any(|d| d == mapped), "{mapped} is mapped");
        }
        let def = h.group("Processor").unwrap();
        assert_eq!(dropped.len(), def.attributes.len() - 3);
        assert!(t.unmapped_attributes("Bogus").is_empty());
    }

    #[test]
    fn batch_translation() {
        let m = manager_with_snmp_mapping();
        let h = m.handle_for("jdbc-snmp");
        let t = Translator::new(&h);
        let rows: Vec<NativeRow> = (0..3)
            .map(|i| {
                let mut n = NativeRow::new();
                n.insert("sysName".into(), SqlValue::Str(format!("node{i:02}")));
                n
            })
            .collect();
        let (out, _) = t.translate_all("Processor", &rows).unwrap();
        assert_eq!(out.len(), 3);
    }
}
