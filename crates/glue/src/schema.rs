//! GLUE group and attribute definitions.

use gridrm_sqlparse::SqlType;
use serde::{Deserialize, Serialize};

/// One attribute of a GLUE group (a column of the logical table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Attribute name as clients see it (e.g. `Load1`).
    pub name: String,
    /// Value type.
    pub ty: SqlType,
    /// Measurement unit, when meaningful (e.g. `MHz`, `MB`, `%`).
    pub unit: Option<String>,
    /// Documentation string.
    pub description: String,
}

impl AttributeDef {
    /// Define an attribute.
    pub fn new(name: &str, ty: SqlType, unit: Option<&str>, description: &str) -> Self {
        AttributeDef {
            name: name.to_owned(),
            ty,
            unit: unit.map(str::to_owned),
            description: description.to_owned(),
        }
    }
}

/// A GLUE group — the logical table clients name in `FROM` clauses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupDef {
    /// Group name (e.g. `Processor`).
    pub name: String,
    /// Ordered attribute list; the order defines result-column order.
    pub attributes: Vec<AttributeDef>,
    /// Documentation string.
    pub description: String,
}

impl GroupDef {
    /// Find an attribute by name (case-insensitive).
    pub fn attribute(&self, name: &str) -> Option<&AttributeDef> {
        self.attributes
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Index of an attribute (case-insensitive).
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes
            .iter()
            .position(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Attribute names in definition order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }
}

/// A complete naming schema: a set of groups.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schema {
    /// Schema name, e.g. `GLUE`.
    pub name: String,
    /// Schema version string, e.g. `1.1`.
    pub version: String,
    /// The groups.
    pub groups: Vec<GroupDef>,
}

impl Schema {
    /// Find a group by name (case-insensitive).
    pub fn group(&self, name: &str) -> Option<&GroupDef> {
        self.groups
            .iter()
            .find(|g| g.name.eq_ignore_ascii_case(name))
    }

    /// Names of all groups.
    pub fn group_names(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.name.as_str()).collect()
    }

    /// Add (or replace) a group definition. Used when extending the schema
    /// at runtime; the `SchemaManager` bumps its version on every change.
    pub fn upsert_group(&mut self, group: GroupDef) {
        match self
            .groups
            .iter_mut()
            .find(|g| g.name.eq_ignore_ascii_case(&group.name))
        {
            Some(slot) => *slot = group,
            None => self.groups.push(group),
        }
    }
}

/// The built-in GLUE schema GridRM-rs ships with.
///
/// Modelled on GLUE 1.x conceptual groups: host-level groups (Processor,
/// MainMemory, OperatingSystem, Disk, FileSystem, NetworkAdapter), the
/// pairwise NetworkElement group (what NWS measures), the site-level
/// ComputeElement/StorageElement groups, and the Event group used by the
/// Event Manager for normalised events.
pub fn builtin_schema() -> Schema {
    use SqlType::*;
    let g = |name: &str, description: &str, attrs: Vec<AttributeDef>| GroupDef {
        name: name.to_owned(),
        attributes: attrs,
        description: description.to_owned(),
    };
    let a = AttributeDef::new;
    Schema {
        name: "GLUE".to_owned(),
        version: "1.1".to_owned(),
        groups: vec![
            g(
                "Host",
                "Identity and liveness of a monitored host",
                vec![
                    a("Hostname", Str, None, "Fully qualified host name"),
                    a("SiteName", Str, None, "Grid site the host belongs to"),
                    a("UpTimeSec", Int, Some("s"), "Seconds since boot"),
                    a("BootTime", Timestamp, Some("ms"), "Boot time, epoch millis"),
                ],
            ),
            g(
                "Processor",
                "CPU identity and load of a host",
                vec![
                    a("Hostname", Str, None, "Host the processors belong to"),
                    a("NCpu", Int, None, "Number of logical CPUs"),
                    a("ClockMHz", Int, Some("MHz"), "Clock speed"),
                    a("Model", Str, None, "CPU model string"),
                    a("Vendor", Str, None, "CPU vendor"),
                    a("Load1", Float, None, "1-minute load average"),
                    a("Load5", Float, None, "5-minute load average"),
                    a("Load15", Float, None, "15-minute load average"),
                    a("CpuUser", Float, Some("%"), "User-mode CPU time share"),
                    a("CpuSystem", Float, Some("%"), "Kernel-mode CPU time share"),
                    a("CpuIdle", Float, Some("%"), "Idle CPU time share"),
                ],
            ),
            g(
                "MainMemory",
                "Physical and virtual memory of a host",
                vec![
                    a("Hostname", Str, None, "Host"),
                    a("RAMSizeMB", Int, Some("MB"), "Physical memory size"),
                    a("RAMAvailableMB", Int, Some("MB"), "Free physical memory"),
                    a("VirtualSizeMB", Int, Some("MB"), "Swap + RAM size"),
                    a("VirtualAvailableMB", Int, Some("MB"), "Free virtual memory"),
                ],
            ),
            g(
                "OperatingSystem",
                "Operating system identity",
                vec![
                    a("Hostname", Str, None, "Host"),
                    a("Name", Str, None, "OS name"),
                    a("Release", Str, None, "OS release"),
                    a("Version", Str, None, "OS version string"),
                ],
            ),
            g(
                "Disk",
                "Physical disk devices and their activity",
                vec![
                    a("Hostname", Str, None, "Host"),
                    a("Device", Str, None, "Device name, e.g. sda"),
                    a("SizeMB", Int, Some("MB"), "Raw capacity"),
                    a("ReadCount", Int, None, "Cumulative read operations"),
                    a("WriteCount", Int, None, "Cumulative write operations"),
                ],
            ),
            g(
                "FileSystem",
                "Mounted file systems",
                vec![
                    a("Hostname", Str, None, "Host"),
                    a("Name", Str, None, "Mount point"),
                    a("Root", Str, None, "Backing device"),
                    a("SizeMB", Int, Some("MB"), "Capacity"),
                    a("AvailableMB", Int, Some("MB"), "Free space"),
                    a("ReadOnly", Bool, None, "Mounted read-only?"),
                ],
            ),
            g(
                "NetworkAdapter",
                "Network interfaces and their counters",
                vec![
                    a("Hostname", Str, None, "Host"),
                    a("Name", Str, None, "Interface name, e.g. eth0"),
                    a("IPAddress", Str, None, "Primary IPv4 address"),
                    a("MTU", Int, Some("B"), "Maximum transmission unit"),
                    a("RxBytes", Int, Some("B"), "Cumulative bytes received"),
                    a("TxBytes", Int, Some("B"), "Cumulative bytes sent"),
                    a("Up", Bool, None, "Operational state"),
                ],
            ),
            g(
                "NetworkElement",
                "Pairwise end-to-end network performance (NWS-style)",
                vec![
                    a("SourceHost", Str, None, "Measurement source"),
                    a("DestHost", Str, None, "Measurement destination"),
                    a("BandwidthMbps", Float, Some("Mb/s"), "Measured bandwidth"),
                    a("LatencyMs", Float, Some("ms"), "Measured latency"),
                    a(
                        "ForecastBandwidthMbps",
                        Float,
                        Some("Mb/s"),
                        "Forecast bandwidth",
                    ),
                    a("ForecastLatencyMs", Float, Some("ms"), "Forecast latency"),
                    a("ForecastMethod", Str, None, "Winning forecaster name"),
                ],
            ),
            g(
                "ComputeElement",
                "Site-level batch/compute summary",
                vec![
                    a("CEId", Str, None, "Compute element identifier"),
                    a("SiteName", Str, None, "Owning site"),
                    a("TotalCpus", Int, None, "CPUs managed"),
                    a("FreeCpus", Int, None, "CPUs currently free"),
                    a("RunningJobs", Int, None, "Jobs running"),
                    a("WaitingJobs", Int, None, "Jobs queued"),
                    a("Status", Str, None, "Production status"),
                ],
            ),
            g(
                "StorageElement",
                "Site-level storage summary",
                vec![
                    a("SEId", Str, None, "Storage element identifier"),
                    a("SiteName", Str, None, "Owning site"),
                    a("TotalSizeGB", Int, Some("GB"), "Capacity"),
                    a("UsedSizeGB", Int, Some("GB"), "Used space"),
                    a("Type", Str, None, "disk / tape"),
                ],
            ),
            g(
                "Event",
                "Normalised GridRM events (traps, alerts, log events)",
                vec![
                    a("EventId", Int, None, "Gateway-assigned sequence number"),
                    a("SourceUrl", Str, None, "Data source URL that produced it"),
                    a("Hostname", Str, None, "Host concerned"),
                    a("Severity", Str, None, "info / warning / critical"),
                    a("Category", Str, None, "Event category, e.g. cpu.load"),
                    a("Message", Str, None, "Human-readable message"),
                    a("At", Timestamp, Some("ms"), "When the event occurred"),
                    a("Value", Float, None, "Associated numeric value, if any"),
                ],
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_core_groups() {
        let s = builtin_schema();
        for name in [
            "Host",
            "Processor",
            "MainMemory",
            "OperatingSystem",
            "Disk",
            "FileSystem",
            "NetworkAdapter",
            "NetworkElement",
            "ComputeElement",
            "StorageElement",
            "Event",
        ] {
            assert!(s.group(name).is_some(), "missing group {name}");
        }
    }

    #[test]
    fn group_lookup_case_insensitive() {
        let s = builtin_schema();
        assert!(s.group("processor").is_some());
        assert!(s.group("PROCESSOR").is_some());
        assert!(s.group("NoSuchGroup").is_none());
    }

    #[test]
    fn attribute_lookup() {
        let s = builtin_schema();
        let p = s.group("Processor").unwrap();
        assert_eq!(p.attribute("load1").unwrap().ty, SqlType::Float);
        assert_eq!(p.attribute_index("Hostname"), Some(0));
        assert!(p.attribute("Bogus").is_none());
    }

    #[test]
    fn units_present_where_meaningful() {
        let s = builtin_schema();
        let mm = s.group("MainMemory").unwrap();
        assert_eq!(
            mm.attribute("RAMSizeMB").unwrap().unit.as_deref(),
            Some("MB")
        );
    }

    #[test]
    fn upsert_replaces_or_adds() {
        let mut s = builtin_schema();
        let n = s.groups.len();
        let mut p = s.group("Processor").unwrap().clone();
        p.attributes.push(AttributeDef::new(
            "BogoMips",
            SqlType::Float,
            None,
            "extension attribute",
        ));
        s.upsert_group(p);
        assert_eq!(s.groups.len(), n);
        assert!(s
            .group("Processor")
            .unwrap()
            .attribute("BogoMips")
            .is_some());

        s.upsert_group(GroupDef {
            name: "Custom".into(),
            attributes: vec![],
            description: String::new(),
        });
        assert_eq!(s.groups.len(), n + 1);
    }

    #[test]
    fn attribute_names_ordered() {
        let s = builtin_schema();
        let names = s.group("NetworkElement").unwrap().attribute_names();
        assert_eq!(names[0], "SourceHost");
        assert_eq!(names[1], "DestHost");
    }
}
