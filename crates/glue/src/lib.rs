#![warn(missing_docs)]

//! # gridrm-glue — the GLUE naming schema
//!
//! GridRM normalises everything it harvests against the **GLUE schema**
//! (Grid Laboratory Uniform Environment), "minimum, common, conceptual
//! schemas to allow interoperability between Grid implementations for
//! resource monitoring and discovery" (paper §3.1.4). GLUE "logically
//! organises data into groups \[whose\] essence can be directly compared to
//! the tables of a relational database" (§3.2.3) — so `SELECT * FROM
//! Processor` queries the GLUE *Processor* group regardless of whether the
//! data comes from SNMP, Ganglia, NWS, NetLogger or SCMS.
//!
//! This crate provides:
//!
//! * [`schema`] — the built-in group definitions (Processor, MainMemory,
//!   NetworkElement, ComputeElement, …) with typed, unit-annotated
//!   attributes;
//! * [`mapping`] — per-driver mapping tables from GLUE attributes to native
//!   keys (OIDs, Ganglia metric names, …) with value transforms;
//! * [`manager`] — the [`SchemaManager`], the gateway component drivers
//!   consult to learn "metadata describing that driver's GLUE
//!   implementation" (§3.2.3), with the connection-time caching and
//!   consistency check shown in Fig 5;
//! * [`translate`] — the normalisation step turning native key/value pairs
//!   into homogeneous GLUE rows, with NULL for attributes that are "either
//!   not possible or currently not implemented" to translate.

pub mod manager;
pub mod mapping;
pub mod schema;
pub mod translate;

pub use manager::{SchemaHandle, SchemaManager, SchemaStats};
pub use mapping::{DriverMapping, FieldMapping, Transform};
pub use schema::{builtin_schema, AttributeDef, GroupDef, Schema};
pub use translate::{NativeRow, Translator};
