//! The GMA directory (Fig 1's "GMA Directory"): gateways register as
//! producers of monitoring data for the hosts they own; consumers look up
//! which gateway to contact for a resource.

use gridrm_dbc::JdbcUrl;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One registered producer (a gateway).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerEntry {
    /// Gateway name.
    pub gateway: String,
    /// Site it manages.
    pub site: String,
    /// Network address of its `:gma` endpoint.
    pub gma_address: String,
    /// Host-name suffixes this gateway is authoritative for (e.g.
    /// `.site-a`). A URL belongs to the gateway whose suffix matches the
    /// URL's host; `local` URLs are never owned remotely.
    pub host_suffixes: Vec<String>,
}

impl ProducerEntry {
    /// Does this producer own the resource at `url`?
    pub fn owns(&self, url: &JdbcUrl) -> bool {
        self.host_suffixes
            .iter()
            .any(|s| url.host.ends_with(s.as_str()))
    }
}

/// The directory registry. In a deployment this is itself a GMA service;
/// here it is shared in-process (an `Arc`) and additionally reachable over
/// the network via `GlobalLayer`'s use of it — the interaction model is
/// what the paper takes from GMA, not the discovery wire format.
#[derive(Default)]
pub struct GmaDirectory {
    producers: RwLock<Vec<ProducerEntry>>,
}

impl GmaDirectory {
    /// Empty directory.
    pub fn new() -> Arc<GmaDirectory> {
        Arc::new(GmaDirectory::default())
    }

    /// Register (or re-register) a producer.
    pub fn register(&self, entry: ProducerEntry) {
        let mut producers = self.producers.write();
        producers.retain(|p| p.gateway != entry.gateway);
        producers.push(entry);
    }

    /// Remove a producer.
    pub fn unregister(&self, gateway: &str) -> bool {
        let mut producers = self.producers.write();
        let before = producers.len();
        producers.retain(|p| p.gateway != gateway);
        producers.len() != before
    }

    /// All producers.
    pub fn producers(&self) -> Vec<ProducerEntry> {
        self.producers.read().clone()
    }

    /// Which producer owns `url`?
    pub fn lookup(&self, url: &JdbcUrl) -> Option<ProducerEntry> {
        self.producers.read().iter().find(|p| p.owns(url)).cloned()
    }

    /// Look up a producer by gateway name.
    pub fn by_name(&self, gateway: &str) -> Option<ProducerEntry> {
        self.producers
            .read()
            .iter()
            .find(|p| p.gateway == gateway)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(gateway: &str, site: &str) -> ProducerEntry {
        ProducerEntry {
            gateway: gateway.to_owned(),
            site: site.to_owned(),
            gma_address: format!("gw.{site}:gma"),
            host_suffixes: vec![format!(".{site}")],
        }
    }

    #[test]
    fn register_lookup_unregister() {
        let d = GmaDirectory::new();
        d.register(entry("gw-a", "site-a"));
        d.register(entry("gw-b", "site-b"));
        let url = JdbcUrl::parse("jdbc:snmp://node03.site-b/public").unwrap();
        assert_eq!(d.lookup(&url).unwrap().gateway, "gw-b");
        assert!(d
            .lookup(&JdbcUrl::parse("jdbc:snmp://node.site-c/p").unwrap())
            .is_none());
        assert!(d.unregister("gw-b"));
        assert!(d.lookup(&url).is_none());
        assert!(!d.unregister("gw-b"));
    }

    #[test]
    fn reregistration_replaces() {
        let d = GmaDirectory::new();
        d.register(entry("gw-a", "site-a"));
        let mut updated = entry("gw-a", "site-a");
        updated.host_suffixes.push(".extra".to_owned());
        d.register(updated);
        assert_eq!(d.producers().len(), 1);
        assert_eq!(d.by_name("gw-a").unwrap().host_suffixes.len(), 2);
    }

    #[test]
    fn ownership_is_suffix_based() {
        let e = entry("gw-a", "alpha");
        assert!(e.owns(&JdbcUrl::parse("jdbc:ganglia://node00.alpha/c").unwrap()));
        assert!(!e.owns(&JdbcUrl::parse("jdbc:ganglia://node00.beta/c").unwrap()));
        assert!(!e.owns(&JdbcUrl::parse("jdbc:gridrm://local/history").unwrap()));
    }
}
