#![warn(missing_docs)]

//! # gridrm-global — the GridRM Global layer
//!
//! "The Global layer, which provides inter Grid site, or Virtual
//! Organisation, interaction is based on the Global Grid Forum's Grid
//! Monitoring Architecture (GMA)" (§1.1, Fig 1):
//!
//! * gateways **register** with a [`gma::GmaDirectory`] as producers of
//!   monitoring data for the hosts they own;
//! * clients connect to *any* gateway; "requests for remote resource data
//!   are routed through to the Global layer for processing by the gateway
//!   that owns the required data";
//! * events propagate between gateways through the Event Manager's
//!   transmit path (§3.1.5).
//!
//! The [`layer::GlobalLayer`] attaches to a `gridrm-core` gateway: it
//! serves a `{gateway}:gma` RPC endpoint speaking the [`protocol`] wire
//! format, splits client queries into local and remote parts, and
//! consolidates the answers.

mod engine;
pub mod gma;
pub mod layer;
pub mod protocol;
pub mod stream;
pub mod transport;

pub use gma::{GmaDirectory, ProducerEntry};
pub use layer::{GlobalLayer, SiteHealthRollup, SiteIntrusionRollup, SiteSloRollup};
pub use protocol::{GlobalRequest, GlobalResponse, WireDelta, WireFrame, WireIdentity, WireRows};
pub use stream::{GridSubscription, RemoteSubscription};
pub use transport::{
    FrameService, RecordingTransport, Transport, TransportError, TransportExchange,
};
