//! The parallel fan-out query engine: plans a Global-layer query into
//! per-gateway *segments*, dispatches them — concurrently in virtual
//! time by default — and consolidates the answers under a per-request
//! deadline budget and partial-results policy.
//!
//! ## Deterministic concurrency
//!
//! The simulation is single-threaded and driven by a virtual
//! [`SimClock`](gridrm_simnet::SimClock), so "parallel" cannot mean OS
//! threads. Instead the engine *models* concurrency: every segment is
//! issued at the same virtual instant `t0`, each segment's cost is
//! measured as the virtual time it alone would take (network RTT plus
//! the remote gateway's own elapsed time), and the clock is advanced
//! **once**, at the end, by the *maximum* segment cost rather than the
//! sum. Segments execute in a fixed order — the local share first, then
//! remote gateways in name order — so results, warnings and RNG draws
//! are byte-identical run to run; only the clock arithmetic changes.
//! Segment spans are closed with their modelled end time, which is how
//! `EXPLAIN ANALYZE` shows remote segments overlapping in time.
//!
//! Sequential mode (`fanout_parallel = false`, or
//! [`GlobalLayer::set_parallel_fanout`]) replays the historical
//! one-gateway-at-a-time walk: the clock advances after every segment
//! and total latency degrades to the sum of segment costs.

use crate::gma::ProducerEntry;
use crate::layer::GlobalLayer;
use crate::protocol::{GlobalRequest, GlobalResponse, WireFrame, WireIdentity};
use gridrm_core::acil::{
    ClientRequest, ClientResponse, OutcomeStatus, QueryMode, ResultPolicy, SourceOutcome,
};
use gridrm_core::security::Identity;
use gridrm_dbc::{DbcResult, JdbcUrl, RowSet, SqlError};
use gridrm_telemetry::{CostVector, IntrusionCause};
use std::collections::{BTreeMap, HashSet};

/// One unit of the fan-out plan: the local gateway's share of the
/// sources, or one remote gateway's share.
enum SegmentPlan {
    Local {
        sources: Vec<String>,
    },
    Remote {
        entry: ProducerEntry,
        sources: Vec<String>,
    },
}

impl SegmentPlan {
    fn sources(&self) -> &[String] {
        match self {
            SegmentPlan::Local { sources } | SegmentPlan::Remote { sources, .. } => sources,
        }
    }

    /// The gateway that answers this segment.
    fn gateway_name(&self, my_name: &str) -> String {
        match self {
            SegmentPlan::Local { .. } => my_name.to_owned(),
            SegmentPlan::Remote { entry, .. } => entry.gateway.clone(),
        }
    }

    /// The Grid site that answers this segment.
    fn site(&self, my_site: &str) -> String {
        match self {
            SegmentPlan::Local { .. } => my_site.to_owned(),
            SegmentPlan::Remote { entry, .. } => entry.site.clone(),
        }
    }
}

/// Warnings a gateway reported beyond what its structured outcomes
/// already derive (result-shape mismatches, history-write failures, …).
fn undeclared_warnings(warnings: Vec<String>, outcomes: &[SourceOutcome]) -> Vec<String> {
    let derived: HashSet<String> = outcomes.iter().filter_map(SourceOutcome::warning).collect();
    warnings
        .into_iter()
        .filter(|w| !derived.contains(w))
        .collect()
}

fn merge(acc: &mut Option<RowSet>, rows: RowSet, warnings: &mut Vec<String>, origin: &str) {
    match acc {
        None => *acc = Some(rows),
        Some(existing) => {
            if let Err(e) = existing.append(rows) {
                warnings.push(format!("{origin}: result shape mismatch: {e}"));
            }
        }
    }
}

impl GlobalLayer {
    /// Plan, dispatch and consolidate one Global-layer query.
    pub(crate) fn fan_out(&self, request: &ClientRequest) -> DbcResult<ClientResponse> {
        let telemetry = self.gateway.telemetry().clone();
        let clock = telemetry.clock().clone();
        let my_site = self.gateway.config().site.clone();
        let my_name = self.gateway.config().name.clone();
        let parallel = self.parallel_fanout();

        // ---- plan: partition sources by owning gateway ----
        let mut local: Vec<String> = Vec::new();
        let mut remote: BTreeMap<String, (ProducerEntry, Vec<String>)> = BTreeMap::new();
        for source in &request.sources {
            let owner = JdbcUrl::parse(source)
                .ok()
                .and_then(|u| self.directory.lookup(&u));
            match owner {
                Some(entry) if entry.gateway != my_name => {
                    remote
                        .entry(entry.gateway.clone())
                        .or_insert_with(|| (entry, Vec::new()))
                        .1
                        .push(source.clone());
                }
                // Owned by us, or unknown to the directory (e.g. a local
                // store URL): handle locally.
                _ => local.push(source.clone()),
            }
        }
        let (n_local, n_remote) = (local.len(), remote.len());
        let mut segments: Vec<SegmentPlan> = Vec::new();
        if !local.is_empty() || request.mode == QueryMode::Historical {
            segments.push(SegmentPlan::Local { sources: local });
        }
        for (_, (entry, sources)) in remote {
            segments.push(SegmentPlan::Remote { entry, sources });
        }

        let mut span = self.open_span(request);
        span.stage_with(
            "global_query",
            &format!(
                "{n_local} local, {n_remote} remote gateways, {} dispatch",
                if parallel { "parallel" } else { "sequential" }
            ),
        );
        let ctx = span.context();

        let identity = request.identity.clone().unwrap_or_else(Identity::anonymous);
        let deadline = request
            .deadline_ms
            .or(match self.gateway.config().default_deadline_ms {
                0 => None,
                d => Some(d),
            });
        let max_cache_age_ms = match request.mode {
            QueryMode::Cached { max_age_ms } => {
                Some(max_age_ms.unwrap_or(self.gateway.cache().default_ttl_ms()))
            }
            _ => None,
        };

        let t0 = clock.now_millis();
        let mut consolidated: Option<RowSet> = None;
        let mut outcomes: Vec<SourceOutcome> = Vec::new();
        let mut extra_warnings: Vec<String> = Vec::new();
        let mut first_err: Option<SqlError> = None;
        // Virtual time each segment still owes beyond what is already on
        // the clock; in parallel mode the clock advances once by the max.
        let mut max_external = 0u64;
        let mut failed = false;

        for segment in segments {
            let label = segment.gateway_name(&my_name);
            let site = segment.site(&my_site);

            // Fail-fast: once a segment has failed, skip the rest.
            if failed && request.policy == ResultPolicy::FailFast {
                for source in segment.sources() {
                    outcomes.push(SourceOutcome::failure(
                        source,
                        OutcomeStatus::Error,
                        0,
                        "skipped: fail-fast after earlier failure",
                    ));
                }
                self.stats.segments_error.inc();
                continue;
            }

            // Deadline budget: concurrent segments each get the full
            // budget (they all start at t0); sequential dispatch spends
            // it as the clock moves.
            let budget = deadline.map(|d| {
                if parallel {
                    d
                } else {
                    d.saturating_sub(clock.now_millis().saturating_sub(t0))
                }
            });
            if budget == Some(0) {
                for source in segment.sources() {
                    outcomes.push(SourceOutcome::failure(
                        source,
                        OutcomeStatus::Timeout,
                        0,
                        "deadline budget exhausted",
                    ));
                }
                self.stats.segments_deadline_exceeded.inc();
                first_err.get_or_insert_with(|| {
                    SqlError::Timeout(format!("{label}: deadline budget exhausted"))
                });
                failed = true;
                continue;
            }

            let mut seg_span = telemetry.span_in(&ctx, &format!("segment:{label}"));
            let seg_start = clock.now_millis();
            // `external` is the segment's modelled cost not yet applied
            // to the clock (RTT + remote compute); local work moves the
            // clock itself, so its external cost is 0.
            let (tag, external) = match &segment {
                SegmentPlan::Local { sources } => {
                    seg_span.stage_with("segment", "local");
                    let mut local_request = request.clone();
                    local_request.sources = sources.clone();
                    local_request.trace = Some(seg_span.context());
                    local_request.deadline_ms = budget;
                    // The engine owns the policy; each segment reports
                    // everything it can.
                    local_request.policy = ResultPolicy::BestEffort;
                    match self.gateway.query(&local_request) {
                        Ok(resp) => {
                            if resp.outcomes.iter().any(|o| !o.status.is_success()) {
                                failed = true;
                            }
                            extra_warnings
                                .extend(undeclared_warnings(resp.warnings, &resp.outcomes));
                            outcomes.extend(resp.outcomes);
                            merge(&mut consolidated, resp.rows, &mut extra_warnings, &label);
                            self.stats.segments_ok.inc();
                            ("ok", 0)
                        }
                        Err(e) => {
                            let elapsed = clock.now_millis().saturating_sub(seg_start);
                            let detail = e.to_string();
                            if sources.is_empty() {
                                // Historical fan-out with no local share.
                                outcomes.push(SourceOutcome::failure(
                                    "local",
                                    OutcomeStatus::Error,
                                    elapsed,
                                    &detail,
                                ));
                            }
                            for source in sources {
                                outcomes.push(SourceOutcome::failure(
                                    source,
                                    OutcomeStatus::Error,
                                    elapsed,
                                    &detail,
                                ));
                            }
                            first_err.get_or_insert(e);
                            failed = true;
                            self.stats.segments_error.inc();
                            ("error", 0)
                        }
                    }
                }
                SegmentPlan::Remote { entry, sources } => {
                    seg_span.stage_with("segment", "remote");
                    self.stats.remote_queries_out.inc();
                    let wire = GlobalRequest::Query {
                        from_gateway: my_name.clone(),
                        identity: WireIdentity::from(&identity),
                        sources: sources.clone(),
                        sql: request.sql.clone(),
                        max_cache_age_ms,
                        trace: Some(seg_span.context()),
                        deadline_ms: budget,
                    };
                    // The frame is the single source of truth for the
                    // bytes this segment imposes on the remote site.
                    let frame = WireFrame::encode(&wire);
                    let out_cost = CostVector {
                        msgs_out: 1,
                        bytes_out: frame.len(),
                        ..CostVector::default()
                    };
                    seg_span.add_cost(&out_cost);
                    telemetry
                        .costs()
                        .intrude(&entry.site, IntrusionCause::Query, &out_cost);
                    let sent =
                        self.transport
                            .send_frame(&self.gma_address, &entry.gma_address, &frame);
                    let (answer, rtt_ms) = match sent {
                        Ok((bytes, rtt_us)) => {
                            let in_cost = CostVector {
                                msgs_in: 1,
                                bytes_in: bytes.len() as u64,
                                ..CostVector::default()
                            };
                            seg_span.add_cost(&in_cost);
                            telemetry
                                .costs()
                                .intrude(&entry.site, IntrusionCause::Query, &in_cost);
                            (
                                WireFrame::decode::<GlobalResponse>(&bytes).map(|(r, _)| r),
                                rtt_us.div_ceil(1000),
                            )
                        }
                        Err(e) => (Err(SqlError::Connection(e.to_string())), 0),
                    };
                    let clock_delta = clock.now_millis().saturating_sub(seg_start);
                    match answer {
                        Ok(GlobalResponse::Rows {
                            rows,
                            warnings: remote_warnings,
                            served_from_cache: remote_cached,
                            spans,
                            elapsed_ms,
                            outcomes: remote_outcomes,
                        }) => {
                            // Adopt the remote half of the trace into the
                            // local ring buffer so EXPLAIN sees one
                            // cross-site tree. Remote spans that hang
                            // directly off this segment carry the remote
                            // gateway's inclusive costs; absorb (not
                            // count — they were counted over there) so
                            // the local roll-up still sums.
                            let seg_span_id = seg_span.context().parent_span_id;
                            for remote_span in spans {
                                if remote_span.parent_span_id.as_deref()
                                    == Some(seg_span_id.as_str())
                                {
                                    seg_span.absorb_cost(&remote_span.cost);
                                }
                                telemetry.import_span(remote_span);
                            }
                            // A shared sim clock means remote compute may
                            // already be inside clock_delta; only charge
                            // the part that is not.
                            let external = rtt_ms + elapsed_ms.saturating_sub(clock_delta);
                            let cost = clock_delta + external;
                            match budget {
                                Some(b) if cost > b => {
                                    // The answer would land after the
                                    // budget: the caller stopped waiting
                                    // at `b`, so the rows are dropped.
                                    for source in sources {
                                        outcomes.push(SourceOutcome::failure(
                                            source,
                                            OutcomeStatus::Timeout,
                                            b,
                                            &format!(
                                                "via {label}: deadline exceeded \
                                                 ({cost}ms > {b}ms budget)"
                                            ),
                                        ));
                                    }
                                    self.stats.segments_deadline_exceeded.inc();
                                    first_err.get_or_insert_with(|| {
                                        SqlError::Timeout(format!(
                                            "{label}: answered in {cost}ms, over the {b}ms budget"
                                        ))
                                    });
                                    failed = true;
                                    ("timeout", b.saturating_sub(clock_delta))
                                }
                                _ => match rows.to_rowset() {
                                    Ok(rs) => {
                                        let mut seg_outcomes = remote_outcomes;
                                        if seg_outcomes.is_empty() && !sources.is_empty() {
                                            // Pre-outcome peer: synthesise
                                            // one success per source.
                                            seg_outcomes = sources
                                                .iter()
                                                .enumerate()
                                                .map(|(i, s)| {
                                                    let status = if i < remote_cached {
                                                        OutcomeStatus::Cached
                                                    } else {
                                                        OutcomeStatus::Ok
                                                    };
                                                    SourceOutcome::success(s, status, cost)
                                                })
                                                .collect();
                                        } else {
                                            // The peer measured its own LAN-local
                                            // elapsed; the caller also paid the
                                            // WAN hop to hear the answer.
                                            for o in &mut seg_outcomes {
                                                o.elapsed_ms += rtt_ms;
                                            }
                                        }
                                        if seg_outcomes.iter().any(|o| !o.status.is_success()) {
                                            failed = true;
                                        }
                                        extra_warnings.extend(
                                            undeclared_warnings(remote_warnings, &seg_outcomes)
                                                .into_iter()
                                                .map(|w| format!("{label}: {w}")),
                                        );
                                        outcomes.extend(seg_outcomes);
                                        merge(&mut consolidated, rs, &mut extra_warnings, &label);
                                        self.stats.segments_ok.inc();
                                        ("ok", external)
                                    }
                                    Err(e) => {
                                        for source in sources {
                                            outcomes.push(SourceOutcome::failure(
                                                source,
                                                OutcomeStatus::Error,
                                                cost,
                                                &format!("via {label}: bad wire rows: {e}"),
                                            ));
                                        }
                                        first_err.get_or_insert(e);
                                        failed = true;
                                        self.stats.segments_error.inc();
                                        ("error", external)
                                    }
                                },
                            }
                        }
                        Ok(GlobalResponse::Error { message }) => {
                            let cost = clock_delta + rtt_ms;
                            for source in sources {
                                outcomes.push(SourceOutcome::failure(
                                    source,
                                    OutcomeStatus::Error,
                                    cost,
                                    &format!("via {label}: {message}"),
                                ));
                            }
                            first_err.get_or_insert(SqlError::Driver(message));
                            failed = true;
                            self.stats.segments_error.inc();
                            ("error", rtt_ms)
                        }
                        Ok(GlobalResponse::Overloaded {
                            queue_depth,
                            retry_after_ms,
                        }) => {
                            // A serving-layer peer shed this segment at
                            // admission; the query was never executed
                            // there. Surface it as a retryable
                            // connection-class failure. (Simnet peers
                            // never produce this.)
                            let cost = clock_delta + rtt_ms;
                            let message = format!(
                                "via {label}: peer overloaded \
                                 (queue depth {queue_depth}, retry after {retry_after_ms}ms)"
                            );
                            for source in sources {
                                outcomes.push(SourceOutcome::failure(
                                    source,
                                    OutcomeStatus::Error,
                                    cost,
                                    &message,
                                ));
                            }
                            first_err.get_or_insert(SqlError::Connection(message.clone()));
                            failed = true;
                            self.stats.segments_error.inc();
                            ("error", rtt_ms)
                        }
                        Ok(other) => {
                            let cost = clock_delta + rtt_ms;
                            for source in sources {
                                outcomes.push(SourceOutcome::failure(
                                    source,
                                    OutcomeStatus::Error,
                                    cost,
                                    &format!("via {label}: unexpected response {other:?}"),
                                ));
                            }
                            failed = true;
                            self.stats.segments_error.inc();
                            ("error", rtt_ms)
                        }
                        Err(e) => {
                            let cost = clock_delta + rtt_ms;
                            for source in sources {
                                outcomes.push(SourceOutcome::failure(
                                    source,
                                    OutcomeStatus::Error,
                                    cost,
                                    &format!("via {label}: {e}"),
                                ));
                            }
                            first_err.get_or_insert(e);
                            failed = true;
                            self.stats.segments_error.inc();
                            ("error", rtt_ms)
                        }
                    }
                }
            };

            let cost = clock.now_millis().saturating_sub(seg_start) + external;
            self.observe_site_latency(&site, cost);
            if parallel {
                max_external = max_external.max(external);
                // Close the span at its modelled end, which may be ahead
                // of (or behind) the clock: concurrent segments overlap.
                seg_span.finish_at(tag, seg_start + cost);
            } else {
                clock.advance(external);
                seg_span.finish(tag);
            }
        }

        if parallel && max_external > 0 {
            // All segments ran side by side: total wall-clock is the
            // slowest one, not the sum.
            clock.advance(max_external);
        }

        let consolidate = |consolidated: Option<RowSet>,
                           outcomes: Vec<SourceOutcome>,
                           extra_warnings: Vec<String>,
                           first_err: Option<SqlError>| {
            match consolidated {
                Some(rows) => Ok(ClientResponse::from_outcomes(
                    rows,
                    outcomes,
                    extra_warnings,
                )),
                None => Err(first_err
                    .unwrap_or_else(|| SqlError::Driver("no source produced a result".into()))),
            }
        };
        let result = match request.policy {
            ResultPolicy::FailFast if failed => {
                let detail = outcomes
                    .iter()
                    .find(|o| !o.status.is_success())
                    .and_then(SourceOutcome::warning);
                Err(first_err.unwrap_or_else(|| {
                    SqlError::Driver(detail.unwrap_or_else(|| "fan-out segment failed".into()))
                }))
            }
            ResultPolicy::Quorum(n) => {
                let ok = outcomes.iter().filter(|o| o.status.is_success()).count();
                if ok < n {
                    Err(SqlError::Driver(format!(
                        "quorum not met: {ok}/{n} sources answered"
                    )))
                } else {
                    consolidate(consolidated, outcomes, extra_warnings, first_err)
                }
            }
            _ => consolidate(consolidated, outcomes, extra_warnings, first_err),
        };
        span.finish(if result.is_ok() { "ok" } else { "error" });
        result
    }
}
