//! The unified `Transport` API: how gateway wire frames move.
//!
//! Everything the Global layer says on the wire is a [`WireFrame`]
//! (encoded [`GlobalRequest`](crate::GlobalRequest) /
//! [`GlobalResponse`](crate::GlobalResponse)); *how* a frame reaches the
//! peer is the transport's business. Two implementations exist:
//!
//! * the deterministic in-memory simnet — [`gridrm_simnet::Network`]
//!   implements [`Transport`] directly, so every existing test and
//!   experiment keeps replaying byte-identically in virtual time;
//! * real TCP with length-prefixed frames — `gridrm-serve`'s
//!   `TcpTransport`, the production path, which adds a worker-pool
//!   scheduler and admission control in front of the same
//!   [`FrameService`].
//!
//! [`GlobalLayer`](crate::GlobalLayer), the fan-out engine and the grid
//! subscription plumbing only ever see `Arc<dyn Transport>`: the Global
//! layer cannot tell (and must not care) whether a frame crossed a
//! channel or a socket.

use crate::protocol::WireFrame;
use std::fmt;
use std::sync::Arc;

/// A service that answers wire frames: the receiving side of a gateway's
/// `:gma` endpoint (and, over TCP, of the admin port's query plane).
///
/// `from` is the transport-level peer label — a simnet address or a
/// `tcp:<ip>:<port>` socket label — used for auditing only; trust comes
/// from the vouched identity *inside* the frame, never from the address.
pub trait FrameService: Send + Sync {
    /// Handle one request frame, producing the response frame's payload.
    fn handle_frame(&self, from: &str, frame: &[u8]) -> Vec<u8>;
}

impl<F> FrameService for F
where
    F: Fn(&str, &[u8]) -> Vec<u8> + Send + Sync,
{
    fn handle_frame(&self, from: &str, frame: &[u8]) -> Vec<u8> {
        self(from, frame)
    }
}

/// A transport-level delivery failure (endpoint missing or down, link
/// partitioned, connection refused, frame oversized, …).
///
/// Deliberately just a message: the Global layer maps every transport
/// failure to `SqlError::Connection` and the simnet impl preserves
/// [`gridrm_simnet::NetError`]'s display text exactly, so the refactor
/// from direct `Network` calls changes no observable byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError(pub String);

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TransportError {}

/// How wire frames move between gateways (and from serving-layer
/// clients to a gateway).
///
/// Semantics every implementation must honour:
///
/// * **serve** — `service` answers all frames addressed to `addr` until
///   [`Transport::unserve`] (re-serving an address replaces the previous
///   service);
/// * **send_frame** — synchronous request/response: deliver `frame` to
///   `dst`, return the raw response payload plus the round-trip latency
///   in microseconds (virtual for simnet, wall-clock for TCP);
/// * frames are opaque: a transport never inspects, re-encodes or
///   re-frames the payload bytes, so [`WireFrame`] stays the single
///   choke point where wire costs are priced.
pub trait Transport: Send + Sync {
    /// Serve `service` at `addr`, replacing any previous registration.
    fn serve(&self, addr: &str, service: Arc<dyn FrameService>);

    /// Stop serving `addr`. Returns whether anything was registered.
    fn unserve(&self, addr: &str) -> bool;

    /// Send one frame from `src` to `dst` and wait for the response.
    /// Returns the response payload and the sampled round-trip latency
    /// in microseconds.
    fn send_frame(
        &self,
        src: &str,
        dst: &str,
        frame: &WireFrame,
    ) -> Result<(Vec<u8>, u64), TransportError>;

    /// Short label for diagnostics (`"simnet"`, `"tcp"`, …).
    fn kind(&self) -> &'static str {
        "unknown"
    }
}

/// Adapter: a [`FrameService`] as a simnet [`gridrm_simnet::Service`].
struct SimService {
    inner: Arc<dyn FrameService>,
}

impl gridrm_simnet::Service for SimService {
    fn handle(&self, from: &str, request: &[u8]) -> Vec<u8> {
        self.inner.handle_frame(from, request)
    }
}

/// The deterministic test transport: the in-memory simnet carries wire
/// frames exactly as it always has — same RPC path, same latency model,
/// same RNG draws — so transcripts are byte-identical to the
/// pre-`Transport` direct-`Network` code.
impl Transport for gridrm_simnet::Network {
    fn serve(&self, addr: &str, service: Arc<dyn FrameService>) {
        self.register(addr, Arc::new(SimService { inner: service }));
    }

    fn unserve(&self, addr: &str) -> bool {
        self.unregister(addr)
    }

    fn send_frame(
        &self,
        src: &str,
        dst: &str,
        frame: &WireFrame,
    ) -> Result<(Vec<u8>, u64), TransportError> {
        self.request_timed(src, dst, frame.bytes())
            .map_err(|e| TransportError(e.to_string()))
    }

    fn kind(&self) -> &'static str {
        "simnet"
    }
}

/// One recorded exchange: `(src, dst, request bytes, response or error)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportExchange {
    /// Sending address.
    pub src: String,
    /// Receiving address.
    pub dst: String,
    /// The request frame payload.
    pub request: Vec<u8>,
    /// The response payload, or the transport error's display text.
    pub response: Result<Vec<u8>, String>,
}

/// A pass-through [`Transport`] wrapper that records every outbound
/// exchange byte-for-byte. Test instrumentation: the determinism suite
/// runs the same grid scenario twice and asserts the two transcripts
/// are identical, which pins the trait plumbing to the wire bytes.
pub struct RecordingTransport {
    inner: Arc<dyn Transport>,
    log: parking_lot::Mutex<Vec<TransportExchange>>,
}

impl RecordingTransport {
    /// Wrap `inner`, recording every [`Transport::send_frame`].
    pub fn new(inner: Arc<dyn Transport>) -> Arc<RecordingTransport> {
        Arc::new(RecordingTransport {
            inner,
            log: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// The exchanges recorded so far, in send order.
    pub fn transcript(&self) -> Vec<TransportExchange> {
        self.log.lock().clone()
    }

    /// Render the transcript as one comparable string (lossless for
    /// JSON frames: raw bytes are shown lossy-UTF-8 with lengths).
    pub fn transcript_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, x) in self.log.lock().iter().enumerate() {
            let _ = write!(
                out,
                "[{i}] {} -> {} ({}B) {}\n    ",
                x.src,
                x.dst,
                x.request.len(),
                String::from_utf8_lossy(&x.request)
            );
            match &x.response {
                Ok(bytes) => {
                    let _ = writeln!(
                        out,
                        "<- ({}B) {}",
                        bytes.len(),
                        String::from_utf8_lossy(bytes)
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "<- ERR {e}");
                }
            }
        }
        out
    }
}

impl Transport for RecordingTransport {
    fn serve(&self, addr: &str, service: Arc<dyn FrameService>) {
        self.inner.serve(addr, service);
    }

    fn unserve(&self, addr: &str) -> bool {
        self.inner.unserve(addr)
    }

    fn send_frame(
        &self,
        src: &str,
        dst: &str,
        frame: &WireFrame,
    ) -> Result<(Vec<u8>, u64), TransportError> {
        let result = self.inner.send_frame(src, dst, frame);
        self.log.lock().push(TransportExchange {
            src: src.to_owned(),
            dst: dst.to_owned(),
            request: frame.bytes().to_vec(),
            response: match &result {
                Ok((bytes, _)) => Ok(bytes.clone()),
                Err(e) => Err(e.to_string()),
            },
        });
        result
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{GlobalRequest, WireFrame};
    use gridrm_simnet::{Network, SimClock};

    fn echo_service() -> Arc<dyn FrameService> {
        Arc::new(|_from: &str, frame: &[u8]| {
            let mut v = b"echo:".to_vec();
            v.extend_from_slice(frame);
            v
        })
    }

    #[test]
    fn simnet_transport_round_trip() {
        let net = Network::new(SimClock::new(), 7);
        let t: Arc<dyn Transport> = net.clone();
        t.serve("peer:gma", echo_service());
        let frame = WireFrame::encode(&GlobalRequest::Ping);
        let (resp, _rtt) = t.send_frame("me:gma", "peer:gma", &frame).unwrap();
        assert!(resp.starts_with(b"echo:"));
        assert_eq!(t.kind(), "simnet");
        assert!(t.unserve("peer:gma"));
        assert!(!t.unserve("peer:gma"));
        let err = t.send_frame("me:gma", "peer:gma", &frame).unwrap_err();
        assert_eq!(err.to_string(), "no endpoint at 'peer:gma'");
    }

    #[test]
    fn simnet_transport_preserves_net_error_text() {
        // The refactor contract: trait-mapped errors display exactly as
        // the NetError the engine used to format directly.
        let net = Network::new(SimClock::new(), 7);
        let t: Arc<dyn Transport> = net.clone();
        t.serve("peer:gma", echo_service());
        net.set_blocked("me:gma", "peer:gma", true);
        let err = t
            .send_frame(
                "me:gma",
                "peer:gma",
                &WireFrame::encode(&GlobalRequest::Ping),
            )
            .unwrap_err();
        assert_eq!(err.to_string(), "link me:gma -> peer:gma is partitioned");
    }

    #[test]
    fn simnet_transport_charges_virtual_latency() {
        let net = Network::new(SimClock::new(), 7);
        net.set_latency("me:gma", "peer:gma", gridrm_simnet::Latency::ms(10, 0));
        let t: Arc<dyn Transport> = net.clone();
        t.serve("peer:gma", echo_service());
        let (_, rtt_us) = t
            .send_frame(
                "me:gma",
                "peer:gma",
                &WireFrame::encode(&GlobalRequest::Ping),
            )
            .unwrap();
        assert_eq!(rtt_us, 20_000);
    }

    #[test]
    fn recording_transport_captures_bytes_both_ways() {
        let net = Network::new(SimClock::new(), 7);
        let rec = RecordingTransport::new(net.clone());
        rec.serve("peer:gma", echo_service());
        let frame = WireFrame::encode(&GlobalRequest::Ping);
        rec.send_frame("me:gma", "peer:gma", &frame).unwrap();
        net.set_down("peer:gma", true);
        assert!(rec.send_frame("me:gma", "peer:gma", &frame).is_err());
        let log = rec.transcript();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].request, frame.bytes());
        assert!(log[0].response.as_ref().unwrap().starts_with(b"echo:"));
        assert_eq!(
            log[1].response.as_ref().unwrap_err(),
            "endpoint 'peer:gma' is down"
        );
        let text = rec.transcript_text();
        assert!(text.contains("me:gma -> peer:gma"));
        assert!(text.contains("ERR endpoint"));
    }
}
