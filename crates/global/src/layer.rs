//! The Global layer attachment: per-gateway GMA endpoint, remote query
//! routing, and inter-gateway event propagation.

use crate::gma::{GmaDirectory, ProducerEntry};
use crate::protocol::{GlobalRequest, GlobalResponse, WireDelta, WireFrame, WireRows};
use crate::transport::{FrameService, Transport};
use gridrm_core::acil::{ClientRequest, ClientResponse, QueryExecutor, QueryMode};
use gridrm_core::events::{EventTransmitter, GridRMEvent, Severity};
use gridrm_core::health::HealthState;
use gridrm_core::stream::SubscribeSpec;
use gridrm_core::Gateway;
use gridrm_dbc::DbcResult;
use gridrm_sqlparse::ast::Statement as SqlStatement;
use gridrm_telemetry::{
    CostVector, Counter, IntrusionCause, Labels, Registry, SpanBuilder, DEFAULT_LATENCY_BUCKETS_MS,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

/// Global-layer counters (experiments E1/E12). Shared telemetry cells:
/// also exposable in a gateway-wide [`Registry`] via
/// [`GlobalStats::register_into`].
#[derive(Debug, Default)]
pub struct GlobalStats {
    /// Remote queries this gateway sent out.
    pub remote_queries_out: Counter,
    /// Remote queries this gateway answered for peers.
    pub remote_queries_in: Counter,
    /// Events forwarded to peers.
    pub events_out: Counter,
    /// Events accepted from peers.
    pub events_in: Counter,
    /// Fan-out segments that answered successfully.
    pub segments_ok: Counter,
    /// Fan-out segments that failed (or were skipped by fail-fast).
    pub segments_error: Counter,
    /// Fan-out segments abandoned because the deadline budget ran out.
    pub segments_deadline_exceeded: Counter,
}

/// Named point-in-time copy of [`GlobalStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalSnapshot {
    /// Remote queries this gateway sent out.
    pub remote_queries_out: u64,
    /// Remote queries this gateway answered for peers.
    pub remote_queries_in: u64,
    /// Events forwarded to peers.
    pub events_out: u64,
    /// Events accepted from peers.
    pub events_in: u64,
    /// Fan-out segments that answered successfully.
    pub segments_ok: u64,
    /// Fan-out segments that failed (or were skipped by fail-fast).
    pub segments_error: u64,
    /// Fan-out segments abandoned because the deadline budget ran out.
    pub segments_deadline_exceeded: u64,
}

impl GlobalStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> GlobalSnapshot {
        GlobalSnapshot {
            remote_queries_out: self.remote_queries_out.get(),
            remote_queries_in: self.remote_queries_in.get(),
            events_out: self.events_out.get(),
            events_in: self.events_in.get(),
            segments_ok: self.segments_ok.get(),
            segments_error: self.segments_error.get(),
            segments_deadline_exceeded: self.segments_deadline_exceeded.get(),
        }
    }

    /// Expose these counters in a metrics registry (shared cells: the
    /// struct and the registry observe the same values).
    pub fn register_into(&self, registry: &Registry) {
        let series = [
            ("query_out", &self.remote_queries_out),
            ("query_in", &self.remote_queries_in),
            ("event_out", &self.events_out),
            ("event_in", &self.events_in),
        ];
        for (kind, counter) in series {
            registry.expose_counter(
                "gridrm_global_messages_total",
                "Inter-gateway Global-layer messages by kind and direction",
                Labels::from_pairs(&[("kind", kind)]),
                counter,
            );
        }
        let segments = [
            ("ok", &self.segments_ok),
            ("error", &self.segments_error),
            ("deadline_exceeded", &self.segments_deadline_exceeded),
        ];
        for (outcome, counter) in segments {
            registry.expose_counter(
                "gridrm_global_segments_total",
                "Global-layer fan-out segments by outcome",
                Labels::from_pairs(&[("outcome", outcome)]),
                counter,
            );
        }
    }
}

/// Site-level health rollup: one gateway's per-source health states
/// aggregated into per-state counts plus a worst-state-wins overall
/// verdict, as presented to the rest of the Grid (Fig 1's site view).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteHealthRollup {
    /// The Grid site.
    pub site: String,
    /// The reporting gateway.
    pub gateway: String,
    /// Worst-state-wins verdict: any `Down` source makes the site
    /// `Down`, else any `Degraded` makes it `Degraded`, else any `Up`
    /// makes it `Up`; a site with no (or only untested) sources is
    /// `Unknown`.
    pub overall: HealthState,
    /// Sources currently `Up`.
    pub up: usize,
    /// Sources currently `Degraded`.
    pub degraded: usize,
    /// Sources currently `Down`.
    pub down: usize,
    /// Sources never yet observed.
    pub unknown: usize,
}

impl SiteHealthRollup {
    /// Total tracked sources.
    pub fn sources(&self) -> usize {
        self.up + self.degraded + self.down + self.unknown
    }

    /// Build a rollup from per-state counts (worst state wins).
    pub fn from_counts(
        site: &str,
        gateway: &str,
        counts: [(HealthState, usize); 4],
    ) -> SiteHealthRollup {
        let count = |want: HealthState| {
            counts
                .iter()
                .find(|(s, _)| *s == want)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };
        let (up, degraded, down, unknown) = (
            count(HealthState::Up),
            count(HealthState::Degraded),
            count(HealthState::Down),
            count(HealthState::Unknown),
        );
        let overall = if down > 0 {
            HealthState::Down
        } else if degraded > 0 {
            HealthState::Degraded
        } else if up > 0 {
            HealthState::Up
        } else {
            HealthState::Unknown
        };
        SiteHealthRollup {
            site: site.to_owned(),
            gateway: gateway.to_owned(),
            overall,
            up,
            degraded,
            down,
            unknown,
        }
    }
}

/// Site-level SLO rollup: one gateway's declared SLOs aggregated into
/// counts plus the worst observed burn, presented to the rest of the
/// Grid next to [`SiteHealthRollup`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSloRollup {
    /// The Grid site.
    pub site: String,
    /// The reporting gateway.
    pub gateway: String,
    /// Declared SLOs.
    pub slos: usize,
    /// SLOs whose burn-rate alert is currently firing.
    pub firing: usize,
    /// Names of the firing SLOs, sorted.
    pub firing_names: Vec<String>,
    /// Highest slow-window burn rate across all SLOs (0 when none).
    pub worst_burn_slow: f64,
    /// Lowest remaining error budget across all SLOs (1 when none).
    pub min_error_budget: f64,
}

impl SiteSloRollup {
    /// True when every declared SLO is within budget.
    pub fn healthy(&self) -> bool {
        self.firing == 0
    }
}

/// Site-level intrusion rollup: the monitoring traffic this gateway has
/// accounted against one Grid site, aggregated across causes and
/// presented next to [`SiteHealthRollup`] / [`SiteSloRollup`]. A rollup
/// for the local site is traffic the site *endured*; one for a remote
/// site is traffic this gateway *imposed* on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteIntrusionRollup {
    /// The Grid site the traffic was accounted against.
    pub site: String,
    /// The reporting gateway (whose ledger this view comes from).
    pub gateway: String,
    /// Messages, both directions, all causes.
    pub msgs: u64,
    /// Bytes, both directions, all causes.
    pub bytes: u64,
    /// Observation window in virtual ms (floored at one second).
    pub window_ms: u64,
    /// Messages per virtual second over the window.
    pub msgs_per_vsec: f64,
    /// Bytes per virtual second over the window.
    pub bytes_per_vsec: f64,
    /// Causes observed for this site, sorted.
    pub causes: Vec<String>,
}

/// A gateway's Global-layer attachment.
pub struct GlobalLayer {
    pub(crate) gateway: Arc<Gateway>,
    pub(crate) directory: Arc<GmaDirectory>,
    pub(crate) transport: Arc<dyn Transport>,
    pub(crate) gma_address: String,
    pub(crate) stats: GlobalStats,
    /// Fan-out dispatch mode: `true` issues segments concurrently in
    /// virtual time, `false` replays the historical one-at-a-time walk.
    parallel: AtomicBool,
    this: Weak<GlobalLayer>,
}

impl GlobalLayer {
    /// Attach the Global layer to `gateway` over the gateway's simnet —
    /// the deterministic default every test and experiment uses.
    /// Registers the gateway as a GMA producer for its site's hosts and
    /// serves the `{address}:gma` endpoint.
    pub fn attach(gateway: Arc<Gateway>, directory: Arc<GmaDirectory>) -> Arc<GlobalLayer> {
        let transport: Arc<dyn Transport> = gateway.network().clone();
        GlobalLayer::attach_via(gateway, directory, transport)
    }

    /// Attach the Global layer to `gateway` over an explicit
    /// [`Transport`] — the simnet for deterministic tests, `gridrm-serve`'s
    /// TCP transport in production, or a recording wrapper for transcript
    /// pinning. Everything else is identical to [`GlobalLayer::attach`].
    pub fn attach_via(
        gateway: Arc<Gateway>,
        directory: Arc<GmaDirectory>,
        transport: Arc<dyn Transport>,
    ) -> Arc<GlobalLayer> {
        let config = gateway.config().clone();
        let gma_address = format!("{}:gma", config.address);
        directory.register(ProducerEntry {
            gateway: config.name.clone(),
            site: config.site.clone(),
            gma_address: gma_address.clone(),
            host_suffixes: vec![format!(".{}", config.site)],
        });
        let layer = Arc::new_cyclic(|this: &Weak<GlobalLayer>| GlobalLayer {
            gateway,
            directory,
            transport: transport.clone(),
            gma_address: gma_address.clone(),
            stats: GlobalStats::default(),
            parallel: AtomicBool::new(config.fanout_parallel),
            this: this.clone(),
        });
        transport.serve(&gma_address, layer.wire_service());
        // Global-layer traffic shows up in the gateway's own registry.
        layer
            .stats
            .register_into(layer.gateway.telemetry().registry());
        layer
    }

    /// The transport frames travel over (simnet in tests, TCP in
    /// production).
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// This layer's wire endpoint as a shareable [`FrameService`] — the
    /// same handler [`GlobalLayer::attach_via`] registers on the
    /// transport. A second transport (e.g. `gridrm-serve`'s TCP server
    /// fronting a simnet-attached gateway) dispatches into the identical
    /// decode → execute → encode → cost-charge path; the service holds
    /// the layer weakly, so a shut-down gateway answers with a wire
    /// error instead of keeping the world alive.
    pub fn wire_service(&self) -> Arc<dyn FrameService> {
        let weak = self.this.clone();
        Arc::new(move |from: &str, req: &[u8]| match weak.upgrade() {
            Some(layer) => layer.handle_wire(from, req),
            None => WireFrame::encode(&GlobalResponse::Error {
                message: "gateway shut down".into(),
            })
            .into_bytes(),
        })
    }

    /// The wrapped gateway.
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }

    /// The directory in use.
    pub fn directory(&self) -> &Arc<GmaDirectory> {
        &self.directory
    }

    /// This layer's GMA endpoint address.
    pub fn gma_address(&self) -> &str {
        &self.gma_address
    }

    /// Counters.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Whether fan-out currently dispatches segments concurrently in
    /// virtual time (`true`, the default) or one gateway at a time.
    pub fn parallel_fanout(&self) -> bool {
        self.parallel.load(Ordering::Relaxed)
    }

    /// Switch between concurrent and sequential segment dispatch at
    /// runtime (the bench A/Bs the two modes on the same grid).
    pub fn set_parallel_fanout(&self, parallel: bool) {
        self.parallel.store(parallel, Ordering::Relaxed);
    }

    fn handle_wire(&self, _from: &str, req: &[u8]) -> Vec<u8> {
        let (request, inbound_bytes) = match WireFrame::decode::<GlobalRequest>(req) {
            Ok(r) => r,
            Err(e) => {
                return WireFrame::encode(&GlobalResponse::Error {
                    message: e.to_string(),
                })
                .into_bytes()
            }
        };
        // Classify what this wire service costs the local site: traffic
        // we *endure*, split by why the peer sent it.
        let cause = match &request {
            GlobalRequest::Query { .. } => IntrusionCause::Query,
            GlobalRequest::Ping => IntrusionCause::Probe,
            GlobalRequest::Subscribe { .. }
            | GlobalRequest::PollDeltas { .. }
            | GlobalRequest::Unsubscribe { .. } => IntrusionCause::Subscription,
            GlobalRequest::Event { .. } => IntrusionCause::Gossip,
        };
        let response = match request {
            GlobalRequest::Ping => GlobalResponse::Pong {
                gateway: self.gateway.config().name.clone(),
            },
            GlobalRequest::Event {
                from_gateway,
                event,
            } => {
                self.stats.events_in.inc();
                // Re-source so the forwarding transmitter never loops it
                // back out.
                let mut event = event;
                event.source = format!("gma:{from_gateway}:{}", event.source);
                self.gateway.events().ingest(event);
                GlobalResponse::EventAccepted
            }
            GlobalRequest::Query {
                identity,
                sources,
                sql,
                max_cache_age_ms,
                trace,
                deadline_ms,
                ..
            } => {
                self.stats.remote_queries_in.inc();
                let mode = match max_cache_age_ms {
                    Some(age) => QueryMode::Cached {
                        max_age_ms: Some(age),
                    },
                    None => QueryMode::RealTime,
                };
                let mut builder = ClientRequest::builder(&sql)
                    .sources(&sources)
                    .identity(identity.to_identity())
                    .mode(mode);
                if let Some(deadline) = deadline_ms {
                    builder = builder.deadline_ms(deadline);
                }
                if let Some(ctx) = trace.clone() {
                    builder = builder.trace(ctx);
                }
                let request = builder.build();
                let started_ms = self.gateway.telemetry().clock().now_millis();
                match self.gateway.query(&request) {
                    Ok(resp) => {
                        // Ship the spans this gateway recorded for the
                        // caller's trace back with the rows, so the
                        // caller can reassemble the cross-site tree.
                        let spans = match &trace {
                            Some(ctx) => self.gateway.telemetry().traces().for_trace(&ctx.trace_id),
                            None => Vec::new(),
                        };
                        let elapsed_ms = self
                            .gateway
                            .telemetry()
                            .clock()
                            .now_millis()
                            .saturating_sub(started_ms);
                        GlobalResponse::Rows {
                            rows: WireRows::from_rowset(&resp.rows),
                            warnings: resp.warnings,
                            served_from_cache: resp.served_from_cache,
                            spans,
                            elapsed_ms,
                            outcomes: resp.outcomes,
                        }
                    }
                    Err(e) => GlobalResponse::Error {
                        message: e.to_string(),
                    },
                }
            }
            GlobalRequest::Subscribe {
                identity,
                sources,
                sql,
                every_ms,
                buffer,
                backpressure,
                ..
            } => {
                self.stats.remote_queries_in.inc();
                let spec = SubscribeSpec {
                    request: ClientRequest::builder(&sql)
                        .sources(&sources)
                        .identity(identity.to_identity())
                        .build(),
                    every_ms,
                    buffer,
                    backpressure,
                };
                match self.gateway.subscribe(&spec) {
                    Ok(id) => GlobalResponse::Subscribed { subscription: id },
                    Err(e) => GlobalResponse::Error {
                        message: e.to_string(),
                    },
                }
            }
            GlobalRequest::PollDeltas { subscription, max } => {
                match self.gateway.poll_deltas(subscription, max) {
                    Ok(deltas) => GlobalResponse::Deltas {
                        deltas: deltas.iter().map(WireDelta::from_delta).collect(),
                    },
                    Err(e) => GlobalResponse::Error {
                        message: e.to_string(),
                    },
                }
            }
            GlobalRequest::Unsubscribe { subscription } => GlobalResponse::Unsubscribed {
                existed: self.gateway.cancel_subscription(subscription),
            },
        };
        let frame = WireFrame::encode(&response);
        let served = CostVector {
            msgs_in: 1,
            msgs_out: 1,
            bytes_in: inbound_bytes,
            bytes_out: frame.len(),
            ..CostVector::default()
        };
        let costs = self.gateway.telemetry().costs();
        costs.count(&served);
        costs.intrude(&self.gateway.config().site, cause, &served);
        frame.into_bytes()
    }

    /// Query through the Global layer: local sources are handled by the
    /// local gateway, remote ones are routed to their owning gateways
    /// (Fig 1), and everything is consolidated into one response.
    ///
    /// The whole fan-out runs under one span: the local segment and every
    /// remote segment become children sharing a single `trace_id`, and
    /// `EXPLAIN [ANALYZE] <query>` renders that tree as a result set
    /// instead of the query's rows.
    pub fn query(&self, request: &ClientRequest) -> DbcResult<ClientResponse> {
        if let Ok(SqlStatement::Explain { analyze, inner }) = gridrm_sqlparse::parse(&request.sql) {
            return self.query_explain(request, analyze, &inner.to_string());
        }
        self.fan_out(request)
    }

    /// Open the Global-layer span for `request`: a child when the caller
    /// already carries a trace context, a fresh root otherwise.
    pub(crate) fn open_span(&self, request: &ClientRequest) -> SpanBuilder {
        let telemetry = self.gateway.telemetry();
        match &request.trace {
            Some(ctx) => telemetry.span_in(ctx, &request.sql),
            None => telemetry.span(&request.sql),
        }
    }

    /// Observe one fan-out segment's end-to-end latency in the per-site
    /// histogram (virtual milliseconds, `site` label).
    pub(crate) fn observe_site_latency(&self, site: &str, elapsed_ms: u64) {
        self.gateway
            .telemetry()
            .registry()
            .histogram(
                "gridrm_site_latency_ms",
                "End-to-end per-site latency of Global-layer query segments",
                Labels::from_pairs(&[("site", site)]),
                DEFAULT_LATENCY_BUCKETS_MS,
            )
            .observe(elapsed_ms as f64);
    }

    /// `EXPLAIN [ANALYZE]` at the Global layer: run the inner query
    /// through the normal fan-out under a fresh explain span, then
    /// answer with the collected span tree instead of the query's rows.
    fn query_explain(
        &self,
        request: &ClientRequest,
        analyze: bool,
        inner_sql: &str,
    ) -> DbcResult<ClientResponse> {
        let telemetry = self.gateway.telemetry();
        let mut span = self.open_span(request);
        span.stage_with("explain", if analyze { "analyze" } else { "plan" });
        let trace_id = span.trace_id().to_owned();
        let inner_request = ClientRequest {
            sql: inner_sql.to_owned(),
            trace: Some(span.context()),
            ..request.clone()
        };
        let mut warnings = Vec::new();
        let mut sources_ok = 0;
        let mut outcomes = Vec::new();
        match self.fan_out(&inner_request) {
            Ok(resp) => {
                warnings = resp.warnings;
                sources_ok = resp.sources_ok;
                outcomes = resp.outcomes;
                span.finish("ok");
            }
            Err(e) => {
                // The failed attempt still produced a span tree worth
                // explaining; report the failure as a warning.
                warnings.push(format!("explain: inner query failed: {e}"));
                span.finish("error");
            }
        }
        let spans = telemetry.traces().for_trace(&trace_id);
        let rows = gridrm_core::explain::explain_rowset(&spans, analyze)?;
        Ok(ClientResponse {
            rows,
            warnings,
            served_from_cache: 0,
            sources_ok,
            outcomes,
        })
    }

    /// Forward one event to every *other* registered gateway. Returns how
    /// many peers accepted it.
    pub fn forward_event(&self, event: &GridRMEvent) -> usize {
        let my_name = self.gateway.config().name.clone();
        let mut accepted = 0;
        for peer in self.directory.producers() {
            if peer.gateway == my_name {
                continue;
            }
            let wire = GlobalRequest::Event {
                from_gateway: my_name.clone(),
                event: event.clone(),
            };
            let frame = WireFrame::encode(&wire);
            let mut cost = CostVector {
                msgs_out: 1,
                bytes_out: frame.len(),
                ..CostVector::default()
            };
            if let Ok((bytes, _)) =
                self.transport
                    .send_frame(&self.gma_address, &peer.gma_address, &frame)
            {
                cost.msgs_in = 1;
                cost.bytes_in = bytes.len() as u64;
                if matches!(
                    WireFrame::decode::<GlobalResponse>(&bytes).map(|(r, _)| r),
                    Ok(GlobalResponse::EventAccepted)
                ) {
                    self.stats.events_out.inc();
                    accepted += 1;
                }
            }
            let costs = self.gateway.telemetry().costs();
            costs.count(&cost);
            costs.intrude(&peer.site, IntrusionCause::Gossip, &cost);
        }
        accepted
    }

    /// Register a transmitter on the gateway's Event Manager that forwards
    /// local events at or above `min_severity` to all peer gateways —
    /// "this behaviour allows GridRM to propagate events between Gateways"
    /// (§3.1.5). Events that *arrived* via the Global layer are never
    /// re-forwarded (loop prevention).
    pub fn enable_event_propagation(self: &Arc<Self>, min_severity: Severity) {
        struct Forwarder {
            layer: Weak<GlobalLayer>,
            min_severity: Severity,
        }
        impl EventTransmitter for Forwarder {
            fn name(&self) -> &str {
                "gma-event-forwarder"
            }
            fn transmit(&self, event: &GridRMEvent) -> bool {
                if event.severity < self.min_severity || event.source.starts_with("gma:") {
                    return false;
                }
                match self.layer.upgrade() {
                    Some(layer) => layer.forward_event(event) > 0,
                    None => false,
                }
            }
        }
        self.gateway
            .events()
            .register_transmitter(Arc::new(Forwarder {
                layer: Arc::downgrade(self),
                min_severity,
            }));
    }

    /// Roll this gateway's per-source health up to the site level
    /// (worst state wins) for Grid-wide presentation.
    pub fn site_health(&self) -> SiteHealthRollup {
        let config = self.gateway.config();
        SiteHealthRollup::from_counts(
            &config.site,
            &config.name,
            self.gateway.health().state_counts(),
        )
    }

    /// Roll this gateway's SLO statuses up to the site level for
    /// Grid-wide presentation, next to [`GlobalLayer::site_health`].
    pub fn site_slo(&self) -> SiteSloRollup {
        let config = self.gateway.config();
        let statuses = self.gateway.telemetry().slo().snapshot();
        let mut firing_names: Vec<String> = statuses
            .iter()
            .filter(|s| s.firing)
            .map(|s| s.name.clone())
            .collect();
        firing_names.sort();
        let worst_burn_slow = statuses.iter().map(|s| s.burn_slow).fold(0.0, f64::max);
        let min_error_budget = statuses
            .iter()
            .map(|s| s.error_budget_remaining)
            .fold(1.0, f64::min);
        SiteSloRollup {
            site: config.site.clone(),
            gateway: config.name.clone(),
            slos: statuses.len(),
            firing: firing_names.len(),
            firing_names,
            worst_burn_slow,
            min_error_budget,
        }
    }

    /// Roll this gateway's intrusion ledger up to per-site totals for
    /// Grid-wide presentation, next to [`GlobalLayer::site_slo`]. Pure
    /// local-ledger arithmetic — no extra wire traffic (the profiler
    /// must not itself intrude).
    pub fn site_intrusion(&self) -> Vec<SiteIntrusionRollup> {
        let config = self.gateway.config();
        struct Agg {
            msgs: u64,
            bytes: u64,
            first_ms: u64,
            last_ms: u64,
            causes: Vec<String>,
        }
        let mut by_site: BTreeMap<String, Agg> = BTreeMap::new();
        for row in self.gateway.telemetry().costs().intrusion_snapshot() {
            let agg = by_site.entry(row.site).or_insert(Agg {
                msgs: 0,
                bytes: 0,
                first_ms: row.bucket.first_ms,
                last_ms: row.bucket.last_ms,
                causes: Vec::new(),
            });
            agg.msgs = agg.msgs.saturating_add(row.bucket.msgs);
            agg.bytes = agg.bytes.saturating_add(row.bucket.bytes);
            agg.first_ms = agg.first_ms.min(row.bucket.first_ms);
            agg.last_ms = agg.last_ms.max(row.bucket.last_ms);
            agg.causes.push(row.cause);
        }
        by_site
            .into_iter()
            .map(|(site, mut agg)| {
                agg.causes.sort();
                let window_ms = agg.last_ms.saturating_sub(agg.first_ms).max(1_000);
                SiteIntrusionRollup {
                    site,
                    gateway: config.name.clone(),
                    msgs: agg.msgs,
                    bytes: agg.bytes,
                    window_ms,
                    msgs_per_vsec: agg.msgs as f64 * 1_000.0 / window_ms as f64,
                    bytes_per_vsec: agg.bytes as f64 * 1_000.0 / window_ms as f64,
                    causes: agg.causes,
                }
            })
            .collect()
    }

    /// Liveness check of a peer gateway.
    pub fn ping(&self, gateway_name: &str) -> bool {
        let Some(entry) = self.directory.by_name(gateway_name) else {
            return false;
        };
        let frame = WireFrame::encode(&GlobalRequest::Ping);
        let mut cost = CostVector {
            msgs_out: 1,
            bytes_out: frame.len(),
            ..CostVector::default()
        };
        let answer = self
            .transport
            .send_frame(&self.gma_address, &entry.gma_address, &frame)
            .ok()
            .map(|(bytes, _)| bytes);
        if let Some(bytes) = &answer {
            cost.msgs_in = 1;
            cost.bytes_in = bytes.len() as u64;
        }
        let costs = self.gateway.telemetry().costs();
        costs.count(&cost);
        costs.intrude(&entry.site, IntrusionCause::Probe, &cost);
        matches!(
            answer.and_then(|b| WireFrame::decode::<GlobalResponse>(&b).ok()),
            Some((GlobalResponse::Pong { .. }, _))
        )
    }
}

impl QueryExecutor for GlobalLayer {
    fn execute(&self, request: &ClientRequest) -> DbcResult<ClientResponse> {
        self.query(request)
    }

    fn scope(&self) -> String {
        format!("grid:{}", self.gateway.config().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(
        up: usize,
        degraded: usize,
        down: usize,
        unknown: usize,
    ) -> [(HealthState, usize); 4] {
        [
            (HealthState::Up, up),
            (HealthState::Degraded, degraded),
            (HealthState::Down, down),
            (HealthState::Unknown, unknown),
        ]
    }

    #[test]
    fn slo_rollup_healthy_tracks_firing_count() {
        let mut r = SiteSloRollup {
            site: "s".into(),
            gateway: "gw".into(),
            slos: 2,
            firing: 0,
            firing_names: Vec::new(),
            worst_burn_slow: 0.4,
            min_error_budget: 0.8,
        };
        assert!(r.healthy());
        r.firing = 1;
        r.firing_names.push("latency".into());
        assert!(!r.healthy());
    }

    #[test]
    fn rollup_worst_state_wins() {
        let r = SiteHealthRollup::from_counts("s", "gw", counts(3, 1, 1, 0));
        assert_eq!(r.overall, HealthState::Down);
        assert_eq!(r.sources(), 5);
        let r = SiteHealthRollup::from_counts("s", "gw", counts(3, 1, 0, 0));
        assert_eq!(r.overall, HealthState::Degraded);
        let r = SiteHealthRollup::from_counts("s", "gw", counts(3, 0, 0, 2));
        assert_eq!(r.overall, HealthState::Up);
        let r = SiteHealthRollup::from_counts("s", "gw", counts(0, 0, 0, 0));
        assert_eq!(r.overall, HealthState::Unknown);
    }
}
