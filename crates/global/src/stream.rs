//! Grid-level continuous queries: one subscription that watches every
//! site.
//!
//! A [`GridSubscription`] partitions a [`SubscribeSpec`]'s sources by
//! owning gateway exactly like the query fan-out does: the local share
//! becomes an ordinary local subscription, and each remote share is
//! registered on its owning gateway over the wire (`Subscribe`). Polling
//! drains the local buffer plus each remote buffer (`PollDeltas`) and
//! merges the batches deterministically — by emit time, then origin
//! label, then sequence number — so a two-site grid produces the same
//! delta order on every run under virtual time.
//!
//! The model is pull-based on purpose: remote gateways evaluate standing
//! queries on *their* pump cadence and buffer emissions under *their*
//! backpressure policy, so a slow or disconnected consumer costs the
//! producer a bounded buffer, never an unbounded queue.

use crate::gma::ProducerEntry;
use crate::layer::GlobalLayer;
use crate::protocol::{GlobalRequest, GlobalResponse, WireFrame, WireIdentity};
use gridrm_core::acil::ClientRequest;
use gridrm_core::security::Identity;
use gridrm_core::stream::{StreamDelta, SubscribeSpec, SubscriptionId};
use gridrm_dbc::{DbcResult, JdbcUrl, SqlError};
use gridrm_telemetry::{CostVector, IntrusionCause};
use std::collections::BTreeMap;

/// One remote share of a grid subscription.
#[derive(Debug, Clone)]
pub struct RemoteSubscription {
    /// The owning gateway's name.
    pub gateway: String,
    /// The owning gateway's GMA endpoint.
    pub gma_address: String,
    /// Subscription id *on that gateway*.
    pub subscription: u64,
    /// The owning gateway's Grid site, so every poll charges its
    /// intrusion against the right site.
    pub site: String,
}

/// A standing query registered across the grid: the local share (when
/// any sources are owned here) plus one wire subscription per remote
/// gateway. Obtain via [`GlobalLayer::subscribe`], drain via
/// [`GlobalLayer::poll_deltas`], release via [`GlobalLayer::unsubscribe`].
#[derive(Debug, Clone)]
pub struct GridSubscription {
    /// Local subscription id, when the query has a local share.
    pub local: Option<SubscriptionId>,
    /// Remote shares, in deterministic gateway-name order.
    pub remotes: Vec<RemoteSubscription>,
}

impl GridSubscription {
    /// How many gateways (local + remote) hold a share.
    pub fn shares(&self) -> usize {
        usize::from(self.local.is_some()) + self.remotes.len()
    }
}

impl GlobalLayer {
    /// Register `spec` as a grid-wide continuous query: sources owned by
    /// this gateway subscribe locally, each remote gateway's share is
    /// registered there over the wire. Partial failures unwind the
    /// shares already registered before the error is returned.
    pub fn subscribe(&self, spec: &SubscribeSpec) -> DbcResult<GridSubscription> {
        let my_name = self.gateway.config().name.clone();

        // ---- plan: partition sources by owning gateway (same idiom as
        // the query fan-out) ----
        let mut local: Vec<String> = Vec::new();
        let mut remote: BTreeMap<String, (ProducerEntry, Vec<String>)> = BTreeMap::new();
        for source in &spec.request.sources {
            let owner = JdbcUrl::parse(source)
                .ok()
                .and_then(|u| self.directory.lookup(&u));
            match owner {
                Some(entry) if entry.gateway != my_name => {
                    remote
                        .entry(entry.gateway.clone())
                        .or_insert_with(|| (entry, Vec::new()))
                        .1
                        .push(source.clone());
                }
                _ => local.push(source.clone()),
            }
        }

        let identity = spec
            .request
            .identity
            .clone()
            .unwrap_or_else(Identity::anonymous);
        let mut grid = GridSubscription {
            local: None,
            remotes: Vec::new(),
        };
        if !local.is_empty() {
            let local_spec = SubscribeSpec {
                request: ClientRequest {
                    sources: local,
                    ..spec.request.clone()
                },
                every_ms: spec.every_ms,
                buffer: spec.buffer,
                backpressure: spec.backpressure,
            };
            grid.local = Some(self.gateway.subscribe(&local_spec)?);
        }
        for (name, (entry, sources)) in remote {
            let wire = GlobalRequest::Subscribe {
                from_gateway: my_name.clone(),
                identity: WireIdentity::from(&identity),
                sources,
                sql: spec.request.sql.clone(),
                every_ms: spec.every_ms,
                buffer: spec.buffer,
                backpressure: spec.backpressure,
            };
            self.stats.remote_queries_out.inc();
            let frame = WireFrame::encode(&wire);
            let mut cost = CostVector {
                msgs_out: 1,
                bytes_out: frame.len(),
                ..CostVector::default()
            };
            let answer = self
                .transport
                .send_frame(&self.gma_address, &entry.gma_address, &frame)
                .map_err(|e| SqlError::Connection(format!("{name}: {e}")))
                .and_then(|(bytes, _)| {
                    cost.msgs_in = 1;
                    cost.bytes_in = bytes.len() as u64;
                    WireFrame::decode::<GlobalResponse>(&bytes).map(|(r, _)| r)
                });
            let costs = self.gateway.telemetry().costs();
            costs.count(&cost);
            costs.intrude(&entry.site, IntrusionCause::Subscription, &cost);
            match answer {
                Ok(GlobalResponse::Subscribed { subscription }) => {
                    grid.remotes.push(RemoteSubscription {
                        gateway: name,
                        gma_address: entry.gma_address,
                        subscription,
                        site: entry.site,
                    });
                }
                Ok(GlobalResponse::Error { message }) => {
                    self.unsubscribe(&grid);
                    return Err(SqlError::Driver(format!("{name}: {message}")));
                }
                Ok(other) => {
                    self.unsubscribe(&grid);
                    return Err(SqlError::Driver(format!(
                        "{name}: unexpected subscribe response: {other:?}"
                    )));
                }
                Err(e) => {
                    self.unsubscribe(&grid);
                    return Err(e);
                }
            }
        }
        Ok(grid)
    }

    /// Drain up to `max` pending deltas *per share* (0 = all pending)
    /// and merge them into one deterministic stream: emit time, then
    /// origin label, then sequence number. Unreachable remotes
    /// contribute nothing this round; their deltas stay buffered under
    /// the producer's backpressure policy until the next poll.
    pub fn poll_deltas(&self, sub: &GridSubscription, max: usize) -> DbcResult<Vec<StreamDelta>> {
        let mut out = Vec::new();
        if let Some(id) = sub.local {
            out.extend(self.gateway.poll_deltas(id, max)?);
        }
        for remote in &sub.remotes {
            let wire = GlobalRequest::PollDeltas {
                subscription: remote.subscription,
                max,
            };
            self.stats.remote_queries_out.inc();
            let frame = WireFrame::encode(&wire);
            let mut cost = CostVector {
                msgs_out: 1,
                bytes_out: frame.len(),
                ..CostVector::default()
            };
            let answer = self
                .transport
                .send_frame(&self.gma_address, &remote.gma_address, &frame);
            if let Ok((bytes, _)) = &answer {
                cost.msgs_in = 1;
                cost.bytes_in = bytes.len() as u64;
            }
            let costs = self.gateway.telemetry().costs();
            costs.count(&cost);
            costs.intrude(&remote.site, IntrusionCause::Subscription, &cost);
            let Ok((bytes, _)) = answer else {
                continue;
            };
            if let Ok((GlobalResponse::Deltas { deltas }, _)) = WireFrame::decode(&bytes) {
                for delta in &deltas {
                    out.push(delta.to_delta()?);
                }
            }
        }
        out.sort_by(|a, b| (a.emitted_ms, &a.origin, a.seq).cmp(&(b.emitted_ms, &b.origin, b.seq)));
        Ok(out)
    }

    /// Cancel every share of a grid subscription. Returns how many
    /// shares acknowledged the cancel.
    pub fn unsubscribe(&self, sub: &GridSubscription) -> usize {
        let mut cancelled = 0;
        if let Some(id) = sub.local {
            if self.gateway.cancel_subscription(id) {
                cancelled += 1;
            }
        }
        for remote in &sub.remotes {
            let wire = GlobalRequest::Unsubscribe {
                subscription: remote.subscription,
            };
            self.stats.remote_queries_out.inc();
            let frame = WireFrame::encode(&wire);
            let mut cost = CostVector {
                msgs_out: 1,
                bytes_out: frame.len(),
                ..CostVector::default()
            };
            if let Ok((bytes, _)) =
                self.transport
                    .send_frame(&self.gma_address, &remote.gma_address, &frame)
            {
                cost.msgs_in = 1;
                cost.bytes_in = bytes.len() as u64;
                if matches!(
                    WireFrame::decode::<GlobalResponse>(&bytes).map(|(r, _)| r),
                    Ok(GlobalResponse::Unsubscribed { existed: true })
                ) {
                    cancelled += 1;
                }
            }
            let costs = self.gateway.telemetry().costs();
            costs.count(&cost);
            costs.intrude(&remote.site, IntrusionCause::Subscription, &cost);
        }
        cancelled
    }
}
