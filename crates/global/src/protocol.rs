//! Wire protocol between gateways (and to the GMA directory): JSON
//! messages over the simulated network.

use gridrm_core::acil::SourceOutcome;
use gridrm_core::events::GridRMEvent;
use gridrm_core::security::Identity;
use gridrm_core::stream::{BackpressurePolicy, StreamDelta};
use gridrm_dbc::{ColumnMeta, DbcResult, ResultSetMetaData, RowSet, SqlError};
use gridrm_sqlparse::{SqlType, SqlValue};
use gridrm_telemetry::{TraceContext, TraceRecord};
use serde::{Deserialize, Serialize};

/// Identity as shipped between gateways (the requesting gateway vouches
/// for it; the owning gateway applies *its* policy — §2's deferral).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireIdentity {
    /// Principal name.
    pub name: String,
    /// Roles.
    pub roles: Vec<String>,
}

impl From<&Identity> for WireIdentity {
    fn from(i: &Identity) -> Self {
        WireIdentity {
            name: i.name.clone(),
            roles: i.roles.iter().cloned().collect(),
        }
    }
}

impl WireIdentity {
    /// Back to a core identity.
    pub fn to_identity(&self) -> Identity {
        let roles: Vec<&str> = self.roles.iter().map(String::as_str).collect();
        Identity::new(&self.name, &roles)
    }
}

/// A result set in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireRows {
    /// Column `(name, type, unit)` triples.
    pub columns: Vec<(String, SqlType, Option<String>)>,
    /// Row data.
    pub rows: Vec<Vec<SqlValue>>,
}

impl WireRows {
    /// Capture a [`RowSet`].
    pub fn from_rowset(rs: &RowSet) -> WireRows {
        WireRows {
            columns: rs
                .meta()
                .columns()
                .iter()
                .map(|c| (c.name.clone(), c.ty, c.unit.clone()))
                .collect(),
            rows: rs.rows().to_vec(),
        }
    }

    /// Rebuild a [`RowSet`].
    pub fn to_rowset(&self) -> DbcResult<RowSet> {
        let meta = ResultSetMetaData::new(
            self.columns
                .iter()
                .map(|(name, ty, unit)| {
                    let mut c = ColumnMeta::new(name.clone(), *ty);
                    if let Some(u) = unit {
                        c = c.with_unit(u.clone());
                    }
                    c
                })
                .collect(),
        );
        RowSet::new(meta, self.rows.clone())
    }
}

/// One continuous-query delta batch in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireDelta {
    /// Subscription id *on the gateway that evaluated the query*.
    pub subscription: u64,
    /// Per-subscriber sequence number of the newest merged emission.
    pub seq: u64,
    /// Virtual emit time on the origin gateway.
    pub emitted_ms: u64,
    /// Scope label of the evaluating gateway (e.g. `local:gw-a`).
    pub origin: String,
    /// The changed rows.
    pub rows: WireRows,
    /// Rows that disappeared since the previous emission (count only;
    /// absent from pre-stream peers).
    #[serde(default)]
    pub removed: usize,
    /// How many buffered emissions were merged into this one by the
    /// `Coalesce` backpressure policy (absent from pre-stream peers).
    #[serde(default)]
    pub coalesced: u32,
}

impl WireDelta {
    /// Capture a core [`StreamDelta`].
    pub fn from_delta(d: &StreamDelta) -> WireDelta {
        WireDelta {
            subscription: d.subscription,
            seq: d.seq,
            emitted_ms: d.emitted_ms,
            origin: d.origin.clone(),
            rows: WireRows::from_rowset(&d.rows),
            removed: d.removed,
            coalesced: d.coalesced,
        }
    }

    /// Rebuild a core [`StreamDelta`].
    pub fn to_delta(&self) -> DbcResult<StreamDelta> {
        Ok(StreamDelta {
            subscription: self.subscription,
            seq: self.seq,
            emitted_ms: self.emitted_ms,
            origin: self.origin.clone(),
            rows: self.rows.to_rowset()?,
            removed: self.removed,
            coalesced: self.coalesced,
        })
    }
}

/// Requests a gateway's `:gma` endpoint accepts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GlobalRequest {
    /// Execute a query against sources this gateway owns.
    Query {
        /// Requesting gateway (for loop detection / auditing).
        from_gateway: String,
        /// Vouched client identity.
        identity: WireIdentity,
        /// Data-source URLs (all owned by the receiving gateway).
        sources: Vec<String>,
        /// SQL text.
        sql: String,
        /// Serve from the receiving gateway's cache when ≤ this age.
        max_cache_age_ms: Option<u64>,
        /// Trace context of the originating query, so remote spans join
        /// the caller's trace (absent from pre-span peers).
        #[serde(default)]
        trace: Option<TraceContext>,
        /// Remaining deadline budget (virtual ms) the originator grants
        /// this segment; the receiving gateway enforces it against its
        /// own sources (absent from pre-deadline peers = unlimited).
        #[serde(default)]
        deadline_ms: Option<u64>,
    },
    /// Deliver an event produced at another site.
    Event {
        /// Originating gateway.
        from_gateway: String,
        /// The normalised event.
        event: GridRMEvent,
    },
    /// Liveness probe.
    Ping,
    /// Register a continuous-query subscription on sources this gateway
    /// owns (the grid-level share of a `SELECT … EVERY n`).
    Subscribe {
        /// Requesting gateway.
        from_gateway: String,
        /// Vouched client identity.
        identity: WireIdentity,
        /// Data-source URLs (all owned by the receiving gateway).
        sources: Vec<String>,
        /// SQL text, including any `EVERY` clause.
        sql: String,
        /// Explicit cadence override (virtual ms); when absent the
        /// receiving gateway uses the SQL's `EVERY` clause.
        #[serde(default)]
        every_ms: Option<u64>,
        /// Per-subscriber buffer capacity override.
        #[serde(default)]
        buffer: Option<usize>,
        /// Backpressure policy override.
        #[serde(default)]
        backpressure: Option<BackpressurePolicy>,
    },
    /// Drain pending deltas from a subscription registered here.
    PollDeltas {
        /// Subscription id returned by `Subscribed`.
        subscription: u64,
        /// Maximum deltas to drain (0 = all pending).
        #[serde(default)]
        max: usize,
    },
    /// Cancel a subscription registered here.
    Unsubscribe {
        /// Subscription id returned by `Subscribed`.
        subscription: u64,
    },
}

/// Responses from a gateway's `:gma` endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GlobalResponse {
    /// Query answered.
    Rows {
        /// The consolidated result.
        rows: WireRows,
        /// Per-source warnings.
        warnings: Vec<String>,
        /// Sources served from the remote cache.
        served_from_cache: usize,
        /// Spans the remote gateway recorded for this trace, shipped
        /// back so the caller can assemble the full cross-site tree
        /// (empty from pre-span peers).
        #[serde(default)]
        spans: Vec<TraceRecord>,
        /// Virtual milliseconds the remote gateway spent answering, so
        /// the originator can cost the segment (0 from older peers).
        #[serde(default)]
        elapsed_ms: u64,
        /// Structured per-source outcomes from the remote gateway
        /// (empty from pre-outcome peers; the originator synthesises).
        #[serde(default)]
        outcomes: Vec<SourceOutcome>,
    },
    /// Event accepted.
    EventAccepted,
    /// Pong.
    Pong {
        /// Responding gateway name.
        gateway: String,
    },
    /// Subscription registered; poll it with `PollDeltas`.
    Subscribed {
        /// Id of the new subscription on the responding gateway.
        subscription: u64,
    },
    /// Pending deltas drained from a subscription.
    Deltas {
        /// The drained batches, oldest first.
        deltas: Vec<WireDelta>,
    },
    /// Subscription cancel acknowledged.
    Unsubscribed {
        /// Whether the subscription existed.
        #[serde(default)]
        existed: bool,
    },
    /// Something failed.
    Error {
        /// Error description.
        message: String,
    },
    /// The serving layer refused admission: the caller's queue is full
    /// or the scheduler is saturated. Retry after the hinted delay —
    /// the request was **not** executed. (Never produced by the simnet
    /// path, whose virtual time admits everything; older peers decode
    /// it like any unknown-variant error and surface a driver error.)
    Overloaded {
        /// Queue depth observed at rejection time.
        #[serde(default)]
        queue_depth: u64,
        /// Suggested client backoff in wall-clock milliseconds.
        #[serde(default)]
        retry_after_ms: u64,
    },
}

/// An encoded wire message together with its measured size.
///
/// Wire-frame sizes used to be measured ad hoc at each call site (or
/// not at all); this is now the **single source of truth** for the byte
/// counts the cost ledger attributes to queries, subscriptions, probes
/// and gossip. Both directions agree by construction: the sender
/// charges `frame.len()`, the receiver charges the slice length that
/// [`decode_framed`] reports, and they are the same bytes.
#[derive(Debug, Clone)]
pub struct WireFrame {
    bytes: Vec<u8>,
}

impl WireFrame {
    /// Encode a message for the wire, measuring its size. This is the
    /// supported entry point for producing wire bytes: every message a
    /// transport carries passes through here, so the cost ledger sees
    /// every byte.
    pub fn encode<T: Serialize>(msg: &T) -> WireFrame {
        encode_framed(msg)
    }

    /// Decode a message from the wire, reporting the frame size the
    /// ledger should charge inbound. The supported counterpart of
    /// [`WireFrame::encode`].
    pub fn decode<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> DbcResult<(T, u64)> {
        decode_framed(bytes)
    }

    /// Wrap already-encoded payload bytes (a frame received from a
    /// socket being re-sent verbatim). The bytes are *not* validated;
    /// the receiving side's [`WireFrame::decode`] does that.
    pub fn from_bytes(bytes: Vec<u8>) -> WireFrame {
        WireFrame { bytes }
    }

    /// The frame size in bytes — what the ledger charges.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// True for a zero-length frame (never produced by [`encode_framed`]).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The encoded payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the frame, yielding the payload for the network.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Encode a message for the wire, measuring its size.
pub fn encode_framed<T: Serialize>(msg: &T) -> WireFrame {
    WireFrame {
        bytes: serde_json::to_vec(msg).expect("wire messages are serialisable"),
    }
}

/// Decode a message from the wire, reporting the frame size the ledger
/// should charge for the inbound direction.
pub fn decode_framed<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> DbcResult<(T, u64)> {
    let msg = serde_json::from_slice(bytes)
        .map_err(|e| SqlError::Driver(format!("bad global-layer message: {e}")))?;
    Ok((msg, bytes.len() as u64))
}

/// Encode a message for the wire, discarding the size.
///
/// Deprecated for external use: the size-less helpers made it easy to
/// put bytes on the wire that the cost ledger never saw. Use
/// [`WireFrame::encode`] and charge `frame.len()`.
#[deprecated(note = "use WireFrame::encode so wire bytes stay priced")]
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    encode_framed(msg).into_bytes()
}

/// Decode a message from the wire, discarding the size.
///
/// Deprecated for external use for the same reason as [`encode`]: use
/// [`WireFrame::decode`] and charge the reported inbound size.
#[deprecated(note = "use WireFrame::decode so wire bytes stay priced")]
pub fn decode<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> DbcResult<T> {
    decode_framed(bytes).map(|(msg, _)| msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc<T: Serialize>(msg: &T) -> Vec<u8> {
        WireFrame::encode(msg).into_bytes()
    }

    fn dec<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> DbcResult<T> {
        WireFrame::decode(bytes).map(|(msg, _)| msg)
    }

    #[test]
    fn wire_rows_roundtrip() {
        let rs = RowSet::new(
            ResultSetMetaData::new(vec![
                ColumnMeta::new("Hostname", SqlType::Str).with_unit("".to_owned()),
                ColumnMeta::new("Load1", SqlType::Float),
            ]),
            vec![
                vec![SqlValue::Str("n1".into()), SqlValue::Float(0.5)],
                vec![SqlValue::Str("n2".into()), SqlValue::Null],
            ],
        )
        .unwrap();
        let wire = WireRows::from_rowset(&rs);
        let back = wire.to_rowset().unwrap();
        assert_eq!(back.rows(), rs.rows());
        assert_eq!(back.meta().column_name(1).unwrap(), "Load1");
    }

    #[test]
    fn request_json_roundtrip() {
        let req = GlobalRequest::Query {
            from_gateway: "gw-a".into(),
            identity: WireIdentity {
                name: "alice".into(),
                roles: vec!["monitor".into()],
            },
            sources: vec!["jdbc:snmp://n/p".into()],
            sql: "SELECT * FROM Processor".into(),
            max_cache_age_ms: Some(5_000),
            trace: Some(TraceContext {
                trace_id: "gw-a:1".into(),
                parent_span_id: "gw-a:1".into(),
            }),
            deadline_ms: Some(250),
        };
        let bytes = enc(&req);
        let back: GlobalRequest = dec(&bytes).unwrap();
        match back {
            GlobalRequest::Query { identity, sql, .. } => {
                assert_eq!(identity.name, "alice");
                assert!(sql.contains("Processor"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pre_span_query_json_still_decodes() {
        // A peer built before hierarchical tracing sends no `trace`
        // field and no `spans` field; both default. Peers built before
        // the fan-out engine additionally omit `deadline_ms`,
        // `elapsed_ms` and `outcomes`.
        let json = br#"{"Query":{"from_gateway":"gw-b","identity":{"name":"alice","roles":[]},"sources":[],"sql":"SELECT 1","max_cache_age_ms":null}}"#;
        match dec::<GlobalRequest>(json).unwrap() {
            GlobalRequest::Query {
                trace, deadline_ms, ..
            } => {
                assert!(trace.is_none());
                assert!(deadline_ms.is_none());
            }
            other => panic!("{other:?}"),
        }
        let json =
            br#"{"Rows":{"rows":{"columns":[],"rows":[]},"warnings":[],"served_from_cache":0}}"#;
        match dec::<GlobalResponse>(json).unwrap() {
            GlobalResponse::Rows {
                spans,
                elapsed_ms,
                outcomes,
                ..
            } => {
                assert!(spans.is_empty());
                assert_eq!(elapsed_ms, 0);
                assert!(outcomes.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wire_delta_roundtrip() {
        let rs = RowSet::new(
            ResultSetMetaData::new(vec![ColumnMeta::new("Load1", SqlType::Float)]),
            vec![vec![SqlValue::Float(1.5)]],
        )
        .unwrap();
        let delta = StreamDelta {
            subscription: 7,
            seq: 3,
            emitted_ms: 1_000,
            origin: "local:gw-a".into(),
            rows: rs,
            removed: 2,
            coalesced: 1,
        };
        let wire = WireDelta::from_delta(&delta);
        let back: WireDelta = dec(&enc(&wire)).unwrap();
        let restored = back.to_delta().unwrap();
        assert_eq!(restored.subscription, 7);
        assert_eq!(restored.seq, 3);
        assert_eq!(restored.origin, "local:gw-a");
        assert_eq!(restored.rows.rows(), delta.rows.rows());
        assert_eq!(restored.removed, 2);
        assert_eq!(restored.coalesced, 1);
    }

    #[test]
    fn subscribe_roundtrip_and_minimal_json_decodes() {
        let req = GlobalRequest::Subscribe {
            from_gateway: "gw-a".into(),
            identity: WireIdentity {
                name: "alice".into(),
                roles: vec![],
            },
            sources: vec!["jdbc:snmp://n/p".into()],
            sql: "SELECT * FROM Processor EVERY 500".into(),
            every_ms: None,
            buffer: Some(4),
            backpressure: Some(BackpressurePolicy::Coalesce),
        };
        match dec::<GlobalRequest>(&enc(&req)).unwrap() {
            GlobalRequest::Subscribe {
                sql, backpressure, ..
            } => {
                assert!(sql.contains("EVERY 500"));
                assert!(matches!(backpressure, Some(BackpressurePolicy::Coalesce)));
            }
            other => panic!("{other:?}"),
        }
        // A sender that only knows the required fields still decodes:
        // cadence/buffer/policy all default.
        let json = br#"{"Subscribe":{"from_gateway":"gw-b","identity":{"name":"alice","roles":[]},"sources":["jdbc:snmp://n/p"],"sql":"SELECT 1 EVERY 100"}}"#;
        match dec::<GlobalRequest>(json).unwrap() {
            GlobalRequest::Subscribe {
                every_ms,
                buffer,
                backpressure,
                ..
            } => {
                assert!(every_ms.is_none());
                assert!(buffer.is_none());
                assert!(backpressure.is_none());
            }
            other => panic!("{other:?}"),
        }
        // PollDeltas without `max` drains everything; a bare WireDelta
        // without removed/coalesced defaults both to zero.
        let json = br#"{"PollDeltas":{"subscription":9}}"#;
        match dec::<GlobalRequest>(json).unwrap() {
            GlobalRequest::PollDeltas { subscription, max } => {
                assert_eq!(subscription, 9);
                assert_eq!(max, 0);
            }
            other => panic!("{other:?}"),
        }
        let json = br#"{"Deltas":{"deltas":[{"subscription":1,"seq":1,"emitted_ms":5,"origin":"local:gw-b","rows":{"columns":[],"rows":[]}}]}}"#;
        match dec::<GlobalResponse>(json).unwrap() {
            GlobalResponse::Deltas { deltas } => {
                assert_eq!(deltas.len(), 1);
                assert_eq!(deltas[0].removed, 0);
                assert_eq!(deltas[0].coalesced, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[allow(deprecated)] // the deprecated helpers must keep working
    fn decode_garbage_errors() {
        assert!(decode::<GlobalRequest>(b"not json").is_err());
        assert!(decode_framed::<GlobalRequest>(b"not json").is_err());
        assert!(WireFrame::decode::<GlobalRequest>(b"not json").is_err());
    }

    #[test]
    #[allow(deprecated)] // pins the deprecated helpers to WireFrame's bytes
    fn framed_sizes_agree_in_both_directions() {
        let frame = WireFrame::encode(&GlobalRequest::Ping);
        assert!(!frame.is_empty());
        assert_eq!(frame.len(), frame.bytes().len() as u64);
        // The receiver measures the same bytes the sender charged.
        let (back, inbound) = WireFrame::decode::<GlobalRequest>(frame.bytes()).unwrap();
        assert!(matches!(back, GlobalRequest::Ping));
        assert_eq!(inbound, frame.len());
        // Re-wrapping received bytes is lossless.
        let rewrapped = WireFrame::from_bytes(frame.bytes().to_vec());
        assert_eq!(rewrapped.len(), frame.len());
        // And the free helpers — framed and deprecated size-less alike —
        // produce identical payloads.
        assert_eq!(encode_framed(&GlobalRequest::Ping).bytes(), frame.bytes());
        assert_eq!(encode(&GlobalRequest::Ping), frame.into_bytes());
    }

    #[test]
    fn identity_conversion() {
        let id = Identity::new("bob", &["admin", "monitor"]);
        let wire = WireIdentity::from(&id);
        let back = wire.to_identity();
        assert_eq!(back, id);
    }
}
