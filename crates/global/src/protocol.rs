//! Wire protocol between gateways (and to the GMA directory): JSON
//! messages over the simulated network.

use gridrm_core::acil::SourceOutcome;
use gridrm_core::events::GridRMEvent;
use gridrm_core::security::Identity;
use gridrm_dbc::{ColumnMeta, DbcResult, ResultSetMetaData, RowSet, SqlError};
use gridrm_sqlparse::{SqlType, SqlValue};
use gridrm_telemetry::{TraceContext, TraceRecord};
use serde::{Deserialize, Serialize};

/// Identity as shipped between gateways (the requesting gateway vouches
/// for it; the owning gateway applies *its* policy — §2's deferral).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireIdentity {
    /// Principal name.
    pub name: String,
    /// Roles.
    pub roles: Vec<String>,
}

impl From<&Identity> for WireIdentity {
    fn from(i: &Identity) -> Self {
        WireIdentity {
            name: i.name.clone(),
            roles: i.roles.iter().cloned().collect(),
        }
    }
}

impl WireIdentity {
    /// Back to a core identity.
    pub fn to_identity(&self) -> Identity {
        let roles: Vec<&str> = self.roles.iter().map(String::as_str).collect();
        Identity::new(&self.name, &roles)
    }
}

/// A result set in wire form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireRows {
    /// Column `(name, type, unit)` triples.
    pub columns: Vec<(String, SqlType, Option<String>)>,
    /// Row data.
    pub rows: Vec<Vec<SqlValue>>,
}

impl WireRows {
    /// Capture a [`RowSet`].
    pub fn from_rowset(rs: &RowSet) -> WireRows {
        WireRows {
            columns: rs
                .meta()
                .columns()
                .iter()
                .map(|c| (c.name.clone(), c.ty, c.unit.clone()))
                .collect(),
            rows: rs.rows().to_vec(),
        }
    }

    /// Rebuild a [`RowSet`].
    pub fn to_rowset(&self) -> DbcResult<RowSet> {
        let meta = ResultSetMetaData::new(
            self.columns
                .iter()
                .map(|(name, ty, unit)| {
                    let mut c = ColumnMeta::new(name.clone(), *ty);
                    if let Some(u) = unit {
                        c = c.with_unit(u.clone());
                    }
                    c
                })
                .collect(),
        );
        RowSet::new(meta, self.rows.clone())
    }
}

/// Requests a gateway's `:gma` endpoint accepts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GlobalRequest {
    /// Execute a query against sources this gateway owns.
    Query {
        /// Requesting gateway (for loop detection / auditing).
        from_gateway: String,
        /// Vouched client identity.
        identity: WireIdentity,
        /// Data-source URLs (all owned by the receiving gateway).
        sources: Vec<String>,
        /// SQL text.
        sql: String,
        /// Serve from the receiving gateway's cache when ≤ this age.
        max_cache_age_ms: Option<u64>,
        /// Trace context of the originating query, so remote spans join
        /// the caller's trace (absent from pre-span peers).
        #[serde(default)]
        trace: Option<TraceContext>,
        /// Remaining deadline budget (virtual ms) the originator grants
        /// this segment; the receiving gateway enforces it against its
        /// own sources (absent from pre-deadline peers = unlimited).
        #[serde(default)]
        deadline_ms: Option<u64>,
    },
    /// Deliver an event produced at another site.
    Event {
        /// Originating gateway.
        from_gateway: String,
        /// The normalised event.
        event: GridRMEvent,
    },
    /// Liveness probe.
    Ping,
}

/// Responses from a gateway's `:gma` endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GlobalResponse {
    /// Query answered.
    Rows {
        /// The consolidated result.
        rows: WireRows,
        /// Per-source warnings.
        warnings: Vec<String>,
        /// Sources served from the remote cache.
        served_from_cache: usize,
        /// Spans the remote gateway recorded for this trace, shipped
        /// back so the caller can assemble the full cross-site tree
        /// (empty from pre-span peers).
        #[serde(default)]
        spans: Vec<TraceRecord>,
        /// Virtual milliseconds the remote gateway spent answering, so
        /// the originator can cost the segment (0 from older peers).
        #[serde(default)]
        elapsed_ms: u64,
        /// Structured per-source outcomes from the remote gateway
        /// (empty from pre-outcome peers; the originator synthesises).
        #[serde(default)]
        outcomes: Vec<SourceOutcome>,
    },
    /// Event accepted.
    EventAccepted,
    /// Pong.
    Pong {
        /// Responding gateway name.
        gateway: String,
    },
    /// Something failed.
    Error {
        /// Error description.
        message: String,
    },
}

/// Encode a message for the wire.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_vec(msg).expect("wire messages are serialisable")
}

/// Decode a message from the wire.
pub fn decode<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> DbcResult<T> {
    serde_json::from_slice(bytes)
        .map_err(|e| SqlError::Driver(format!("bad global-layer message: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_rows_roundtrip() {
        let rs = RowSet::new(
            ResultSetMetaData::new(vec![
                ColumnMeta::new("Hostname", SqlType::Str).with_unit("".to_owned()),
                ColumnMeta::new("Load1", SqlType::Float),
            ]),
            vec![
                vec![SqlValue::Str("n1".into()), SqlValue::Float(0.5)],
                vec![SqlValue::Str("n2".into()), SqlValue::Null],
            ],
        )
        .unwrap();
        let wire = WireRows::from_rowset(&rs);
        let back = wire.to_rowset().unwrap();
        assert_eq!(back.rows(), rs.rows());
        assert_eq!(back.meta().column_name(1).unwrap(), "Load1");
    }

    #[test]
    fn request_json_roundtrip() {
        let req = GlobalRequest::Query {
            from_gateway: "gw-a".into(),
            identity: WireIdentity {
                name: "alice".into(),
                roles: vec!["monitor".into()],
            },
            sources: vec!["jdbc:snmp://n/p".into()],
            sql: "SELECT * FROM Processor".into(),
            max_cache_age_ms: Some(5_000),
            trace: Some(TraceContext {
                trace_id: "gw-a:1".into(),
                parent_span_id: "gw-a:1".into(),
            }),
            deadline_ms: Some(250),
        };
        let bytes = encode(&req);
        let back: GlobalRequest = decode(&bytes).unwrap();
        match back {
            GlobalRequest::Query { identity, sql, .. } => {
                assert_eq!(identity.name, "alice");
                assert!(sql.contains("Processor"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pre_span_query_json_still_decodes() {
        // A peer built before hierarchical tracing sends no `trace`
        // field and no `spans` field; both default. Peers built before
        // the fan-out engine additionally omit `deadline_ms`,
        // `elapsed_ms` and `outcomes`.
        let json = br#"{"Query":{"from_gateway":"gw-b","identity":{"name":"alice","roles":[]},"sources":[],"sql":"SELECT 1","max_cache_age_ms":null}}"#;
        match decode::<GlobalRequest>(json).unwrap() {
            GlobalRequest::Query {
                trace, deadline_ms, ..
            } => {
                assert!(trace.is_none());
                assert!(deadline_ms.is_none());
            }
            other => panic!("{other:?}"),
        }
        let json =
            br#"{"Rows":{"rows":{"columns":[],"rows":[]},"warnings":[],"served_from_cache":0}}"#;
        match decode::<GlobalResponse>(json).unwrap() {
            GlobalResponse::Rows {
                spans,
                elapsed_ms,
                outcomes,
                ..
            } => {
                assert!(spans.is_empty());
                assert_eq!(elapsed_ms, 0);
                assert!(outcomes.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_garbage_errors() {
        assert!(decode::<GlobalRequest>(b"not json").is_err());
    }

    #[test]
    fn identity_conversion() {
        let id = Identity::new("bob", &["admin", "monitor"]);
        let wire = WireIdentity::from(&id);
        let back = wire.to_identity();
        assert_eq!(back, id);
    }
}
