//! Property tests for the Global-layer wire protocol.

use gridrm_core::events::{GridRMEvent, Severity};
use gridrm_dbc::{ColumnMeta, ResultSetMetaData, RowSet};
use gridrm_global::{GlobalRequest, GlobalResponse, WireFrame, WireIdentity, WireRows};
use gridrm_sqlparse::{SqlType, SqlValue};
use proptest::prelude::*;
use proptest::strategy::ValueTree;
use serde::{Deserialize, Serialize};

fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    WireFrame::encode(msg).into_bytes()
}

fn decode<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> gridrm_dbc::DbcResult<T> {
    WireFrame::decode(bytes).map(|(msg, _)| msg)
}

fn arb_value() -> impl Strategy<Value = SqlValue> {
    prop_oneof![
        Just(SqlValue::Null),
        any::<bool>().prop_map(SqlValue::Bool),
        any::<i64>().prop_map(SqlValue::Int),
        (-1e12f64..1e12).prop_map(SqlValue::Float),
        "\\PC{0,20}".prop_map(SqlValue::Str),
        (0i64..i64::MAX / 2).prop_map(SqlValue::Timestamp),
    ]
}

proptest! {
    /// Arbitrary result sets survive the gateway-to-gateway wire format.
    #[test]
    fn wire_rows_roundtrip(
        names in prop::collection::vec("[A-Za-z][A-Za-z0-9]{0,10}", 1..5),
        nrows in 0usize..8,
    ) {
        let meta = ResultSetMetaData::new(
            names.iter().map(|n| ColumnMeta::new(n.clone(), SqlType::Null)).collect(),
        );
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let rows: Vec<Vec<SqlValue>> = (0..nrows)
            .map(|_| {
                (0..names.len())
                    .map(|_| arb_value().new_tree(&mut runner).unwrap().current())
                    .collect()
            })
            .collect();
        let rs = RowSet::new(meta, rows).unwrap();
        let wire = WireRows::from_rowset(&rs);
        let bytes = encode(&wire);
        let back: WireRows = decode(&bytes).unwrap();
        let restored = back.to_rowset().unwrap();
        prop_assert_eq!(restored.rows(), rs.rows());
        prop_assert_eq!(restored.meta().column_count(), rs.meta().column_count());
    }

    /// Requests and responses round-trip, including events with odd text.
    #[test]
    fn request_event_roundtrip(
        gateway in "[a-z-]{1,12}",
        category in "\\PC{0,24}",
        message in "\\PC{0,48}",
        value in prop::option::of(any::<f64>().prop_filter("finite", |f| f.is_finite())),
    ) {
        let req = GlobalRequest::Event {
            from_gateway: gateway.clone(),
            event: GridRMEvent {
                id: 7,
                at_ms: 123,
                source: "x:snmp".into(),
                hostname: Some("h".into()),
                severity: Severity::Warning,
                category: category.clone(),
                message: message.clone(),
                value,
            },
        };
        let back: GlobalRequest = decode(&encode(&req)).unwrap();
        match back {
            GlobalRequest::Event { from_gateway, event } => {
                prop_assert_eq!(from_gateway, gateway);
                prop_assert_eq!(event.category, category);
                prop_assert_eq!(event.message, message);
                prop_assert_eq!(event.value, value);
            }
            other => prop_assert!(false, "wrong variant {:?}", other),
        }
    }

    /// Identities round-trip with any role set.
    #[test]
    fn identity_roundtrip(name in "[a-z]{1,10}", roles in prop::collection::vec("[a-z]{1,8}", 0..5)) {
        let wire = WireIdentity { name: name.clone(), roles };
        let id = wire.to_identity();
        let back = WireIdentity::from(&id);
        prop_assert_eq!(back.name.clone(), name);
        prop_assert_eq!(back.to_identity(), id);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode::<GlobalRequest>(&bytes);
        let _ = decode::<GlobalResponse>(&bytes);
        let _ = decode::<WireRows>(&bytes);
    }
}
