//! §2's hierarchical security deferral, end to end: "In a hierarchy of
//! GridRM Gateways, security decisions can be deferred to the local
//! Gateway responsible for a given resource."

use gridrm_agents::deploy_site;
use gridrm_core::security::AclRule;
use gridrm_core::{ClientRequest, Gateway, GatewayConfig, Identity, SecurityPolicy};
use gridrm_drivers::install_into_gateway;
use gridrm_global::{GlobalLayer, GmaDirectory};
use gridrm_resmodel::{SiteModel, SiteSpec};
use gridrm_simnet::{Network, SimClock};

#[test]
fn local_gateway_defers_remote_decisions_to_the_owner() {
    let net = Network::new(SimClock::new(), 808);
    let directory = GmaDirectory::new();
    let mut gateways = Vec::new();
    for (i, name) in ["edge", "owner"].iter().enumerate() {
        let model = SiteModel::generate(300 + i as u64, &SiteSpec::new(name, 2, 2));
        model.advance_to(120_000);
        deploy_site(&net, model);
        let gw = Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
        install_into_gateway(&gw);
        let layer = GlobalLayer::attach(gw.clone(), directory.clone());
        gateways.push((gw, layer));
    }
    let (edge_gw, edge_layer) = &gateways[0];
    let (owner_gw, _) = &gateways[1];

    // The edge gateway explicitly declines authority over `.owner` hosts
    // (§2's deferral) — its Fine Grained Security Layer says Defer.
    let mut edge_policy = SecurityPolicy::permissive();
    edge_policy
        .deferred_prefixes
        .push("jdbc:snmp://node00.owner".to_owned());
    edge_gw.set_security_policy(edge_policy);

    // The owning gateway enforces its own rule: only `monitor` may read
    // Processor data.
    owner_gw.set_security_policy(SecurityPolicy::strict().with_rule(AclRule {
        role: "monitor".into(),
        url_prefix: String::new(),
        group: "Processor".into(),
        allow: true,
    }));

    let source = "jdbc:snmp://node00.owner/public";
    let sql = "SELECT Hostname FROM Processor";

    // 1. Asking the edge gateway's LOCAL layer directly: it refuses to
    //    decide and points at the Global layer.
    assert!(
        edge_gw
            .query(&ClientRequest::realtime(source, sql))
            .is_err(),
        "local layer must not answer a deferred resource"
    );

    // 2. Through the Global layer, the decision is made by the OWNER's
    //    policy: anonymous denied, monitor allowed.
    let denied = edge_layer
        .query(&ClientRequest::realtime(source, sql).with_identity(Identity::anonymous()));
    assert!(denied.is_err(), "owner policy must deny anonymous");

    let allowed = edge_layer
        .query(
            &ClientRequest::realtime(source, sql)
                .with_identity(Identity::new("alice", &["monitor"])),
        )
        .expect("owner policy must allow monitor");
    assert_eq!(allowed.rows.len(), 1);

    // The edge gateway never evaluated the owner's resources itself: the
    // query crossed the gma link.
    assert_eq!(
        net.stats_for("gw.edge:gma", "gw.owner:gma")
            .snapshot()
            .requests,
        2
    );
}

#[test]
fn deferred_source_warns_but_other_sources_still_answer_locally() {
    let net = Network::new(SimClock::new(), 809);
    let model = SiteModel::generate(77, &SiteSpec::new("solo", 2, 2));
    model.advance_to(60_000);
    deploy_site(&net, model);
    let gw = Gateway::new(GatewayConfig::new("gw-solo", "solo"), net.clone());
    install_into_gateway(&gw);

    let mut policy = SecurityPolicy::permissive();
    policy
        .deferred_prefixes
        .push("jdbc:snmp://elsewhere".into());
    gw.set_security_policy(policy);

    let resp = gw
        .query(
            &ClientRequest::builder("SELECT Hostname FROM Processor")
                .sources(&[
                    "jdbc:snmp://node00.solo/public",
                    "jdbc:snmp://elsewhere.host/public",
                ])
                .build(),
        )
        .expect("local source still answers");
    assert_eq!(resp.rows.len(), 1);
    assert!(
        resp.warnings.iter().any(|w| w.contains("Global layer")),
        "{:?}",
        resp.warnings
    );
}
