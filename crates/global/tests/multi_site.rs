//! Fig 1 end-to-end: multiple sites, each with its own gateway and agent
//! population; clients connect to one gateway and transparently query the
//! whole Grid; events propagate between gateways.

use gridrm_agents::{deploy_site, SiteAgents};
use gridrm_core::events::ListenerFilter;
use gridrm_core::{ClientRequest, Gateway, GatewayConfig, Identity, Severity};
use gridrm_drivers::install_into_gateway;
use gridrm_global::{GlobalLayer, GmaDirectory};
use gridrm_resmodel::{SiteModel, SiteSpec};
use gridrm_simnet::{Latency, Network, SimClock};
use gridrm_sqlparse::SqlValue;
use std::sync::Arc;

struct Site {
    site: Arc<SiteModel>,
    agents: SiteAgents,
    gateway: Arc<Gateway>,
    layer: Arc<GlobalLayer>,
}

struct Grid {
    net: Arc<Network>,
    directory: Arc<GmaDirectory>,
    sites: Vec<Site>,
}

fn grid(names: &[&str]) -> Grid {
    let net = Network::new(SimClock::new(), 2026);
    let directory = GmaDirectory::new();
    let mut sites = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let model = SiteModel::generate(1000 + i as u64, &SiteSpec::new(name, 3, 4));
        model.advance_to(180_000);
        let agents = deploy_site(&net, model.clone());
        let gateway = Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
        install_into_gateway(&gateway);
        let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
        sites.push(Site {
            site: model,
            agents,
            gateway,
            layer,
        });
    }
    Grid {
        net,
        directory,
        sites,
    }
}

#[test]
fn remote_query_routed_to_owning_gateway() {
    let g = grid(&["alpha", "beta"]);
    // Client connected to alpha queries a beta resource.
    let resp = g.sites[0]
        .layer
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node01.beta/public",
            "SELECT Hostname, NCpu FROM Processor",
        ))
        .unwrap();
    assert_eq!(resp.rows.len(), 1);
    assert_eq!(resp.rows.rows()[0][0], SqlValue::Str("node01.beta".into()));
    // The query crossed exactly one gateway-to-gateway hop.
    assert_eq!(g.sites[0].layer.stats().remote_queries_out.get(), 1);
    assert_eq!(g.sites[1].layer.stats().remote_queries_in.get(), 1);
    // And alpha's gateway never talked to beta's agent directly.
    assert_eq!(
        g.net
            .stats_for("gw.alpha", "node01.beta:snmp")
            .snapshot()
            .requests,
        0
    );
}

#[test]
fn mixed_local_and_remote_sources_consolidated() {
    let g = grid(&["alpha", "beta", "gamma"]);
    let resp = g.sites[0]
        .layer
        .query(
            &ClientRequest::builder("SELECT Hostname, Load1 FROM Processor")
                .sources(&[
                    "jdbc:snmp://node00.alpha/public",
                    "jdbc:snmp://node00.beta/public",
                    "jdbc:snmp://node00.gamma/public",
                ])
                .build(),
        )
        .unwrap();
    assert_eq!(resp.rows.len(), 3);
    assert_eq!(resp.sources_ok, 3);
    let hosts: Vec<String> = resp.rows.rows().iter().map(|r| r[0].to_string()).collect();
    assert!(hosts.contains(&"node00.beta".to_owned()));
    assert!(hosts.contains(&"node00.gamma".to_owned()));
}

#[test]
fn local_queries_never_leave_the_site() {
    let g = grid(&["alpha", "beta"]);
    g.sites[0]
        .layer
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node02.alpha/public",
            "SELECT Hostname FROM Processor",
        ))
        .unwrap();
    assert_eq!(g.sites[0].layer.stats().remote_queries_out.get(), 0);
}

#[test]
fn remote_cache_mode_served_by_owner() {
    let g = grid(&["alpha", "beta"]);
    let source = "jdbc:ganglia://node00.beta/beta";
    let sql = "SELECT Hostname, Load1 FROM Processor";
    // Prime beta's cache through the global layer.
    g.sites[0]
        .layer
        .query(&ClientRequest::realtime(source, sql))
        .unwrap();
    let served_before = g
        .net
        .endpoint_stats("node00.beta:ganglia")
        .unwrap()
        .snapshot()
        .requests_served;
    let resp = g.sites[0]
        .layer
        .query(&ClientRequest::cached(source, sql, Some(60_000)))
        .unwrap();
    assert_eq!(resp.served_from_cache, 1);
    let served_after = g
        .net
        .endpoint_stats("node00.beta:ganglia")
        .unwrap()
        .snapshot()
        .requests_served;
    // The owning gateway answered from ITS cache: the agent saw nothing
    // (the inter-gateway scalability mechanism, §4).
    assert_eq!(served_after, served_before);
}

#[test]
fn events_propagate_between_gateways() {
    let g = grid(&["alpha", "beta"]);
    g.sites[0].layer.enable_event_propagation(Severity::Warning);
    g.sites[1].layer.enable_event_propagation(Severity::Warning);

    // A consumer at beta listens for remote cpu events.
    let (_, rx) = g.sites[1]
        .gateway
        .events()
        .register_listener(ListenerFilter {
            category_prefix: Some("cpu.".into()),
            ..Default::default()
        });

    // Trap fires at alpha.
    for a in &g.sites[0].agents.snmp {
        a.set_trap_sink(g.net.clone(), "gw.alpha", 3.0);
    }
    g.sites[0].site.inject_load_spike("node01.alpha", 15.0);
    g.sites[0].site.advance_to(181_000);
    let (traps, _) = g.sites[0].agents.pump();
    assert_eq!(traps, 1);

    // Alpha dispatches (forwarding to beta), then beta dispatches to its
    // local listeners.
    g.sites[0].gateway.pump();
    g.sites[1].gateway.pump();

    let event = rx.try_recv().expect("event crossed the Grid");
    assert_eq!(event.category, "cpu.load.high");
    assert!(event.source.starts_with("gma:gw-alpha:"));
    assert_eq!(event.hostname.as_deref(), Some("node01.alpha"));

    // No ping-pong: pumping again moves nothing new.
    g.sites[0].gateway.pump();
    g.sites[1].gateway.pump();
    assert!(rx.try_recv().is_err());
    assert_eq!(
        g.sites[1].layer.stats().events_out.get(),
        0,
        "beta re-forwarded a gma-sourced event"
    );
}

#[test]
fn owning_gateway_applies_its_own_security() {
    let g = grid(&["alpha", "beta"]);
    // Beta locks down; alpha stays permissive.
    g.sites[1]
        .gateway
        .set_security_policy(gridrm_core::SecurityPolicy::strict().with_rule(
            gridrm_core::security::AclRule {
                role: "monitor".into(),
                url_prefix: String::new(),
                group: "*".into(),
                allow: true,
            },
        ));
    let err = g.sites[0]
        .layer
        .query(
            &ClientRequest::realtime(
                "jdbc:snmp://node00.beta/public",
                "SELECT Hostname FROM Processor",
            )
            .with_identity(Identity::anonymous()),
        )
        .err()
        .unwrap();
    let msg = err.to_string();
    assert!(msg.contains("requires role"), "{msg}");
    // With the right role, beta accepts the vouched identity.
    let resp = g.sites[0]
        .layer
        .query(
            &ClientRequest::realtime(
                "jdbc:snmp://node00.beta/public",
                "SELECT Hostname FROM Processor",
            )
            .with_identity(Identity::new("alice", &["monitor"])),
        )
        .unwrap();
    assert_eq!(resp.rows.len(), 1);
}

#[test]
fn dead_remote_gateway_degrades_gracefully() {
    let g = grid(&["alpha", "beta"]);
    g.net.set_down("gw.beta:gma", true);
    // Mixed query: local part still answers, with a warning for beta.
    let resp = g.sites[0]
        .layer
        .query(
            &ClientRequest::builder("SELECT Hostname FROM Processor")
                .sources(&[
                    "jdbc:snmp://node00.alpha/public",
                    "jdbc:snmp://node00.beta/public",
                ])
                .build(),
        )
        .unwrap();
    assert_eq!(resp.rows.len(), 1);
    assert_eq!(resp.sources_ok, 1);
    assert!(resp.warnings.iter().any(|w| w.contains("gw-beta")));
    // Fully-remote query: hard error.
    assert!(g.sites[0]
        .layer
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node00.beta/public",
            "SELECT Hostname FROM Processor",
        ))
        .is_err());
}

#[test]
fn ping_and_directory() {
    let g = grid(&["alpha", "beta"]);
    assert!(g.sites[0].layer.ping("gw-beta"));
    assert!(!g.sites[0].layer.ping("gw-nowhere"));
    assert_eq!(g.directory.producers().len(), 2);
}

#[test]
fn wan_latency_accrues_on_remote_queries() {
    let g = grid(&["alpha", "beta"]);
    g.net
        .set_latency("gw.alpha:gma", "gw.beta:gma", Latency::ms(40, 0));
    g.sites[0]
        .layer
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node00.beta/public",
            "SELECT Hostname FROM Processor",
        ))
        .unwrap();
    let link = g.net.stats_for("gw.alpha:gma", "gw.beta:gma").snapshot();
    assert_eq!(link.requests, 1);
    assert_eq!(link.latency_us, 80_000); // 40 ms each way
}
