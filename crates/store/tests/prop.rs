//! Property tests: the store's query engine agrees with naive reference
//! computations over the same rows.

use gridrm_sqlparse::SqlValue;
use gridrm_store::Database;
use proptest::prelude::*;

fn db_with_rows(rows: &[(i64, f64, &str)]) -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (id INTEGER, v REAL, tag TEXT)", 0)
        .unwrap();
    for (id, v, tag) in rows {
        db.execute_sql(&format!("INSERT INTO t VALUES ({id}, {v}, '{tag}')"), 0)
            .unwrap();
    }
    db
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, f64, &'static str)>> {
    prop::collection::vec(
        (
            0i64..1000,
            -100.0f64..100.0,
            prop::sample::select(vec!["a", "b", "c"]),
        ),
        0..40,
    )
}

proptest! {
    /// WHERE v > t matches a manual filter.
    #[test]
    fn where_matches_reference(rows in arb_rows(), threshold in -100.0f64..100.0) {
        let mut db = db_with_rows(&rows);
        let got = db
            .execute_sql(&format!("SELECT COUNT(*) FROM t WHERE v > {threshold}"), 0)
            .unwrap()
            .rows();
        let expected = rows.iter().filter(|(_, v, _)| *v > threshold).count() as i64;
        prop_assert_eq!(&got.rows()[0][0], &SqlValue::Int(expected));
    }

    /// ORDER BY v ASC yields a non-decreasing sequence with the same
    /// multiset of values.
    #[test]
    fn order_by_sorts(rows in arb_rows()) {
        let mut db = db_with_rows(&rows);
        let got = db
            .execute_sql("SELECT v FROM t ORDER BY v", 0)
            .unwrap()
            .rows();
        let values: Vec<f64> = got.rows().iter().map(|r| r[0].as_f64().unwrap()).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut expected: Vec<f64> = rows.iter().map(|(_, v, _)| *v).collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(values.len(), expected.len());
        for (a, b) in values.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// LIMIT/OFFSET slice like a vector slice.
    #[test]
    fn limit_offset_slices(rows in arb_rows(), limit in 0u64..20, offset in 0u64..20) {
        let mut db = db_with_rows(&rows);
        let got = db
            .execute_sql(
                &format!("SELECT id FROM t ORDER BY id, v LIMIT {limit} OFFSET {offset}"),
                0,
            )
            .unwrap()
            .rows();
        let mut expected: Vec<i64> = rows.iter().map(|(id, _, _)| *id).collect();
        expected.sort();
        let lo = (offset as usize).min(expected.len());
        let hi = (lo + limit as usize).min(expected.len());
        let expected = &expected[lo..hi];
        let got_ids: Vec<i64> = got.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got_ids, expected.to_vec());
    }

    /// SUM/AVG/MIN/MAX agree with manual computation.
    #[test]
    fn aggregates_match_reference(rows in arb_rows()) {
        prop_assume!(!rows.is_empty());
        let mut db = db_with_rows(&rows);
        let got = db
            .execute_sql("SELECT SUM(v), AVG(v), MIN(v), MAX(v) FROM t", 0)
            .unwrap()
            .rows();
        let vs: Vec<f64> = rows.iter().map(|(_, v, _)| *v).collect();
        let sum: f64 = vs.iter().sum();
        let avg = sum / vs.len() as f64;
        let min = vs.iter().cloned().fold(f64::MAX, f64::min);
        let max = vs.iter().cloned().fold(f64::MIN, f64::max);
        let row = &got.rows()[0];
        prop_assert!((row[0].as_f64().unwrap() - sum).abs() < 1e-6);
        prop_assert!((row[1].as_f64().unwrap() - avg).abs() < 1e-6);
        prop_assert!((row[2].as_f64().unwrap() - min).abs() < 1e-12);
        prop_assert!((row[3].as_f64().unwrap() - max).abs() < 1e-12);
    }

    /// DELETE + COUNT bookkeeping: rows deleted + rows remaining = total.
    #[test]
    fn delete_conserves_rows(rows in arb_rows(), threshold in -100.0f64..100.0) {
        let mut db = db_with_rows(&rows);
        let deleted = db
            .execute_sql(&format!("DELETE FROM t WHERE v <= {threshold}"), 0)
            .unwrap()
            .affected()
            .unwrap();
        let remaining = db
            .execute_sql("SELECT COUNT(*) FROM t", 0)
            .unwrap()
            .rows()
            .rows()[0][0]
            .as_i64()
            .unwrap() as usize;
        prop_assert_eq!(deleted + remaining, rows.len());
        // Everything left satisfies the negated predicate.
        let still_bad = db
            .execute_sql(&format!("SELECT COUNT(*) FROM t WHERE v <= {threshold}"), 0)
            .unwrap()
            .rows();
        prop_assert_eq!(&still_bad.rows()[0][0], &SqlValue::Int(0));
    }

    /// UPDATE affects exactly the rows the predicate selects.
    #[test]
    fn update_targets_predicate(rows in arb_rows(), tag in prop::sample::select(vec!["a", "b", "c"])) {
        let mut db = db_with_rows(&rows);
        let updated = db
            .execute_sql(&format!("UPDATE t SET v = 0 WHERE tag = '{tag}'"), 0)
            .unwrap()
            .affected()
            .unwrap();
        let expected = rows.iter().filter(|(_, _, t)| *t == tag).count();
        prop_assert_eq!(updated, expected);
        let zeros = db
            .execute_sql(&format!("SELECT COUNT(*) FROM t WHERE tag = '{tag}' AND v = 0"), 0)
            .unwrap()
            .rows();
        prop_assert_eq!(&zeros.rows()[0][0], &SqlValue::Int(expected as i64));
    }

    /// DISTINCT returns the set of distinct tags.
    #[test]
    fn distinct_matches_set(rows in arb_rows()) {
        let mut db = db_with_rows(&rows);
        let got = db
            .execute_sql("SELECT DISTINCT tag FROM t", 0)
            .unwrap()
            .rows();
        let mut expected: Vec<&str> = rows.iter().map(|(_, _, t)| *t).collect();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(got.len(), expected.len());
    }
}
