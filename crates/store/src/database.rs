//! The database container and its thread-safe wrapper.

use crate::exec::{self, ExecOutcome};
use crate::table::{StoreError, Table};
use gridrm_dbc::RowSet;
use gridrm_sqlparse::{parse, Statement};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A single-threaded database: a named collection of tables.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Does a table exist (case-insensitive)?
    pub fn has_table(&self, name: &str) -> bool {
        self.lookup(name).is_some()
    }

    fn lookup(&self, name: &str) -> Option<&String> {
        self.tables.keys().find(|k| k.eq_ignore_ascii_case(name))
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        let key = self
            .lookup(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))?
            .clone();
        Ok(&self.tables[&key])
    }

    /// Borrow a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        let key = self
            .lookup(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))?
            .clone();
        Ok(self.tables.get_mut(&key).expect("key just resolved"))
    }

    /// Add a table (replacing any same-named one).
    pub fn create_table(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Remove a table; returns whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        match self.lookup(name).cloned() {
            Some(key) => {
                self.tables.remove(&key);
                true
            }
            None => false,
        }
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Execute a parsed statement. `now` feeds `NOW()`.
    pub fn execute(&mut self, stmt: &Statement, now: i64) -> Result<ExecOutcome, StoreError> {
        exec::execute(self, stmt, now)
    }

    /// Parse and execute SQL text.
    pub fn execute_sql(&mut self, sql: &str, now: i64) -> Result<ExecOutcome, StoreError> {
        let stmt = parse(sql).map_err(|e| StoreError::Query(e.to_string()))?;
        self.execute(&stmt, now)
    }

    /// Retention sweep: delete rows of `table` whose `time_column` is older
    /// than `cutoff_ms`. Returns the number of rows removed. Used by the
    /// gateway to bound history growth.
    pub fn retain_since(
        &mut self,
        table: &str,
        time_column: &str,
        cutoff_ms: i64,
    ) -> Result<usize, StoreError> {
        let t = self.table_mut(table)?;
        let idx = t
            .column_index(time_column)
            .ok_or_else(|| StoreError::NoSuchColumn(time_column.to_owned()))?;
        let before = t.rows.len();
        t.rows.retain(|row| match row[idx].as_i64() {
            Some(ts) => ts >= cutoff_ms,
            None => true, // keep rows with NULL timestamps
        });
        Ok(before - t.rows.len())
    }
}

/// Thread-safe handle shared across gateway components.
#[derive(Clone, Default)]
pub struct Store {
    inner: Arc<Mutex<Database>>,
}

impl Store {
    /// Fresh empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Run a closure with the locked database.
    pub fn with<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Parse and execute SQL.
    pub fn execute_sql(&self, sql: &str, now: i64) -> Result<ExecOutcome, StoreError> {
        self.inner.lock().execute_sql(sql, now)
    }

    /// Convenience: run a SELECT and get the rows.
    pub fn query(&self, sql: &str, now: i64) -> Result<RowSet, StoreError> {
        match self.execute_sql(sql, now)? {
            ExecOutcome::Rows(r) => Ok(r),
            _ => Err(StoreError::Query("statement did not produce rows".into())),
        }
    }

    /// Retention sweep (see [`Database::retain_since`]).
    pub fn retain_since(
        &self,
        table: &str,
        time_column: &str,
        cutoff_ms: i64,
    ) -> Result<usize, StoreError> {
        self.inner
            .lock()
            .retain_since(table, time_column, cutoff_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::ResultSet;
    use gridrm_sqlparse::SqlValue;

    fn db_with_data() -> Database {
        let mut db = Database::new();
        db.execute_sql(
            "CREATE TABLE metrics (host TEXT, metric TEXT, value REAL, at TIMESTAMP)",
            0,
        )
        .unwrap();
        for (host, metric, value, at) in [
            ("node01", "load1", 0.5, 1000i64),
            ("node01", "load1", 0.9, 2000),
            ("node02", "load1", 1.5, 2000),
            ("node01", "mem", 512.0, 2000),
            ("node02", "load1", 2.5, 3000),
        ] {
            db.execute_sql(
                &format!("INSERT INTO metrics VALUES ('{host}', '{metric}', {value}, {at})"),
                0,
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn select_where_order_limit() {
        let mut db = db_with_data();
        let rows = db
            .execute_sql(
                "SELECT host, value FROM metrics WHERE metric = 'load1' ORDER BY value DESC LIMIT 2",
                0,
            )
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.rows()[0][1], SqlValue::Float(2.5));
        assert_eq!(rows.rows()[1][1], SqlValue::Float(1.5));
    }

    #[test]
    fn select_star_preserves_declared_types() {
        let mut db = db_with_data();
        let rows = db
            .execute_sql("SELECT * FROM metrics LIMIT 1", 0)
            .unwrap()
            .rows();
        let meta = rows.meta();
        assert_eq!(meta.column_name(0).unwrap(), "host");
        assert_eq!(
            meta.column_type(3).unwrap(),
            gridrm_sqlparse::SqlType::Timestamp
        );
    }

    #[test]
    fn aggregates() {
        let mut db = db_with_data();
        let rows = db
            .execute_sql(
                "SELECT COUNT(*) AS n, AVG(value) AS avg, MIN(value) AS lo, MAX(value) AS hi \
                 FROM metrics WHERE metric = 'load1'",
                0,
            )
            .unwrap()
            .rows();
        assert_eq!(rows.rows()[0][0], SqlValue::Int(4));
        let SqlValue::Float(avg) = rows.rows()[0][1] else {
            panic!()
        };
        assert!((avg - 1.35).abs() < 1e-9);
        assert_eq!(rows.rows()[0][2], SqlValue::Float(0.5));
        assert_eq!(rows.rows()[0][3], SqlValue::Float(2.5));
    }

    #[test]
    fn aggregate_expression() {
        let mut db = db_with_data();
        let rows = db
            .execute_sql(
                "SELECT MAX(value) - MIN(value) AS range FROM metrics WHERE metric = 'load1'",
                0,
            )
            .unwrap()
            .rows();
        assert_eq!(rows.rows()[0][0], SqlValue::Float(2.0));
    }

    #[test]
    fn count_on_empty_filter() {
        let mut db = db_with_data();
        let rows = db
            .execute_sql(
                "SELECT COUNT(*), SUM(value) FROM metrics WHERE host = 'ghost'",
                0,
            )
            .unwrap()
            .rows();
        assert_eq!(rows.rows()[0][0], SqlValue::Int(0));
        assert_eq!(rows.rows()[0][1], SqlValue::Null);
    }

    #[test]
    fn distinct() {
        let mut db = db_with_data();
        let rows = db
            .execute_sql("SELECT DISTINCT host FROM metrics ORDER BY host", 0)
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn expression_projection() {
        let mut db = db_with_data();
        let rows = db
            .execute_sql(
                "SELECT value * 100 AS pct FROM metrics WHERE metric = 'mem'",
                0,
            )
            .unwrap()
            .rows();
        assert_eq!(rows.rows()[0][0], SqlValue::Float(51200.0));
    }

    #[test]
    fn update_and_delete() {
        let mut db = db_with_data();
        let n = db
            .execute_sql(
                "UPDATE metrics SET value = value + 1 WHERE host = 'node01'",
                0,
            )
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 3);
        let n = db
            .execute_sql("DELETE FROM metrics WHERE at < 2000", 0)
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 1);
        let rows = db
            .execute_sql("SELECT COUNT(*) FROM metrics", 0)
            .unwrap()
            .rows();
        assert_eq!(rows.rows()[0][0], SqlValue::Int(4));
    }

    #[test]
    fn multi_row_insert_atomic_on_failure() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)", 0)
            .unwrap();
        db.execute_sql("INSERT INTO t VALUES (1, 'a')", 0).unwrap();
        // Second tuple violates the PK; nothing from this statement stays.
        let err = db
            .execute_sql("INSERT INTO t VALUES (2, 'b'), (1, 'dup'), (3, 'c')", 0)
            .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey(_)));
        let rows = db.execute_sql("SELECT COUNT(*) FROM t", 0).unwrap().rows();
        assert_eq!(rows.rows()[0][0], SqlValue::Int(1));
    }

    #[test]
    fn create_if_not_exists_and_drop() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (a INTEGER)", 0).unwrap();
        assert!(db.execute_sql("CREATE TABLE t (a INTEGER)", 0).is_err());
        db.execute_sql("CREATE TABLE IF NOT EXISTS t (a INTEGER)", 0)
            .unwrap();
        db.execute_sql("DROP TABLE t", 0).unwrap();
        assert!(db.execute_sql("DROP TABLE t", 0).is_err());
        db.execute_sql("DROP TABLE IF EXISTS t", 0).unwrap();
    }

    #[test]
    fn retention_sweep() {
        let mut db = db_with_data();
        let removed = db.retain_since("metrics", "at", 2000).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(db.table("metrics").unwrap().len(), 4);
    }

    #[test]
    fn now_function_uses_supplied_clock() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (at TIMESTAMP)", 0).unwrap();
        db.execute_sql("INSERT INTO t VALUES (NOW())", 123_456)
            .unwrap();
        let rows = db.execute_sql("SELECT at FROM t", 0).unwrap().rows();
        assert_eq!(rows.rows()[0][0], SqlValue::Timestamp(123_456));
    }

    #[test]
    fn where_on_now_relative_window() {
        let mut db = db_with_data();
        let rows = db
            .execute_sql("SELECT * FROM metrics WHERE at > NOW() - 1500", 2500)
            .unwrap()
            .rows();
        // NOW()=2500, cutoff 1000 exclusive → rows at 2000 and 3000 qualify.
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = Store::new();
        store
            .execute_sql("CREATE TABLE t (id INTEGER, v REAL)", 0)
            .unwrap();
        std::thread::scope(|s| {
            for i in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for j in 0..50 {
                        store
                            .execute_sql(
                                &format!("INSERT INTO t VALUES ({}, {j}.0)", i * 1000 + j),
                                0,
                            )
                            .unwrap();
                    }
                });
            }
        });
        let rows = store.query("SELECT COUNT(*) FROM t", 0).unwrap();
        assert_eq!(rows.rows()[0][0], SqlValue::Int(200));
    }

    #[test]
    fn rowset_cursor_integration() {
        let mut db = db_with_data();
        let mut rs = db
            .execute_sql("SELECT host, value FROM metrics WHERE metric = 'mem'", 0)
            .unwrap()
            .rows();
        assert!(rs.advance().unwrap());
        assert_eq!(rs.get_string_by_name("host").unwrap(), "node01");
        assert_eq!(rs.get_f64_by_name("value").unwrap(), 512.0);
        assert!(!rs.advance().unwrap());
    }

    #[test]
    fn error_on_unknown_table_or_column() {
        let mut db = db_with_data();
        assert!(matches!(
            db.execute_sql("SELECT * FROM nope", 0),
            Err(StoreError::NoSuchTable(_))
        ));
        assert!(db.execute_sql("SELECT nope FROM metrics", 0).is_err());
    }
}
