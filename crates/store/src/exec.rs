//! Statement execution against a [`crate::Database`].

use crate::table::{StoreError, Table};
use gridrm_dbc::{ColumnMeta, ResultSetMetaData, RowSet};
use gridrm_sqlparse::ast::{Expr, Projection, SelectStatement, Statement};
use gridrm_sqlparse::eval::is_aggregate;
use gridrm_sqlparse::{EvalContext, Evaluator, SqlType, SqlValue};

/// The result of executing a statement.
#[derive(Debug)]
pub enum ExecOutcome {
    /// `SELECT` produced rows.
    Rows(RowSet),
    /// DML affected this many rows.
    Affected(usize),
    /// DDL succeeded.
    Done,
}

impl ExecOutcome {
    /// Unwrap the row set (panics on DML/DDL outcomes — test helper).
    pub fn rows(self) -> RowSet {
        match self {
            ExecOutcome::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// The affected-row count, if DML.
    pub fn affected(&self) -> Option<usize> {
        match self {
            ExecOutcome::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

/// Run a `SELECT` over an ad-hoc in-memory table.
///
/// This is the query-execution engine the data-source drivers reuse: after
/// translating native agent data into GLUE rows, a driver builds a
/// transient [`Table`] (columns = the GLUE group's attributes) and lets
/// this function apply `WHERE`/projection/`ORDER BY`/`LIMIT`/aggregates —
/// so every driver supports full SELECT semantics for free.
pub fn select_in_memory(
    table: &Table,
    sel: &SelectStatement,
    now: i64,
) -> Result<RowSet, StoreError> {
    execute_select(table, sel, now)
}

/// Row context over a table's columns.
struct RowCtx<'a> {
    table: &'a Table,
    row: &'a [SqlValue],
    now: i64,
}

impl EvalContext for RowCtx<'_> {
    fn get(&self, column: &str) -> Option<SqlValue> {
        self.table.column_index(column).map(|i| self.row[i].clone())
    }
    fn now_millis(&self) -> i64 {
        self.now
    }
}

/// Execute a SELECT against one table.
pub(crate) fn execute_select(
    table: &Table,
    sel: &SelectStatement,
    now: i64,
) -> Result<RowSet, StoreError> {
    let ev = Evaluator;

    // 1. filter
    let mut matching: Vec<&Vec<SqlValue>> = Vec::new();
    for row in &table.rows {
        let ctx = RowCtx { table, row, now };
        let keep = match &sel.where_clause {
            Some(w) => ev
                .matches(w, &ctx)
                .map_err(|e| StoreError::Query(e.to_string()))?,
            None => true,
        };
        if keep {
            matching.push(row);
        }
    }

    // 2. aggregate or project
    let items: Vec<(Expr, String)> = match &sel.projection {
        Projection::Star => table
            .columns
            .iter()
            .map(|c| (Expr::col(c.name.clone()), c.name.clone()))
            .collect(),
        Projection::Items(items) => items
            .iter()
            .map(|i| (i.expr.clone(), i.output_name()))
            .collect(),
    };

    if !sel.group_by.is_empty() {
        return execute_grouped(table, sel, &items, &matching, now);
    }

    let has_aggregate = items.iter().any(|(e, _)| contains_aggregate(e));
    if has_aggregate {
        let row: Vec<SqlValue> = items
            .iter()
            .map(|(e, _)| eval_aggregate(table, &matching, e, now))
            .collect::<Result<_, _>>()?;
        let meta = ResultSetMetaData::new(
            items
                .iter()
                .zip(&row)
                .map(|((_, name), v)| ColumnMeta::new(name.clone(), v.sql_type()))
                .collect(),
        );
        return RowSet::new(meta, vec![row]).map_err(|e| StoreError::Query(e.to_string()));
    }

    // 3. order by (on the raw rows, before projection, like SQL).
    let mut ordered: Vec<&Vec<SqlValue>> = matching;
    if !sel.order_by.is_empty() {
        let mut keyed: Vec<(Vec<SqlValue>, &Vec<SqlValue>)> = Vec::with_capacity(ordered.len());
        for row in ordered {
            let ctx = RowCtx { table, row, now };
            let mut keys = Vec::with_capacity(sel.order_by.len());
            for ob in &sel.order_by {
                keys.push(
                    ev.eval(&ob.expr, &ctx)
                        .map_err(|e| StoreError::Query(e.to_string()))?,
                );
            }
            keyed.push((keys, row));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, ob) in sel.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if ob.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        ordered = keyed.into_iter().map(|(_, r)| r).collect();
    }

    // 4. project
    let mut out_rows: Vec<Vec<SqlValue>> = Vec::with_capacity(ordered.len());
    for row in &ordered {
        let ctx = RowCtx { table, row, now };
        let mut out = Vec::with_capacity(items.len());
        for (e, _) in &items {
            out.push(
                ev.eval(e, &ctx)
                    .map_err(|err| StoreError::Query(err.to_string()))?,
            );
        }
        out_rows.push(out);
    }

    finalize_select(table, sel, &items, out_rows)
}

/// Shared SELECT tail: DISTINCT, OFFSET/LIMIT, and result metadata
/// (declared column types where the projection is a plain column,
/// inferred from the first row otherwise).
fn finalize_select(
    table: &Table,
    sel: &SelectStatement,
    items: &[(Expr, String)],
    mut out_rows: Vec<Vec<SqlValue>>,
) -> Result<RowSet, StoreError> {
    if sel.distinct {
        let mut seen: Vec<Vec<SqlValue>> = Vec::new();
        out_rows.retain(|row| {
            if seen.iter().any(|s| s == row) {
                false
            } else {
                seen.push(row.clone());
                true
            }
        });
    }

    let offset = sel.offset.unwrap_or(0) as usize;
    if offset > 0 {
        out_rows.drain(..offset.min(out_rows.len()));
    }
    if let Some(limit) = sel.limit {
        out_rows.truncate(limit as usize);
    }

    let meta = ResultSetMetaData::new(
        items
            .iter()
            .enumerate()
            .map(|(i, (e, name))| {
                let ty = match e {
                    Expr::Column { name: c, .. } => table
                        .column_index(c)
                        .map(|idx| table.columns[idx].ty)
                        .unwrap_or(SqlType::Null),
                    _ => out_rows
                        .first()
                        .map(|r| r[i].sql_type())
                        .unwrap_or(SqlType::Null),
                };
                ColumnMeta::new(name.clone(), ty).with_table(table.name.clone())
            })
            .collect(),
    );
    RowSet::new(meta, out_rows).map_err(|e| StoreError::Query(e.to_string()))
}

/// `GROUP BY` execution: one output row per distinct key vector, each
/// projection item evaluated per group (aggregates over the group's
/// rows, scalars against its first row, SQLite-style leniency — which
/// covers the group key expression itself).
///
/// `ORDER BY` over grouped output must reference projected columns (by
/// alias or by structural expression match) since the pre-aggregation
/// rows no longer exist when sorting happens.
fn execute_grouped(
    table: &Table,
    sel: &SelectStatement,
    items: &[(Expr, String)],
    matching: &[&Vec<SqlValue>],
    now: i64,
) -> Result<RowSet, StoreError> {
    let ev = Evaluator;
    let mut out_rows = match time_bucket_fast_path(table, sel, items, matching) {
        Some(rows) => rows,
        None => {
            // Generic path: evaluate the key vector per row, sort rows
            // by key, then aggregate each contiguous run.
            let mut keyed: Vec<(Vec<SqlValue>, &Vec<SqlValue>)> =
                Vec::with_capacity(matching.len());
            for row in matching {
                let ctx = RowCtx { table, row, now };
                let mut keys = Vec::with_capacity(sel.group_by.len());
                for g in &sel.group_by {
                    keys.push(
                        ev.eval(g, &ctx)
                            .map_err(|e| StoreError::Query(e.to_string()))?,
                    );
                }
                keyed.push((keys, row));
            }
            let key_cmp = |a: &[SqlValue], b: &[SqlValue]| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| x.total_cmp(y))
                    .find(|o| *o != std::cmp::Ordering::Equal)
                    .unwrap_or(std::cmp::Ordering::Equal)
            };
            keyed.sort_by(|(ka, _), (kb, _)| key_cmp(ka, kb));
            let mut out = Vec::new();
            let mut i = 0;
            while i < keyed.len() {
                let mut j = i + 1;
                while j < keyed.len()
                    && key_cmp(&keyed[j].0, &keyed[i].0) == std::cmp::Ordering::Equal
                {
                    j += 1;
                }
                let group: Vec<&Vec<SqlValue>> = keyed[i..j].iter().map(|(_, r)| *r).collect();
                let row: Vec<SqlValue> = items
                    .iter()
                    .map(|(e, _)| eval_aggregate(table, &group, e, now))
                    .collect::<Result<_, _>>()?;
                out.push(row);
                i = j;
            }
            out
        }
    };

    if !sel.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = sel
            .order_by
            .iter()
            .map(|ob| {
                output_sort_index(items, &ob.expr)
                    .map(|i| (i, ob.desc))
                    .ok_or_else(|| {
                        StoreError::Unsupported(
                            "ORDER BY in a grouped query must reference a projected column"
                                .to_owned(),
                        )
                    })
            })
            .collect::<Result<_, _>>()?;
        out_rows.sort_by(|a, b| {
            for (i, desc) in &keys {
                let ord = a[*i].total_cmp(&b[*i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    finalize_select(table, sel, items, out_rows)
}

/// Match an `ORDER BY` expression to an output column of a grouped
/// query: by alias name first, then by structural expression equality.
fn output_sort_index(items: &[(Expr, String)], ob: &Expr) -> Option<usize> {
    if let Expr::Column { name, .. } = ob {
        if let Some(i) = items.iter().position(|(_, n)| n == name) {
            return Some(i);
        }
    }
    items.iter().position(|(e, _)| e == ob)
}

/// What a projection item computes in the TIME_BUCKET fast path.
enum FastItem {
    /// The bucket key itself.
    Bucket,
    /// `COUNT(*)`.
    CountStar,
    /// An aggregate over one plain column.
    Count(usize),
    Sum(usize),
    Avg(usize),
    Min(usize),
    Max(usize),
}

/// Columnar fast path for the canonical time-series rollup:
/// `GROUP BY TIME_BUCKET(<int literal>, <ts column>)` with projections
/// that are the bucket expression or plain-column aggregates. Buckets
/// are computed in one tight pass over the timestamp column, rows are
/// sorted by bucket, and every aggregate runs as a per-column loop over
/// each bucket's run — no per-row expression evaluation. Returns `None`
/// whenever the query shape (or the data: a null/mistyped timestamp)
/// doesn't fit, falling back to the generic grouped path.
fn time_bucket_fast_path(
    table: &Table,
    sel: &SelectStatement,
    items: &[(Expr, String)],
    matching: &[&Vec<SqlValue>],
) -> Option<Vec<Vec<SqlValue>>> {
    let [group] = sel.group_by.as_slice() else {
        return None;
    };
    let Expr::Function { name, args, star } = group else {
        return None;
    };
    if *star || name != "TIME_BUCKET" || args.len() != 2 {
        return None;
    }
    let Expr::Literal(SqlValue::Int(width)) = &args[0] else {
        return None;
    };
    let width = *width;
    if width <= 0 {
        return None; // generic path surfaces the DivisionByZero
    }
    let Expr::Column { name: ts_col, .. } = &args[1] else {
        return None;
    };
    let ts_idx = table.column_index(ts_col)?;
    let bucket_is_timestamp = table.columns[ts_idx].ty == SqlType::Timestamp;

    let plan: Vec<FastItem> = items
        .iter()
        .map(|(e, _)| {
            if e == group {
                return Some(FastItem::Bucket);
            }
            let Expr::Function { name, args, star } = e else {
                return None;
            };
            if *star {
                return (name == "COUNT").then_some(FastItem::CountStar);
            }
            let [Expr::Column { name: col, .. }] = args.as_slice() else {
                return None;
            };
            let idx = table.column_index(col)?;
            match name.as_str() {
                "COUNT" => Some(FastItem::Count(idx)),
                "SUM" => Some(FastItem::Sum(idx)),
                "AVG" => Some(FastItem::Avg(idx)),
                "MIN" => Some(FastItem::Min(idx)),
                "MAX" => Some(FastItem::Max(idx)),
                _ => None,
            }
        })
        .collect::<Option<_>>()?;

    // Tight pass over the timestamp column: bucket key per row.
    let mut keyed: Vec<(i64, u32)> = Vec::with_capacity(matching.len());
    for (i, row) in matching.iter().enumerate() {
        match row[ts_idx] {
            SqlValue::Int(t) | SqlValue::Timestamp(t) => {
                keyed.push((t.div_euclid(width) * width, i as u32));
            }
            _ => return None,
        }
    }
    keyed.sort_unstable();

    let mut out = Vec::new();
    let mut i = 0;
    while i < keyed.len() {
        let bucket = keyed[i].0;
        let mut j = i + 1;
        while j < keyed.len() && keyed[j].0 == bucket {
            j += 1;
        }
        let run = &keyed[i..j];
        let row: Vec<SqlValue> = plan
            .iter()
            .map(|item| fast_aggregate(item, run, matching, bucket, bucket_is_timestamp))
            .collect();
        out.push(row);
        i = j;
    }
    Some(out)
}

/// One aggregate over one bucket's run of rows — a per-column loop
/// touching only the aggregated column's cells.
fn fast_aggregate(
    item: &FastItem,
    run: &[(i64, u32)],
    matching: &[&Vec<SqlValue>],
    bucket: i64,
    bucket_is_timestamp: bool,
) -> SqlValue {
    let col = match item {
        FastItem::Bucket => {
            return if bucket_is_timestamp {
                SqlValue::Timestamp(bucket)
            } else {
                SqlValue::Int(bucket)
            };
        }
        FastItem::CountStar => return SqlValue::Int(run.len() as i64),
        FastItem::Count(c)
        | FastItem::Sum(c)
        | FastItem::Avg(c)
        | FastItem::Min(c)
        | FastItem::Max(c) => *c,
    };
    match item {
        FastItem::Count(_) => {
            let n = run
                .iter()
                .filter(|(_, r)| !matching[*r as usize][col].is_null())
                .count();
            SqlValue::Int(n as i64)
        }
        FastItem::Sum(_) => {
            let (mut sum_i, mut sum_f, mut n, mut all_int) = (0i64, 0.0f64, 0usize, true);
            for (_, r) in run {
                match &matching[*r as usize][col] {
                    SqlValue::Int(v) => {
                        sum_i = sum_i.wrapping_add(*v);
                        sum_f += *v as f64;
                        n += 1;
                    }
                    SqlValue::Null => {}
                    other => {
                        all_int = false;
                        if let Some(f) = other.as_f64() {
                            sum_f += f;
                            n += 1;
                        }
                    }
                }
            }
            if n == 0 {
                SqlValue::Null
            } else if all_int {
                SqlValue::Int(sum_i)
            } else {
                SqlValue::Float(sum_f)
            }
        }
        FastItem::Avg(_) => {
            let (mut sum, mut n) = (0.0f64, 0usize);
            for (_, r) in run {
                let v = &matching[*r as usize][col];
                if !v.is_null() {
                    if let Some(f) = v.as_f64() {
                        sum += f;
                        n += 1;
                    }
                }
            }
            if n == 0 {
                SqlValue::Null
            } else {
                SqlValue::Float(sum / n as f64)
            }
        }
        FastItem::Min(_) | FastItem::Max(_) => {
            let want_min = matches!(item, FastItem::Min(_));
            let mut best: Option<&SqlValue> = None;
            for (_, r) in run {
                let v = &matching[*r as usize][col];
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = if want_min {
                            v.total_cmp(b) == std::cmp::Ordering::Less
                        } else {
                            v.total_cmp(b) == std::cmp::Ordering::Greater
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.cloned().unwrap_or(SqlValue::Null)
        }
        FastItem::Bucket | FastItem::CountStar => unreachable!("handled above"),
    }
}

fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Function { name, args, .. } => {
            is_aggregate(name) || args.iter().any(contains_aggregate)
        }
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Not(e) | Expr::Neg(e) => contains_aggregate(e),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        _ => false,
    }
}

fn eval_aggregate(
    table: &Table,
    rows: &[&Vec<SqlValue>],
    e: &Expr,
    now: i64,
) -> Result<SqlValue, StoreError> {
    match e {
        Expr::Function { name, args, star } if is_aggregate(name) => {
            if *star {
                if name == "COUNT" {
                    return Ok(SqlValue::Int(rows.len() as i64));
                }
                return Err(StoreError::Unsupported(format!("{name}(*)")));
            }
            let arg = args
                .first()
                .ok_or_else(|| StoreError::Query(format!("{name} needs an argument")))?;
            let ev = Evaluator;
            let mut values = Vec::with_capacity(rows.len());
            for row in rows {
                let ctx = RowCtx { table, row, now };
                let v = ev
                    .eval(arg, &ctx)
                    .map_err(|err| StoreError::Query(err.to_string()))?;
                if !v.is_null() {
                    values.push(v);
                }
            }
            Ok(match name.as_str() {
                "COUNT" => SqlValue::Int(values.len() as i64),
                "SUM" => {
                    if values.is_empty() {
                        SqlValue::Null
                    } else if values.iter().all(|v| matches!(v, SqlValue::Int(_))) {
                        SqlValue::Int(values.iter().filter_map(SqlValue::as_i64).sum())
                    } else {
                        SqlValue::Float(values.iter().filter_map(SqlValue::as_f64).sum())
                    }
                }
                "AVG" => {
                    if values.is_empty() {
                        SqlValue::Null
                    } else {
                        let sum: f64 = values.iter().filter_map(SqlValue::as_f64).sum();
                        SqlValue::Float(sum / values.len() as f64)
                    }
                }
                "MIN" => values
                    .into_iter()
                    .min_by(|a, b| a.total_cmp(b))
                    .unwrap_or(SqlValue::Null),
                "MAX" => values
                    .into_iter()
                    .max_by(|a, b| a.total_cmp(b))
                    .unwrap_or(SqlValue::Null),
                other => return Err(StoreError::Unsupported(other.to_owned())),
            })
        }
        // Scalar wrapper around an aggregate, e.g. `AVG(x) * 2`: evaluate
        // the aggregate sub-expressions first via substitution.
        Expr::Binary { left, op, right } => {
            let l = eval_aggregate(table, rows, left, now)?;
            let r = eval_aggregate(table, rows, right, now)?;
            let ev = Evaluator;
            let expr = Expr::bin(Expr::Literal(l), *op, Expr::Literal(r));
            ev.eval(&expr, &gridrm_sqlparse::MapContext::new())
                .map_err(|err| StoreError::Query(err.to_string()))
        }
        Expr::Literal(v) => Ok(v.clone()),
        other => {
            if contains_aggregate(other) {
                Err(StoreError::Unsupported(
                    "complex aggregate expression".to_owned(),
                ))
            } else {
                // Non-aggregate item alongside aggregates: evaluate against
                // the first row, SQLite-style leniency.
                let ev = Evaluator;
                match rows.first() {
                    Some(row) => ev
                        .eval(other, &RowCtx { table, row, now })
                        .map_err(|err| StoreError::Query(err.to_string())),
                    None => Ok(SqlValue::Null),
                }
            }
        }
    }
}

/// Execute any statement against a database (crate-internal; the public
/// entry is [`crate::Database::execute`]).
pub(crate) fn execute(
    db: &mut crate::database::Database,
    stmt: &Statement,
    now: i64,
) -> Result<ExecOutcome, StoreError> {
    match stmt {
        Statement::Select(sel) => {
            let table = db.table(&sel.table)?;
            Ok(ExecOutcome::Rows(execute_select(table, sel, now)?))
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let ev = Evaluator;
            let empty = gridrm_sqlparse::MapContext::new().with_now(now);
            // Evaluate all value expressions before touching the table so a
            // failure can't leave a partial multi-row insert behind.
            let mut evaluated = Vec::with_capacity(rows.len());
            for row in rows {
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    vals.push(
                        ev.eval(e, &empty)
                            .map_err(|err| StoreError::Query(err.to_string()))?,
                    );
                }
                evaluated.push(vals);
            }
            let t = db.table_mut(table)?;
            let snapshot_len = t.rows.len();
            let mut inserted = 0;
            for vals in evaluated {
                if let Err(e) = t.insert(columns, vals) {
                    t.rows.truncate(snapshot_len);
                    return Err(e);
                }
                inserted += 1;
            }
            Ok(ExecOutcome::Affected(inserted))
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let t = db.table_mut(table)?;
            let ev = Evaluator;
            let before = t.rows.len();
            match where_clause {
                None => t.rows.clear(),
                Some(w) => {
                    let mut err = None;
                    let t_ref: &Table = t;
                    let keep: Vec<bool> = t_ref
                        .rows
                        .iter()
                        .map(|row| {
                            let ctx = RowCtx {
                                table: t_ref,
                                row,
                                now,
                            };
                            match ev.matches(w, &ctx) {
                                Ok(m) => !m,
                                Err(e) => {
                                    err = Some(StoreError::Query(e.to_string()));
                                    true
                                }
                            }
                        })
                        .collect();
                    if let Some(e) = err {
                        return Err(e);
                    }
                    let mut it = keep.iter();
                    t.rows.retain(|_| *it.next().unwrap());
                }
            }
            Ok(ExecOutcome::Affected(before - t.rows.len()))
        }
        Statement::Update {
            table,
            assignments,
            where_clause,
        } => {
            let t = db.table_mut(table)?;
            let ev = Evaluator;
            // Resolve assignment target indices first.
            let targets: Vec<(usize, &Expr)> = assignments
                .iter()
                .map(|(c, e)| {
                    t.column_index(c)
                        .map(|i| (i, e))
                        .ok_or_else(|| StoreError::NoSuchColumn(c.clone()))
                })
                .collect::<Result<_, _>>()?;
            let mut updated = 0;
            let columns = t.columns.clone();
            let name = t.name.clone();
            for row in &mut t.rows {
                let snapshot_table = Table {
                    name: name.clone(),
                    columns: columns.clone(),
                    rows: Vec::new(),
                };
                let ctx = RowCtx {
                    table: &snapshot_table,
                    row,
                    now,
                };
                // RowCtx::get goes through column_index on the snapshot
                // (same columns), row data borrowed directly.
                let matches = match where_clause {
                    Some(w) => ev
                        .matches(w, &ctx)
                        .map_err(|e| StoreError::Query(e.to_string()))?,
                    None => true,
                };
                if !matches {
                    continue;
                }
                let mut new_vals = Vec::with_capacity(targets.len());
                for (idx, e) in &targets {
                    let v = ev
                        .eval(e, &ctx)
                        .map_err(|err| StoreError::Query(err.to_string()))?;
                    let col = &columns[*idx];
                    let coerced = v.coerce(col.ty).ok_or_else(|| StoreError::Type {
                        column: col.name.clone(),
                        expected: col.ty,
                    })?;
                    new_vals.push((*idx, coerced));
                }
                for (idx, v) in new_vals {
                    row[idx] = v;
                }
                updated += 1;
            }
            Ok(ExecOutcome::Affected(updated))
        }
        Statement::CreateTable {
            table,
            columns,
            if_not_exists,
        } => {
            if db.has_table(table) {
                if *if_not_exists {
                    return Ok(ExecOutcome::Done);
                }
                return Err(StoreError::TableExists(table.clone()));
            }
            db.create_table(Table::new(table, columns.clone()));
            Ok(ExecOutcome::Done)
        }
        Statement::DropTable { table, if_exists } => {
            if db.drop_table(table) || *if_exists {
                Ok(ExecOutcome::Done)
            } else {
                Err(StoreError::NoSuchTable(table.clone()))
            }
        }
        Statement::Explain { .. } => Err(StoreError::Unsupported(
            "EXPLAIN is handled by the gateway query path, not the store".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use crate::Database;
    use gridrm_sqlparse::SqlValue;

    fn db_with_series() -> Database {
        let mut db = Database::new();
        db.execute_sql(
            "CREATE TABLE samples (host TEXT, at TIMESTAMP, value REAL)",
            0,
        )
        .unwrap();
        for (host, at, value) in [
            ("a", 100i64, 1.0),
            ("a", 900, 3.0),
            ("b", 1100, 5.0),
            ("a", 1900, 7.0),
            ("b", 2500, 2.0),
        ] {
            db.execute_sql(
                &format!("INSERT INTO samples VALUES ('{host}', {at}, {value})"),
                0,
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn group_by_column_counts() {
        let mut db = db_with_series();
        let rows = db
            .execute_sql(
                "SELECT host, COUNT(*) AS n, SUM(value) FROM samples GROUP BY host ORDER BY host",
                0,
            )
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.rows()[0][0], SqlValue::Str("a".into()));
        assert_eq!(rows.rows()[0][1], SqlValue::Int(3));
        assert_eq!(rows.rows()[0][2], SqlValue::Float(11.0));
        assert_eq!(rows.rows()[1][0], SqlValue::Str("b".into()));
        assert_eq!(rows.rows()[1][1], SqlValue::Int(2));
    }

    #[test]
    fn time_bucket_fast_path_aggregates_per_bucket() {
        let mut db = db_with_series();
        let rows = db
            .execute_sql(
                "SELECT TIME_BUCKET(1000, at) AS bucket, COUNT(*) AS n, MIN(value), MAX(value), \
                 AVG(value), SUM(value) FROM samples GROUP BY TIME_BUCKET(1000, at) \
                 ORDER BY bucket",
                0,
            )
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 3);
        // Bucket 0: ts 100 & 900 (values 1, 3).
        assert_eq!(rows.rows()[0][0], SqlValue::Timestamp(0));
        assert_eq!(rows.rows()[0][1], SqlValue::Int(2));
        assert_eq!(rows.rows()[0][2], SqlValue::Float(1.0));
        assert_eq!(rows.rows()[0][3], SqlValue::Float(3.0));
        assert_eq!(rows.rows()[0][4], SqlValue::Float(2.0));
        assert_eq!(rows.rows()[0][5], SqlValue::Float(4.0));
        // Bucket 1000: ts 1100 & 1900 (values 5, 7).
        assert_eq!(rows.rows()[1][0], SqlValue::Timestamp(1000));
        assert_eq!(rows.rows()[1][4], SqlValue::Float(6.0));
        // Bucket 2000: ts 2500 (value 2).
        assert_eq!(rows.rows()[2][0], SqlValue::Timestamp(2000));
        assert_eq!(rows.rows()[2][1], SqlValue::Int(1));
    }

    #[test]
    fn time_bucket_fast_path_matches_generic_path() {
        let mut db = db_with_series();
        // `AVG(value) * 1` defeats the fast-path plan, forcing the
        // generic grouped path over the same grouping; both paths must
        // agree bucket by bucket.
        let fast = db
            .execute_sql(
                "SELECT TIME_BUCKET(1000, at) AS bucket, AVG(value) AS v FROM samples \
                 GROUP BY TIME_BUCKET(1000, at) ORDER BY bucket",
                0,
            )
            .unwrap()
            .rows();
        let generic = db
            .execute_sql(
                "SELECT TIME_BUCKET(1000, at) AS bucket, AVG(value) * 1 AS v FROM samples \
                 GROUP BY TIME_BUCKET(1000, at) ORDER BY bucket",
                0,
            )
            .unwrap()
            .rows();
        assert_eq!(fast.rows(), generic.rows());
    }

    #[test]
    fn grouped_order_by_requires_projected_column() {
        let mut db = db_with_series();
        let err = db
            .execute_sql(
                "SELECT host, COUNT(*) FROM samples GROUP BY host ORDER BY value",
                0,
            )
            .unwrap_err();
        assert!(err.to_string().contains("projected column"), "{err}");
    }

    #[test]
    fn grouped_desc_order_and_limit() {
        let mut db = db_with_series();
        let rows = db
            .execute_sql(
                "SELECT TIME_BUCKET(1000, at) AS bucket, COUNT(*) AS n FROM samples \
                 GROUP BY TIME_BUCKET(1000, at) ORDER BY bucket DESC LIMIT 2",
                0,
            )
            .unwrap()
            .rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.rows()[0][0], SqlValue::Timestamp(2000));
        assert_eq!(rows.rows()[1][0], SqlValue::Timestamp(1000));
    }
}
