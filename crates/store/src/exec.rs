//! Statement execution against a [`crate::Database`].

use crate::table::{StoreError, Table};
use gridrm_dbc::{ColumnMeta, ResultSetMetaData, RowSet};
use gridrm_sqlparse::ast::{Expr, Projection, SelectStatement, Statement};
use gridrm_sqlparse::eval::is_aggregate;
use gridrm_sqlparse::{EvalContext, Evaluator, SqlType, SqlValue};

/// The result of executing a statement.
#[derive(Debug)]
pub enum ExecOutcome {
    /// `SELECT` produced rows.
    Rows(RowSet),
    /// DML affected this many rows.
    Affected(usize),
    /// DDL succeeded.
    Done,
}

impl ExecOutcome {
    /// Unwrap the row set (panics on DML/DDL outcomes — test helper).
    pub fn rows(self) -> RowSet {
        match self {
            ExecOutcome::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// The affected-row count, if DML.
    pub fn affected(&self) -> Option<usize> {
        match self {
            ExecOutcome::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

/// Run a `SELECT` over an ad-hoc in-memory table.
///
/// This is the query-execution engine the data-source drivers reuse: after
/// translating native agent data into GLUE rows, a driver builds a
/// transient [`Table`] (columns = the GLUE group's attributes) and lets
/// this function apply `WHERE`/projection/`ORDER BY`/`LIMIT`/aggregates —
/// so every driver supports full SELECT semantics for free.
pub fn select_in_memory(
    table: &Table,
    sel: &SelectStatement,
    now: i64,
) -> Result<RowSet, StoreError> {
    execute_select(table, sel, now)
}

/// Row context over a table's columns.
struct RowCtx<'a> {
    table: &'a Table,
    row: &'a [SqlValue],
    now: i64,
}

impl EvalContext for RowCtx<'_> {
    fn get(&self, column: &str) -> Option<SqlValue> {
        self.table.column_index(column).map(|i| self.row[i].clone())
    }
    fn now_millis(&self) -> i64 {
        self.now
    }
}

/// Execute a SELECT against one table.
pub(crate) fn execute_select(
    table: &Table,
    sel: &SelectStatement,
    now: i64,
) -> Result<RowSet, StoreError> {
    let ev = Evaluator;

    // 1. filter
    let mut matching: Vec<&Vec<SqlValue>> = Vec::new();
    for row in &table.rows {
        let ctx = RowCtx { table, row, now };
        let keep = match &sel.where_clause {
            Some(w) => ev
                .matches(w, &ctx)
                .map_err(|e| StoreError::Query(e.to_string()))?,
            None => true,
        };
        if keep {
            matching.push(row);
        }
    }

    // 2. aggregate or project
    let items: Vec<(Expr, String)> = match &sel.projection {
        Projection::Star => table
            .columns
            .iter()
            .map(|c| (Expr::col(c.name.clone()), c.name.clone()))
            .collect(),
        Projection::Items(items) => items
            .iter()
            .map(|i| (i.expr.clone(), i.output_name()))
            .collect(),
    };

    let has_aggregate = items.iter().any(|(e, _)| contains_aggregate(e));
    if has_aggregate {
        let row: Vec<SqlValue> = items
            .iter()
            .map(|(e, _)| eval_aggregate(table, &matching, e, now))
            .collect::<Result<_, _>>()?;
        let meta = ResultSetMetaData::new(
            items
                .iter()
                .zip(&row)
                .map(|((_, name), v)| ColumnMeta::new(name.clone(), v.sql_type()))
                .collect(),
        );
        return RowSet::new(meta, vec![row]).map_err(|e| StoreError::Query(e.to_string()));
    }

    // 3. order by (on the raw rows, before projection, like SQL).
    let mut ordered: Vec<&Vec<SqlValue>> = matching;
    if !sel.order_by.is_empty() {
        let mut keyed: Vec<(Vec<SqlValue>, &Vec<SqlValue>)> = Vec::with_capacity(ordered.len());
        for row in ordered {
            let ctx = RowCtx { table, row, now };
            let mut keys = Vec::with_capacity(sel.order_by.len());
            for ob in &sel.order_by {
                keys.push(
                    ev.eval(&ob.expr, &ctx)
                        .map_err(|e| StoreError::Query(e.to_string()))?,
                );
            }
            keyed.push((keys, row));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, ob) in sel.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if ob.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        ordered = keyed.into_iter().map(|(_, r)| r).collect();
    }

    // 4. project
    let mut out_rows: Vec<Vec<SqlValue>> = Vec::with_capacity(ordered.len());
    for row in &ordered {
        let ctx = RowCtx { table, row, now };
        let mut out = Vec::with_capacity(items.len());
        for (e, _) in &items {
            out.push(
                ev.eval(e, &ctx)
                    .map_err(|err| StoreError::Query(err.to_string()))?,
            );
        }
        out_rows.push(out);
    }

    // 5. distinct
    if sel.distinct {
        let mut seen: Vec<Vec<SqlValue>> = Vec::new();
        out_rows.retain(|row| {
            if seen.iter().any(|s| s == row) {
                false
            } else {
                seen.push(row.clone());
                true
            }
        });
    }

    // 6. offset / limit
    let offset = sel.offset.unwrap_or(0) as usize;
    if offset > 0 {
        out_rows.drain(..offset.min(out_rows.len()));
    }
    if let Some(limit) = sel.limit {
        out_rows.truncate(limit as usize);
    }

    // 7. metadata: take declared column types where the projection is a
    // plain column, otherwise infer from the first row.
    let meta = ResultSetMetaData::new(
        items
            .iter()
            .enumerate()
            .map(|(i, (e, name))| {
                let ty = match e {
                    Expr::Column { name: c, .. } => table
                        .column_index(c)
                        .map(|idx| table.columns[idx].ty)
                        .unwrap_or(SqlType::Null),
                    _ => out_rows
                        .first()
                        .map(|r| r[i].sql_type())
                        .unwrap_or(SqlType::Null),
                };
                ColumnMeta::new(name.clone(), ty).with_table(table.name.clone())
            })
            .collect(),
    );
    RowSet::new(meta, out_rows).map_err(|e| StoreError::Query(e.to_string()))
}

fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Function { name, args, .. } => {
            is_aggregate(name) || args.iter().any(contains_aggregate)
        }
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Not(e) | Expr::Neg(e) => contains_aggregate(e),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        _ => false,
    }
}

fn eval_aggregate(
    table: &Table,
    rows: &[&Vec<SqlValue>],
    e: &Expr,
    now: i64,
) -> Result<SqlValue, StoreError> {
    match e {
        Expr::Function { name, args, star } if is_aggregate(name) => {
            if *star {
                if name == "COUNT" {
                    return Ok(SqlValue::Int(rows.len() as i64));
                }
                return Err(StoreError::Unsupported(format!("{name}(*)")));
            }
            let arg = args
                .first()
                .ok_or_else(|| StoreError::Query(format!("{name} needs an argument")))?;
            let ev = Evaluator;
            let mut values = Vec::with_capacity(rows.len());
            for row in rows {
                let ctx = RowCtx { table, row, now };
                let v = ev
                    .eval(arg, &ctx)
                    .map_err(|err| StoreError::Query(err.to_string()))?;
                if !v.is_null() {
                    values.push(v);
                }
            }
            Ok(match name.as_str() {
                "COUNT" => SqlValue::Int(values.len() as i64),
                "SUM" => {
                    if values.is_empty() {
                        SqlValue::Null
                    } else if values.iter().all(|v| matches!(v, SqlValue::Int(_))) {
                        SqlValue::Int(values.iter().filter_map(SqlValue::as_i64).sum())
                    } else {
                        SqlValue::Float(values.iter().filter_map(SqlValue::as_f64).sum())
                    }
                }
                "AVG" => {
                    if values.is_empty() {
                        SqlValue::Null
                    } else {
                        let sum: f64 = values.iter().filter_map(SqlValue::as_f64).sum();
                        SqlValue::Float(sum / values.len() as f64)
                    }
                }
                "MIN" => values
                    .into_iter()
                    .min_by(|a, b| a.total_cmp(b))
                    .unwrap_or(SqlValue::Null),
                "MAX" => values
                    .into_iter()
                    .max_by(|a, b| a.total_cmp(b))
                    .unwrap_or(SqlValue::Null),
                other => return Err(StoreError::Unsupported(other.to_owned())),
            })
        }
        // Scalar wrapper around an aggregate, e.g. `AVG(x) * 2`: evaluate
        // the aggregate sub-expressions first via substitution.
        Expr::Binary { left, op, right } => {
            let l = eval_aggregate(table, rows, left, now)?;
            let r = eval_aggregate(table, rows, right, now)?;
            let ev = Evaluator;
            let expr = Expr::bin(Expr::Literal(l), *op, Expr::Literal(r));
            ev.eval(&expr, &gridrm_sqlparse::MapContext::new())
                .map_err(|err| StoreError::Query(err.to_string()))
        }
        Expr::Literal(v) => Ok(v.clone()),
        other => {
            if contains_aggregate(other) {
                Err(StoreError::Unsupported(
                    "complex aggregate expression".to_owned(),
                ))
            } else {
                // Non-aggregate item alongside aggregates: evaluate against
                // the first row, SQLite-style leniency.
                let ev = Evaluator;
                match rows.first() {
                    Some(row) => ev
                        .eval(other, &RowCtx { table, row, now })
                        .map_err(|err| StoreError::Query(err.to_string())),
                    None => Ok(SqlValue::Null),
                }
            }
        }
    }
}

/// Execute any statement against a database (crate-internal; the public
/// entry is [`crate::Database::execute`]).
pub(crate) fn execute(
    db: &mut crate::database::Database,
    stmt: &Statement,
    now: i64,
) -> Result<ExecOutcome, StoreError> {
    match stmt {
        Statement::Select(sel) => {
            let table = db.table(&sel.table)?;
            Ok(ExecOutcome::Rows(execute_select(table, sel, now)?))
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let ev = Evaluator;
            let empty = gridrm_sqlparse::MapContext::new().with_now(now);
            // Evaluate all value expressions before touching the table so a
            // failure can't leave a partial multi-row insert behind.
            let mut evaluated = Vec::with_capacity(rows.len());
            for row in rows {
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    vals.push(
                        ev.eval(e, &empty)
                            .map_err(|err| StoreError::Query(err.to_string()))?,
                    );
                }
                evaluated.push(vals);
            }
            let t = db.table_mut(table)?;
            let snapshot_len = t.rows.len();
            let mut inserted = 0;
            for vals in evaluated {
                if let Err(e) = t.insert(columns, vals) {
                    t.rows.truncate(snapshot_len);
                    return Err(e);
                }
                inserted += 1;
            }
            Ok(ExecOutcome::Affected(inserted))
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let t = db.table_mut(table)?;
            let ev = Evaluator;
            let before = t.rows.len();
            match where_clause {
                None => t.rows.clear(),
                Some(w) => {
                    let mut err = None;
                    let t_ref: &Table = t;
                    let keep: Vec<bool> = t_ref
                        .rows
                        .iter()
                        .map(|row| {
                            let ctx = RowCtx {
                                table: t_ref,
                                row,
                                now,
                            };
                            match ev.matches(w, &ctx) {
                                Ok(m) => !m,
                                Err(e) => {
                                    err = Some(StoreError::Query(e.to_string()));
                                    true
                                }
                            }
                        })
                        .collect();
                    if let Some(e) = err {
                        return Err(e);
                    }
                    let mut it = keep.iter();
                    t.rows.retain(|_| *it.next().unwrap());
                }
            }
            Ok(ExecOutcome::Affected(before - t.rows.len()))
        }
        Statement::Update {
            table,
            assignments,
            where_clause,
        } => {
            let t = db.table_mut(table)?;
            let ev = Evaluator;
            // Resolve assignment target indices first.
            let targets: Vec<(usize, &Expr)> = assignments
                .iter()
                .map(|(c, e)| {
                    t.column_index(c)
                        .map(|i| (i, e))
                        .ok_or_else(|| StoreError::NoSuchColumn(c.clone()))
                })
                .collect::<Result<_, _>>()?;
            let mut updated = 0;
            let columns = t.columns.clone();
            let name = t.name.clone();
            for row in &mut t.rows {
                let snapshot_table = Table {
                    name: name.clone(),
                    columns: columns.clone(),
                    rows: Vec::new(),
                };
                let ctx = RowCtx {
                    table: &snapshot_table,
                    row,
                    now,
                };
                // RowCtx::get goes through column_index on the snapshot
                // (same columns), row data borrowed directly.
                let matches = match where_clause {
                    Some(w) => ev
                        .matches(w, &ctx)
                        .map_err(|e| StoreError::Query(e.to_string()))?,
                    None => true,
                };
                if !matches {
                    continue;
                }
                let mut new_vals = Vec::with_capacity(targets.len());
                for (idx, e) in &targets {
                    let v = ev
                        .eval(e, &ctx)
                        .map_err(|err| StoreError::Query(err.to_string()))?;
                    let col = &columns[*idx];
                    let coerced = v.coerce(col.ty).ok_or_else(|| StoreError::Type {
                        column: col.name.clone(),
                        expected: col.ty,
                    })?;
                    new_vals.push((*idx, coerced));
                }
                for (idx, v) in new_vals {
                    row[idx] = v;
                }
                updated += 1;
            }
            Ok(ExecOutcome::Affected(updated))
        }
        Statement::CreateTable {
            table,
            columns,
            if_not_exists,
        } => {
            if db.has_table(table) {
                if *if_not_exists {
                    return Ok(ExecOutcome::Done);
                }
                return Err(StoreError::TableExists(table.clone()));
            }
            db.create_table(Table::new(table, columns.clone()));
            Ok(ExecOutcome::Done)
        }
        Statement::DropTable { table, if_exists } => {
            if db.drop_table(table) || *if_exists {
                Ok(ExecOutcome::Done)
            } else {
                Err(StoreError::NoSuchTable(table.clone()))
            }
        }
        Statement::Explain { .. } => Err(StoreError::Unsupported(
            "EXPLAIN is handled by the gateway query path, not the store".into(),
        )),
    }
}
