//! Typed tables.

use gridrm_sqlparse::ast::ColumnDef;
use gridrm_sqlparse::{SqlType, SqlValue};
use std::fmt;

/// Errors from the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Table already exists (without `IF NOT EXISTS`).
    TableExists(String),
    /// No such table.
    NoSuchTable(String),
    /// No such column.
    NoSuchColumn(String),
    /// Wrong number of values for the column list.
    Arity {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// Value not coercible to the column type.
    Type {
        /// Column name.
        column: String,
        /// Target type.
        expected: SqlType,
    },
    /// Primary-key uniqueness violated.
    DuplicateKey(String),
    /// SQL feature not supported by the engine.
    Unsupported(String),
    /// Parse or evaluation error bubbled up.
    Query(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TableExists(t) => write!(f, "table '{t}' already exists"),
            StoreError::NoSuchTable(t) => write!(f, "no such table '{t}'"),
            StoreError::NoSuchColumn(c) => write!(f, "no such column '{c}'"),
            StoreError::Arity { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            StoreError::Type { column, expected } => {
                write!(f, "column '{column}' requires {expected}")
            }
            StoreError::DuplicateKey(k) => write!(f, "duplicate primary key {k}"),
            StoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
            StoreError::Query(m) => write!(f, "query error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One table: ordered typed columns plus row storage.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Row storage.
    pub rows: Vec<Vec<SqlValue>>,
}

impl Table {
    /// Empty table with the given columns.
    pub fn new(name: &str, columns: Vec<ColumnDef>) -> Table {
        Table {
            name: name.to_owned(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of a column by name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Indices of primary-key columns.
    pub fn pk_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.primary_key)
            .map(|(i, _)| i)
            .collect()
    }

    /// Insert one row given an explicit column order (`columns` empty
    /// means declaration order). Values are coerced to the column types.
    pub fn insert(&mut self, columns: &[String], values: Vec<SqlValue>) -> Result<(), StoreError> {
        let indices: Vec<usize> = if columns.is_empty() {
            if values.len() != self.columns.len() {
                return Err(StoreError::Arity {
                    expected: self.columns.len(),
                    got: values.len(),
                });
            }
            (0..self.columns.len()).collect()
        } else {
            if values.len() != columns.len() {
                return Err(StoreError::Arity {
                    expected: columns.len(),
                    got: values.len(),
                });
            }
            columns
                .iter()
                .map(|c| {
                    self.column_index(c)
                        .ok_or_else(|| StoreError::NoSuchColumn(c.clone()))
                })
                .collect::<Result<_, _>>()?
        };
        let mut row = vec![SqlValue::Null; self.columns.len()];
        for (value, &idx) in values.into_iter().zip(&indices) {
            let col = &self.columns[idx];
            let coerced = value.coerce(col.ty).ok_or_else(|| StoreError::Type {
                column: col.name.clone(),
                expected: col.ty,
            })?;
            row[idx] = coerced;
        }
        // Primary-key uniqueness.
        let pks = self.pk_indices();
        if !pks.is_empty() {
            let clash = self.rows.iter().any(|existing| {
                pks.iter()
                    .all(|&i| existing[i].sql_eq(&row[i]) == Some(true))
            });
            if clash {
                let key = pks
                    .iter()
                    .map(|&i| row[i].to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                return Err(StoreError::DuplicateKey(key));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ColumnDef {
                    name: "id".into(),
                    ty: SqlType::Int,
                    primary_key: true,
                },
                ColumnDef {
                    name: "name".into(),
                    ty: SqlType::Str,
                    primary_key: false,
                },
                ColumnDef {
                    name: "score".into(),
                    ty: SqlType::Float,
                    primary_key: false,
                },
            ],
        )
    }

    #[test]
    fn insert_in_declaration_order() {
        let mut t = table();
        t.insert(&[], vec![1.into(), "a".into(), 0.5.into()])
            .unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut t = table();
        t.insert(&["id".into(), "score".into()], vec![2.into(), 1.5.into()])
            .unwrap();
        assert_eq!(t.rows[0][1], SqlValue::Null);
        assert_eq!(t.rows[0][2], SqlValue::Float(1.5));
    }

    #[test]
    fn coercion_on_insert() {
        let mut t = table();
        // score column is Float; an Int should coerce.
        t.insert(&[], vec![1.into(), "a".into(), 3.into()]).unwrap();
        assert_eq!(t.rows[0][2], SqlValue::Float(3.0));
        // name column is Str; number coerces to its text form.
        t.insert(&[], vec![2.into(), 42.into(), 0.0.into()])
            .unwrap();
        assert_eq!(t.rows[1][1], SqlValue::Str("42".into()));
    }

    #[test]
    fn bad_type_rejected() {
        let mut t = table();
        let err = t
            .insert(&[], vec!["xyz".into(), "a".into(), 0.5.into()])
            .unwrap_err();
        assert!(matches!(err, StoreError::Type { .. }));
    }

    #[test]
    fn arity_checked() {
        let mut t = table();
        assert!(matches!(
            t.insert(&[], vec![1.into()]),
            Err(StoreError::Arity {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            t.insert(&["id".into()], vec![1.into(), 2.into()]),
            Err(StoreError::Arity { .. })
        ));
    }

    #[test]
    fn unknown_column_rejected() {
        let mut t = table();
        assert!(matches!(
            t.insert(&["bogus".into()], vec![1.into()]),
            Err(StoreError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn primary_key_enforced() {
        let mut t = table();
        t.insert(&[], vec![1.into(), "a".into(), 0.1.into()])
            .unwrap();
        let err = t
            .insert(&[], vec![1.into(), "b".into(), 0.2.into()])
            .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey(_)));
        t.insert(&[], vec![2.into(), "b".into(), 0.2.into()])
            .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn null_pk_never_clashes() {
        // SQL semantics: NULL != NULL, so two NULL keys coexist.
        let mut t = table();
        t.insert(&["name".into()], vec!["x".into()]).unwrap();
        t.insert(&["name".into()], vec!["y".into()]).unwrap();
        assert_eq!(t.len(), 2);
    }
}
