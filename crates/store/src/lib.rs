#![warn(missing_docs)]

//! # gridrm-store — the gateway's internal database
//!
//! The paper stores harvested data for "historical analysis": *"historical
//! data is retrieved from the Gateway's internal database"* (§3.1.1) and
//! incoming events are "recorded for historical analysis" (§3.1.5). This
//! crate is that database — a small, fully in-process relational engine:
//!
//! * typed tables with primary-key enforcement,
//! * `CREATE TABLE` / `DROP TABLE` / `INSERT` / `SELECT` / `UPDATE` /
//!   `DELETE` executed straight from `gridrm-sqlparse` ASTs,
//! * `WHERE` evaluation with SQL three-valued logic, expression
//!   projections, `DISTINCT`, `ORDER BY`, `LIMIT`/`OFFSET`,
//! * whole-table aggregates (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`),
//! * a time-based retention sweep for bounded history.
//!
//! Results come back as `gridrm-dbc` [`RowSet`]s, so the historical path
//! through the gateway is "String queries in, ResultSets out" exactly like
//! the real-time path.

pub mod database;
pub mod delta;
pub mod exec;
pub mod table;

pub use database::{Database, Store};
pub use delta::{row_fingerprint, DeltaTracker, RowDelta};
pub use exec::{select_in_memory, ExecOutcome};
pub use table::{StoreError, Table};

pub use gridrm_dbc::RowSet;
