//! Incremental row-set differencing — the evaluation kernel behind
//! continuous queries (`SELECT … EVERY n`).
//!
//! A standing query is re-evaluated on a cadence, but subscribers only
//! want what *changed*: shipping the full result set every tick is the
//! repeated-polling cost the R-GMA-style continuous path exists to
//! avoid. [`DeltaTracker`] remembers a fingerprint of every row the
//! previous emission contained and turns the next evaluation into a
//! [`RowDelta`]: the rows that are new or modified since the last emit,
//! plus a count of rows that disappeared. An unchanged result produces
//! no delta at all, so an idle grid costs nothing downstream.

use gridrm_dbc::RowSet;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// What changed between two successive evaluations of a standing query.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelta {
    /// Rows that are new or whose values changed since the last emit,
    /// in evaluation order. A modified row appears here in its *new*
    /// form (its old form counts towards `removed`).
    pub rows: RowSet,
    /// Rows from the previous emission that no longer appear.
    pub removed: usize,
}

impl RowDelta {
    /// Total change volume: changed rows plus disappearances.
    pub fn change_count(&self) -> usize {
        self.rows.len() + self.removed
    }
}

/// Fingerprint of one row: a stable hash over the rendered cell values.
///
/// Rendering before hashing sidesteps `f64`'s lack of `Hash` and keeps
/// the fingerprint independent of in-memory representation. The hasher
/// is [`DefaultHasher::new`], which is keyed with constants — the same
/// row fingerprints identically across processes and runs, which the
/// deterministic tests rely on.
pub fn row_fingerprint(row: &[gridrm_sqlparse::SqlValue]) -> u64 {
    let mut h = DefaultHasher::new();
    for cell in row {
        cell.to_string().hash(&mut h);
        // Cell separator so ("ab","c") and ("a","bc") differ.
        0xffu8.hash(&mut h);
    }
    h.finish()
}

/// Remembers the previous emission of one standing query and diffs the
/// next evaluation against it.
///
/// Memory is bounded by the cardinality of the query's result set (one
/// `u64` per distinct row), not by how long the subscription lives.
/// Duplicate identical rows collapse into one fingerprint; a continuous
/// query over rows with an identity column (hostname, source) is
/// unaffected, and a pathological all-duplicates result merely
/// under-reports its multiplicity.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    seen: HashSet<u64>,
}

impl DeltaTracker {
    /// A tracker that has emitted nothing yet: the first `diff` returns
    /// the full result set as the initial snapshot delta.
    pub fn new() -> DeltaTracker {
        DeltaTracker::default()
    }

    /// Number of distinct rows in the last emission.
    pub fn tracked_rows(&self) -> usize {
        self.seen.len()
    }

    /// Diff `current` against the last emission. Returns `None` when
    /// nothing changed (the common idle case); otherwise the changed
    /// rows and the removed count, and the tracker adopts `current` as
    /// the new baseline.
    pub fn diff(&mut self, current: &RowSet) -> Option<RowDelta> {
        let mut fresh: HashSet<u64> = HashSet::with_capacity(current.len());
        let mut changed: Vec<Vec<gridrm_sqlparse::SqlValue>> = Vec::new();
        for row in current.rows() {
            let fp = row_fingerprint(row);
            if fresh.insert(fp) && !self.seen.contains(&fp) {
                changed.push(row.clone());
            }
        }
        let removed = self.seen.iter().filter(|fp| !fresh.contains(fp)).count();
        if changed.is_empty() && removed == 0 {
            return None;
        }
        self.seen = fresh;
        let rows = RowSet::new(current.meta().clone(), changed)
            .expect("changed rows share the source result set's arity");
        Some(RowDelta { rows, removed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::{ColumnMeta, ResultSetMetaData};
    use gridrm_sqlparse::{SqlType, SqlValue};

    fn meta() -> ResultSetMetaData {
        ResultSetMetaData::new(vec![
            ColumnMeta::new("Hostname", SqlType::Str),
            ColumnMeta::new("Load1", SqlType::Float),
        ])
    }

    fn rows(pairs: &[(&str, f64)]) -> RowSet {
        RowSet::new(
            meta(),
            pairs
                .iter()
                .map(|(h, l)| vec![SqlValue::Str((*h).to_owned()), SqlValue::Float(*l)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn first_diff_is_the_full_snapshot() {
        let mut t = DeltaTracker::new();
        let d = t.diff(&rows(&[("n1", 0.5), ("n2", 0.7)])).unwrap();
        assert_eq!(d.rows.len(), 2);
        assert_eq!(d.removed, 0);
    }

    #[test]
    fn unchanged_result_produces_no_delta() {
        let mut t = DeltaTracker::new();
        let r = rows(&[("n1", 0.5), ("n2", 0.7)]);
        t.diff(&r).unwrap();
        assert!(t.diff(&r).is_none());
        assert_eq!(t.tracked_rows(), 2);
    }

    #[test]
    fn modified_row_emits_only_itself() {
        let mut t = DeltaTracker::new();
        t.diff(&rows(&[("n1", 0.5), ("n2", 0.7)])).unwrap();
        let d = t.diff(&rows(&[("n1", 0.5), ("n2", 0.9)])).unwrap();
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows.rows()[0][0], SqlValue::Str("n2".into()));
        // The old n2 row counts as removed: one modification = 1 + 1.
        assert_eq!(d.removed, 1);
        assert_eq!(d.change_count(), 2);
    }

    #[test]
    fn disappeared_rows_are_counted() {
        let mut t = DeltaTracker::new();
        t.diff(&rows(&[("n1", 0.5), ("n2", 0.7)])).unwrap();
        let d = t.diff(&rows(&[("n1", 0.5)])).unwrap();
        assert!(d.rows.is_empty());
        assert_eq!(d.removed, 1);
        // And the removal emptied the delta only once.
        assert!(t.diff(&rows(&[("n1", 0.5)])).is_none());
    }

    #[test]
    fn fingerprints_are_order_insensitive_per_row_but_cell_sensitive() {
        let a = vec![SqlValue::Str("ab".into()), SqlValue::Str("c".into())];
        let b = vec![SqlValue::Str("a".into()), SqlValue::Str("bc".into())];
        assert_ne!(row_fingerprint(&a), row_fingerprint(&b));
        assert_eq!(row_fingerprint(&a), row_fingerprint(&a.clone()));
    }
}
