//! The GridRM-rs experiment harness: regenerates the measurable form of
//! every figure/claim in the paper (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! Usage: `cargo run -p gridrm-bench --bin experiments [--release] -- [eN ...|all]`
//!
//! Timing-shaped experiments live in the Criterion benches; this harness
//! covers the *traffic-shape* and *behavioural* experiments, which are
//! deterministic (message counts on the simulated network) and therefore
//! machine-independent.

use gridrm_bench::{grid_world, grid_world_with_wan, single_site_world, SEED};
use gridrm_core::events::{EventManager, GridRMEvent, ListenerFilter, Severity};
use gridrm_core::{ClientRequest, FailurePolicy};
use gridrm_dbc::JdbcUrl;
use gridrm_simnet::Latency;
use std::sync::atomic::Ordering;

fn banner(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

fn row(cols: &[&str], widths: &[usize]) {
    let line: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}"))
        .collect();
    println!("  {}", line.join("  "));
}

/// E1 — Fig 1: remote queries are routed via the owning gateway; local
/// queries never cross sites; no client/gateway ever contacts a foreign
/// agent directly.
fn e1() {
    banner("E1", "Global-layer routing (Fig 1)");
    let world = grid_world(3, 4);
    let portal = &world.sites[0].3;
    let sql = "SELECT Hostname, Load1 FROM Processor";

    for (label, source) in [
        ("local  (site0)", "jdbc:snmp://node01.site0/public"),
        ("remote (site1)", "jdbc:snmp://node01.site1/public"),
        ("remote (site2)", "jdbc:snmp://node01.site2/public"),
    ] {
        let resp = portal
            .query(&ClientRequest::realtime(source, sql))
            .expect("query");
        println!("  query {label}: {} row(s)", resp.rows.len());
    }
    let out = portal.stats().remote_queries_out.get();
    let hops01 = world
        .net
        .stats_for("gw.site0:gma", "gw.site1:gma")
        .snapshot()
        .requests;
    let hops02 = world
        .net
        .stats_for("gw.site0:gma", "gw.site2:gma")
        .snapshot()
        .requests;
    let direct_foreign = world
        .net
        .stats_for("gw.site0", "node01.site1:snmp")
        .snapshot()
        .requests;
    println!("\n  remote queries sent by gw-site0 ............ {out} (expect 2)");
    println!("  gw-site0 -> gw-site1 gma hops ............... {hops01} (expect 1)");
    println!("  gw-site0 -> gw-site2 gma hops ............... {hops02} (expect 1)");
    println!("  gw-site0 direct requests to foreign agents .. {direct_foreign} (expect 0)");
    let ok = out == 2 && hops01 == 1 && hops02 == 1 && direct_foreign == 0;
    println!("  RESULT: {}", if ok { "PASS" } else { "FAIL" });
}

/// E3 — Fig 3: component-by-component breakdown of one query, shown as the
/// native requests/bytes each stage induced.
fn e3() {
    banner("E3", "Query-path anatomy (Fig 3)");
    let world = single_site_world(8);
    let source = "jdbc:snmp://node03.bench/public";
    let url = JdbcUrl::parse(source).unwrap();
    let sql = "SELECT Hostname, NCpu, Load1 FROM Processor";

    let link = world.net.stats_for("gw.bench", "node03.bench:snmp");
    let before = link.snapshot();
    let resp = world
        .gateway
        .query(&ClientRequest::realtime(source, sql))
        .expect("query");
    let after = link.snapshot();
    let dm_snap = world.gateway.driver_manager().stats().snapshot();
    let (resolutions, cache_hits, scans) = (
        dm_snap.resolutions,
        dm_snap.cache_hits,
        dm_snap.dynamic_scans,
    );
    let pool_snap = world.gateway.connections().stats().snapshot();
    let (checkouts, pool_hits, creates) =
        (pool_snap.checkouts, pool_snap.pool_hits, pool_snap.creates);
    let (_h, validations, _s) = world.gateway.schema().stats().snapshot();

    println!("  query: {sql}\n  source: {source}\n");
    println!(
        "  RequestManager  -> 1 client request, {} row(s) back",
        resp.rows.len()
    );
    println!("  DriverManager   -> {resolutions} resolution(s) ({cache_hits} cached, {scans} dynamic scan(s))");
    println!("  ConnectionMgr   -> {checkouts} checkout(s): {pool_hits} pooled, {creates} created");
    println!("  SchemaManager   -> {validations} consistency validation(s)");
    println!(
        "  Driver/agent    -> {} native request(s), {} B out / {} B in",
        after.requests - before.requests,
        after.bytes_out - before.bytes_out,
        after.bytes_in - before.bytes_in
    );

    // Second, identical query: the pooled/cached path.
    let before = link.snapshot();
    world
        .gateway
        .query(&ClientRequest::realtime(source, sql))
        .expect("query");
    let after = link.snapshot();
    let dm_snap = world.gateway.driver_manager().stats().snapshot();
    let (cache_hits2, scans2) = (dm_snap.cache_hits, dm_snap.dynamic_scans);
    let pool_snap = world.gateway.connections().stats().snapshot();
    let (pool_hits2, creates2) = (pool_snap.pool_hits, pool_snap.creates);
    println!("\n  repeat query (warm):");
    println!(
        "  DriverManager   -> cached driver ({} total hits, scans still {scans2})",
        cache_hits2
    );
    println!(
        "  ConnectionMgr   -> pooled connection ({} total pool hits, creates still {creates2})",
        pool_hits2
    );
    println!(
        "  Driver/agent    -> {} native request(s) (no reconnect probe)",
        after.requests - before.requests
    );
    let _ = url;
    println!("  RESULT: PASS (see counters above)");
}

/// E4 — Fig 4: the fast buffer absorbs bursts without losing events.
fn e4() {
    banner("E4", "Event Manager loss-freedom under burst (Fig 4)");
    println!("  burst   fast-cap  overflowed  dispatched  delivered  lost");
    for (burst, cap) in [
        (1_000usize, 1024usize),
        (10_000, 1024),
        (100_000, 1024),
        (100_000, 64),
    ] {
        let manager = EventManager::new(cap);
        let (_, rx) = manager.register_listener(ListenerFilter::default());
        for i in 0..burst {
            manager.ingest(GridRMEvent {
                id: 0,
                at_ms: i as i64,
                source: "burst:snmp".into(),
                hostname: None,
                severity: Severity::Info,
                category: "burst".into(),
                message: String::new(),
                value: None,
            });
        }
        let dispatched = manager.dispatch().len();
        let delivered = rx.try_iter().count();
        let overflowed = manager.stats().overflowed.get();
        let lost = burst - delivered;
        println!("  {burst:<7} {cap:<9} {overflowed:<11} {dispatched:<11} {delivered:<10} {lost}");
    }
    println!("  RESULT: PASS if lost == 0 on every row");
}

/// E5 — Fig 5/Table 2: how much accepts_url probing each selection mode
/// costs (counts, complementing the latency bench).
fn e5() {
    banner("E5", "Driver selection probe counts (Fig 5, Table 2)");
    let world = single_site_world(4);
    let dm = world.gateway.driver_manager();
    let base = dm.base();
    let sql = "SELECT Hostname FROM Processor";
    let wildcard = "jdbc:://node01.bench/public";

    let probes0 = base.stats().snapshot().1;
    world
        .gateway
        .query(&ClientRequest::realtime(wildcard, sql))
        .expect("first wildcard query");
    let probes_first = base.stats().snapshot().1 - probes0;

    let probes1 = base.stats().snapshot().1;
    for _ in 0..10 {
        world
            .gateway
            .query(&ClientRequest::realtime(wildcard, sql))
            .expect("cached query");
    }
    let probes_cached = base.stats().snapshot().1 - probes1;

    let snap = dm.stats().snapshot();
    let (resolutions, cache_hits, dynamic_scans, invalidations) = (
        snap.resolutions,
        snap.cache_hits,
        snap.dynamic_scans,
        snap.invalidations,
    );
    println!("  first wildcard resolution: {probes_first} accepts_url probe(s)");
    println!("  next 10 resolutions:       {probes_cached} probe(s) (last-success cache)");
    println!("  totals: {resolutions} resolutions, {cache_hits} cache hits, {dynamic_scans} dynamic scans, {invalidations} invalidations");
    println!(
        "  RESULT: {}",
        if probes_cached == 0 && probes_first >= 1 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}

/// E6 — §4/Fig 8: the three failure policies against a dead agent.
fn e6() {
    banner(
        "E6",
        "Failure policies: notify / retry n / dynamic reselect (§4)",
    );
    let sql = "SELECT Hostname, Load1 FROM Processor WHERE Hostname = 'node00.bench'";
    let source = "jdbc:://node00.bench/public";
    println!("  policy        outcome after agent failure");
    for policy in [
        FailurePolicy::Report,
        FailurePolicy::Retry(3),
        FailurePolicy::TryNext,
    ] {
        let world = single_site_world(4);
        let url = JdbcUrl::parse(source).unwrap();
        // Establish the happy path first (SNMP wins the wildcard).
        world
            .gateway
            .query(&ClientRequest::realtime(source, sql))
            .expect("initial query");
        world.gateway.driver_manager().set_policy(&url, policy);
        if matches!(policy, FailurePolicy::Retry(_)) {
            // "Retry the specified drivers for n iterations": pin the
            // user's specified driver so the retries target it.
            world
                .gateway
                .driver_manager()
                .set_preferences(&url, vec!["jdbc-snmp".to_owned()]);
        }
        // Kill the SNMP agent.
        world.net.set_down("node00.bench:snmp", true);
        let outcome = match world.gateway.query(&ClientRequest::realtime(source, sql)) {
            Ok(resp) => format!(
                "recovered via {} ({} row)",
                world
                    .gateway
                    .driver_manager()
                    .cached_driver(&url)
                    .unwrap_or_default(),
                resp.rows.len()
            ),
            Err(e) => format!("reported after exhausting policy: {e}"),
        };
        println!("  {:<13} {outcome}", format!("{policy:?}"));
    }
    println!("  RESULT: PASS if Report and Retry(n) surface the error, TryNext recovers via jdbc-ganglia");
}

/// E7 — §4/Fig 9: cache TTL vs agent intrusion for a population of
/// polling clients, plus the inter-gateway variant.
fn e7() {
    banner(
        "E7",
        "Cache scalability: agent intrusion vs TTL (§4, Fig 9)",
    );
    let sql = "SELECT Hostname, Load1 FROM Processor";
    // Each client polls 10 times over 60 virtual seconds; agent intrusion
    // is measured for real-time polling vs gateway-cached polling.
    let measure = |clients: usize, ttl: u64| -> u64 {
        let world = single_site_world(4);
        world.gateway.request_manager().set_record_history(false);
        let source = "jdbc:ganglia://node00.bench/bench?ttl=0";
        let agent = world.net.endpoint_stats("node00.bench:ganglia").unwrap();
        let before = agent.snapshot().requests_served;
        for _round in 0..10usize {
            world.net.clock().advance(6_000);
            for _client in 0..clients {
                let req = if ttl == 0 {
                    ClientRequest::realtime(source, sql)
                } else {
                    ClientRequest::cached(source, sql, Some(ttl))
                };
                world.gateway.query(&req).expect("poll");
            }
        }
        agent.snapshot().requests_served - before
    };
    println!("  clients  agent_req(realtime)  agent_req(ttl=5s)  agent_req(ttl=30s)  reduction@5s");
    for clients in [1usize, 16, 64, 256] {
        let realtime = measure(clients, 0);
        let cached5 = measure(clients, 5_000);
        let cached30 = measure(clients, 30_000);
        let reduction = 100.0 * (1.0 - cached5 as f64 / realtime as f64);
        println!("  {clients:<8} {realtime:<20} {cached5:<18} {cached30:<19} {reduction:>6.1}%");
    }

    // Inter-gateway: the same mechanism between sites.
    let world = grid_world(2, 4);
    let portal = &world.sites[0].3;
    let source = "jdbc:ganglia://node00.site1/site1?ttl=0";
    let agent = world.net.endpoint_stats("node00.site1:ganglia").unwrap();
    portal
        .query(&ClientRequest::realtime(source, sql))
        .expect("prime");
    let before = agent.snapshot().requests_served;
    let hops_before = world
        .net
        .stats_for("gw.site0:gma", "gw.site1:gma")
        .snapshot()
        .requests;
    for _ in 0..50 {
        portal
            .query(&ClientRequest::cached(source, sql, Some(60_000)))
            .expect("cached remote");
    }
    let served = agent.snapshot().requests_served - before;
    let hops = world
        .net
        .stats_for("gw.site0:gma", "gw.site1:gma")
        .snapshot()
        .requests
        - hops_before;
    println!(
        "\n  inter-gateway: 50 cached remote polls -> {hops} gma hops, {served} agent request(s)"
    );
    println!("  RESULT: PASS if intrusion falls sharply once ttl > 0 and remote agent sees 0");
}

/// E10 — Table 1/§3.2: runtime driver churn does not disturb queries.
fn e10() {
    banner(
        "E10",
        "Runtime driver registration/removal under load (§3.2)",
    );
    let world = single_site_world(4);
    let gateway = world.gateway.clone();
    let sql = "SELECT Hostname FROM Processor";
    let source = "jdbc:snmp://node01.bench/public";
    let stop = std::sync::atomic::AtomicBool::new(false);
    let ok = std::sync::atomic::AtomicU64::new(0);
    let failed = std::sync::atomic::AtomicU64::new(0);
    let churns = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    match gateway.query(&ClientRequest::realtime(source, sql)) {
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
        s.spawn(|| {
            let env = world.env.clone();
            for _ in 0..500 {
                // Churn an *unrelated* driver while SNMP queries run.
                gateway.driver_manager().unregister("jdbc-scms");
                gateway
                    .driver_manager()
                    .register(gridrm_drivers::ScmsDriver::new(env.clone()));
                churns.fetch_add(1, Ordering::Relaxed);
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    let ok = ok.load(Ordering::Relaxed);
    let failed = failed.load(Ordering::Relaxed);
    println!(
        "  {} register/unregister cycles concurrent with {} queries: {} failed",
        churns.load(Ordering::Relaxed),
        ok + failed,
        failed
    );
    println!(
        "  RESULT: {}",
        if failed == 0 && ok > 0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
}

/// E11 — §3.2.3: translation coverage per driver — which GLUE attributes
/// each source can fill, NULLs for the rest.
fn e11() {
    banner("E11", "GLUE translation coverage per driver (§3.2.3)");
    let world = single_site_world(4);
    world.agents.pump();
    let sql = "SELECT * FROM Processor WHERE Hostname = 'node01.bench'";
    let widths = [14usize, 10, 10, 22];
    row(
        &["driver", "attrs", "non-null", "sample NULL attrs"],
        &widths,
    );
    for (driver, source) in [
        ("jdbc-snmp", "jdbc:snmp://node01.bench/public"),
        ("jdbc-ganglia", "jdbc:ganglia://node00.bench/bench"),
        ("jdbc-scms", "jdbc:scms://node00.bench/"),
    ] {
        let resp = world
            .gateway
            .query(&ClientRequest::realtime(source, sql))
            .expect("query");
        let rows = resp.rows;
        let total = rows.meta().column_count();
        let rowv = &rows.rows()[0];
        let non_null = rowv.iter().filter(|v| !v.is_null()).count();
        let nulls: Vec<&str> = (0..total)
            .filter(|&i| rowv[i].is_null())
            .map(|i| rows.meta().column_name(i).unwrap_or("?"))
            .take(3)
            .collect();
        row(
            &[
                driver,
                &total.to_string(),
                &non_null.to_string(),
                &nulls.join(","),
            ],
            &widths,
        );
    }
    println!("\n  RESULT: PASS if every driver fills a (different) subset and NULLs the rest");
}

/// E12 — §1.1/§3.1.5: event propagation between gateways, with counts.
fn e12() {
    banner("E12", "Inter-gateway event propagation (§3.1.5)");
    let world = grid_world(3, 3);
    for (_, _, _, layer) in &world.sites {
        layer.enable_event_propagation(Severity::Warning);
    }
    // Listeners at the two consumer sites.
    let rx1 = world.sites[1]
        .2
        .events()
        .register_listener(ListenerFilter::default())
        .1;
    let rx2 = world.sites[2]
        .2
        .events()
        .register_listener(ListenerFilter::default())
        .1;

    // Trap at site0.
    for a in &world.sites[0].1.snmp {
        a.set_trap_sink(world.net.clone(), "gw.site0", 3.0);
    }
    world.sites[0].0.inject_load_spike("node01.site0", 15.0);
    world.sites[0].0.advance_to(601_000);
    let (traps, _) = world.sites[0].1.pump();
    world.sites[0].2.pump();
    world.sites[1].2.pump();
    world.sites[2].2.pump();

    let got1 = rx1.try_iter().count();
    let got2 = rx2.try_iter().count();
    let fwd = world.sites[0].3.stats().events_out.get();
    println!("  traps fired at site0 .................. {traps}");
    println!("  events forwarded by gw-site0 .......... {fwd} (expect 2 peers)");
    println!("  received by consumer at site1 ......... {got1}");
    println!("  received by consumer at site2 ......... {got2}");
    // Loop check: pump everything again; nothing new may move.
    world.sites[0].2.pump();
    world.sites[1].2.pump();
    world.sites[2].2.pump();
    let extra = rx1.try_iter().count() + rx2.try_iter().count();
    println!("  extra deliveries after re-pump ........ {extra} (expect 0, no loops)");
    let ok = traps == 1 && fwd == 2 && got1 == 1 && got2 == 1 && extra == 0;
    println!("  RESULT: {}", if ok { "PASS" } else { "FAIL" });
}

/// E13 — Fan-out engine: a consolidated multi-site query should cost
/// about the *slowest* site (parallel dispatch), not the *sum* of sites
/// (sequential dispatch). Virtual-clock latencies, so the numbers are
/// machine-independent; also emitted as `BENCH_fanout.json`.
fn e13() {
    banner("E13", "Parallel fan-out: max(site) vs sum(site) latency");
    const ROUNDS: usize = 12;
    const WAN_MS: u64 = 40;
    const WAN_JITTER_MS: u64 = 10;
    let sql = "SELECT Hostname, Load1 FROM Processor ORDER BY Hostname";
    let pct = |sorted: &[u64], p: usize| sorted[(sorted.len() * p / 100).min(sorted.len() - 1)];

    println!("  WAN one-way latency {WAN_MS}ms + jitter {WAN_JITTER_MS}ms, {ROUNDS} cold queries per mode\n");
    row(
        &[
            "sites", "par p50", "par p95", "seq p50", "seq p95", "speedup",
        ],
        &[6, 8, 8, 8, 8, 8],
    );
    let mut json_rows = Vec::new();
    let mut speedup_at_8 = 0.0_f64;
    for n in [1usize, 2, 4, 8] {
        let world = grid_world_with_wan(n, 2, Latency::ms(WAN_MS, WAN_JITTER_MS));
        let (_, _, portal_gw, portal) = &world.sites[0];
        let sources: Vec<String> = (0..n)
            .map(|i| format!("jdbc:snmp://node00.site{i}/public"))
            .collect();
        let sources: Vec<&str> = sources.iter().map(String::as_str).collect();

        let measure = |parallel: bool| -> Vec<u64> {
            portal.set_parallel_fanout(parallel);
            let mut samples = Vec::with_capacity(ROUNDS);
            for _ in 0..ROUNDS {
                // Sweep every cache so each round pays the full fan-out.
                for (_, _, gw, _) in &world.sites {
                    gw.cache().sweep(gw.clock().now_millis(), 0);
                }
                let t0 = portal_gw.clock().now_millis();
                let request = ClientRequest::builder(sql).sources(&sources).build();
                portal.query(&request).expect("fan-out query");
                samples.push(portal_gw.clock().now_millis() - t0);
            }
            samples.sort_unstable();
            samples
        };
        let par = measure(true);
        let seq = measure(false);
        let (pp50, pp95) = (pct(&par, 50), pct(&par, 95));
        let (sp50, sp95) = (pct(&seq, 50), pct(&seq, 95));
        // An all-local query costs ~0ms either way: call that parity.
        let speedup = if sp50 == 0 && pp50 == 0 {
            1.0
        } else {
            sp50 as f64 / pp50.max(1) as f64
        };
        if n == 8 {
            speedup_at_8 = speedup;
        }
        row(
            &[
                &n.to_string(),
                &format!("{pp50}ms"),
                &format!("{pp95}ms"),
                &format!("{sp50}ms"),
                &format!("{sp95}ms"),
                &format!("{speedup:.2}x"),
            ],
            &[6, 8, 8, 8, 8, 8],
        );
        json_rows.push(format!(
            "    {{\"sites\": {n}, \"parallel_p50_ms\": {pp50}, \"parallel_p95_ms\": {pp95}, \
             \"sequential_p50_ms\": {sp50}, \"sequential_p95_ms\": {sp95}, \
             \"speedup_p50\": {speedup:.2}}}"
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"fanout\",\n  \"seed\": \"{SEED:#x}\",\n  \
         \"wan_base_ms\": {WAN_MS},\n  \"wan_jitter_ms\": {WAN_JITTER_MS},\n  \
         \"rounds_per_mode\": {ROUNDS},\n  \"unit\": \"virtual_ms\",\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_fanout.json", &json).expect("write BENCH_fanout.json");
    println!("\n  wrote BENCH_fanout.json");
    println!("  speedup at 8 sites .................... {speedup_at_8:.2}x (expect >= 3x)");
    let ok = speedup_at_8 >= 3.0;
    println!("  RESULT: {}", if ok { "PASS" } else { "FAIL" });
}

/// E14 — Time-series + SLO engine at scale: feed the recorder a million
/// deterministic synthetic samples, roll them up three independent ways
/// — the columnar `bucketed()` kernel, the SQL `TIME_BUCKET` GROUP BY
/// path through the store executor, and a naive row loop — and require
/// bucket-for-bucket agreement; then drive the burn-rate engine through
/// a scripted regression and recovery in virtual time. Sample values
/// are exact multiples of 1/8 so every sum is exact in f64 and the
/// aggregates are bit-identical regardless of summation order; counts,
/// sums and transition timestamps land in `BENCH_slo.json`, wall-clock
/// timings go to stdout only.
fn e14_run(series: usize, points_per_series: usize, write_json: bool) -> bool {
    use gridrm_sqlparse::ast::{ColumnDef, Statement};
    use gridrm_sqlparse::{SqlType, SqlValue};
    use gridrm_store::Table;
    use gridrm_telemetry::{
        Journal, Labels, PointKind, Registry, SloEngine, SloObjective, SloSpec, TimeSeriesRecorder,
        DEFAULT_LATENCY_BUCKETS_MS,
    };
    use std::sync::Arc;
    use std::time::Instant;

    const STEP_MS: u64 = 100;
    const BUCKET_MS: u64 = 60_000;
    const NAME: &str = "gridrm_bench_signal";
    let total_points = series * points_per_series;
    // Exact eighths in [0, 500): every partial sum is a multiple of 1/8
    // well inside f64's exact-integer range, so addition never rounds.
    let value = |s: usize, i: usize| ((s + i).wrapping_mul(2_654_435_761) % 4_000) as f64 / 8.0;
    let label = |s: usize| format!("series=\"s{s:02}\"");

    // Ingest: one ring per series, sized so nothing is evicted.
    let rec = TimeSeriesRecorder::new();
    rec.configure(1, points_per_series);
    let t0 = Instant::now();
    for s in 0..series {
        let labels = label(s);
        for i in 0..points_per_series {
            rec.record_point(
                NAME,
                &labels,
                PointKind::Gauge,
                i as u64 * STEP_MS,
                value(s, i),
            );
        }
    }
    let ingest = t0.elapsed();
    println!(
        "  ingest: {total_points} points in {:.0}ms ({:.2}M points/s)",
        ingest.as_secs_f64() * 1e3,
        total_points as f64 / ingest.as_secs_f64() / 1e6
    );

    // Path 1: the columnar kernel over every series.
    let t0 = Instant::now();
    let kernel: Vec<Vec<gridrm_telemetry::BucketStats>> = (0..series)
        .map(|s| rec.bucketed(NAME, &label(s), BUCKET_MS))
        .collect();
    let kernel_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Path 2: a naive per-row loop over the materialised history.
    let t0 = Instant::now();
    let mut naive_ok = true;
    for (s, want) in kernel.iter().enumerate() {
        let mut got: Vec<(u64, u64, f64, f64, f64)> = Vec::new();
        for r in rec.history_for(Some(NAME), Some(&label(s))) {
            let b = r.ts_ms / BUCKET_MS * BUCKET_MS;
            match got.last_mut() {
                Some(last) if last.0 == b => {
                    last.1 += 1;
                    last.2 = last.2.min(r.value);
                    last.3 = last.3.max(r.value);
                    last.4 += r.value;
                }
                _ => got.push((b, 1, r.value, r.value, r.value)),
            }
        }
        naive_ok &= got.len() == want.len()
            && got.iter().zip(want).all(|(g, w)| {
                (g.0, g.1, g.2, g.3, g.4) == (w.bucket_ms, w.count, w.min, w.max, w.sum)
            });
    }
    let naive_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Path 3: the SQL TIME_BUCKET GROUP BY path through the store
    // executor, over series 0 loaded into a plain two-column table.
    let mut table = Table::new(
        "samples",
        vec![
            ColumnDef {
                name: "ts".into(),
                ty: SqlType::Timestamp,
                primary_key: false,
            },
            ColumnDef {
                name: "value".into(),
                ty: SqlType::Float,
                primary_key: false,
            },
        ],
    );
    for i in 0..points_per_series {
        table
            .insert(
                &[],
                vec![
                    SqlValue::Timestamp((i as u64 * STEP_MS) as i64),
                    SqlValue::Float(value(0, i)),
                ],
            )
            .expect("insert sample");
    }
    let sql = format!(
        "SELECT TIME_BUCKET({BUCKET_MS}, ts) AS bucket, COUNT(*), MIN(value), \
         MAX(value), SUM(value) FROM samples \
         GROUP BY TIME_BUCKET({BUCKET_MS}, ts) ORDER BY bucket"
    );
    let sel = match gridrm_sqlparse::parse(&sql) {
        Ok(Statement::Select(sel)) => sel,
        other => panic!("TIME_BUCKET select parses: {other:?}"),
    };
    let t0 = Instant::now();
    let rs = gridrm_store::select_in_memory(&table, &sel, 0).expect("TIME_BUCKET rollup");
    let sql_ms = t0.elapsed().as_secs_f64() * 1e3;
    let sql_ok = rs.len() == kernel[0].len()
        && rs.rows().iter().zip(&kernel[0]).all(|(row, w)| {
            row[0].as_i64() == Some(w.bucket_ms as i64)
                && row[1].as_i64() == Some(w.count as i64)
                && row[2].as_f64() == Some(w.min)
                && row[3].as_f64() == Some(w.max)
                && row[4].as_f64() == Some(w.sum)
        });

    let buckets_per_series = kernel[0].len();
    let total_count: u64 = kernel.iter().flatten().map(|b| b.count).sum();
    let total_sum: f64 = kernel.iter().flatten().map(|b| b.sum).sum();
    let global_min = kernel
        .iter()
        .flatten()
        .map(|b| b.min)
        .fold(f64::MAX, f64::min);
    let global_max = kernel
        .iter()
        .flatten()
        .map(|b| b.max)
        .fold(f64::MIN, f64::max);
    row(&["path", "time", "buckets", "agrees"], &[22, 12, 10, 8]);
    row(
        &[
            "columnar kernel",
            &format!("{kernel_ms:.1}ms"),
            &buckets_per_series.to_string(),
            "-",
        ],
        &[22, 12, 10, 8],
    );
    row(
        &[
            "naive row loop",
            &format!("{naive_ms:.1}ms"),
            &buckets_per_series.to_string(),
            if naive_ok { "yes" } else { "NO" },
        ],
        &[22, 12, 10, 8],
    );
    row(
        &[
            "sql TIME_BUCKET",
            &format!("{sql_ms:.1}ms"),
            &rs.len().to_string(),
            if sql_ok { "yes" } else { "NO" },
        ],
        &[22, 12, 10, 8],
    );

    // The burn-rate engine on a scripted workload: 10 ms requests, a
    // 10-minute 500 ms regression starting at t=600 s, then recovery.
    // All in virtual time, so the transition stamps are deterministic.
    let registry = Arc::new(Registry::new());
    let journal = Arc::new(Journal::new(64));
    let engine = SloEngine::new(registry.clone(), journal);
    let mut spec = SloSpec::new(
        "bench-latency",
        SloObjective::Latency {
            metric: "gridrm_request_latency_ms".to_owned(),
            threshold_ms: 100.0,
        },
        0.9,
    );
    spec.fast_window_ms = 60_000;
    spec.slow_window_ms = 300_000;
    spec.fast_burn_threshold = 2.0;
    spec.slow_burn_threshold = 1.0;
    engine.configure(&[spec]);
    let hist = registry.histogram(
        "gridrm_request_latency_ms",
        "scripted request latency",
        Labels::none(),
        DEFAULT_LATENCY_BUCKETS_MS,
    );
    let (mut fired_at, mut cleared_at) = (0u64, 0u64);
    let mut evaluations = 0u64;
    for step in 0..3_600u64 {
        let now = step * 1_000;
        let latency = if (600_000..1_200_000).contains(&now) {
            500.0
        } else {
            10.0
        };
        for _ in 0..10 {
            hist.observe(latency);
        }
        engine.evaluate(now);
        evaluations += 1;
        for t in engine.take_transitions() {
            if t.firing {
                fired_at = now;
            } else {
                cleared_at = now;
            }
        }
    }
    let status = &engine.snapshot()[0];
    let slo_ok = status.transitions == 2 && fired_at > 0 && cleared_at > fired_at;
    println!(
        "  slo: {} evaluations, fired at t={}ms, cleared at t={}ms, {} transitions",
        evaluations, fired_at, cleared_at, status.transitions
    );

    let ok = naive_ok && sql_ok && slo_ok && total_count as usize == total_points;
    if write_json {
        let json = format!(
            "{{\n  \"experiment\": \"slo_timebucket\",\n  \"unit\": \"virtual_ms\",\n  \
             \"series\": {series},\n  \"points_per_series\": {points_per_series},\n  \
             \"total_points\": {total_points},\n  \"step_ms\": {STEP_MS},\n  \
             \"bucket_ms\": {BUCKET_MS},\n  \"buckets_per_series\": {buckets_per_series},\n  \
             \"total_count\": {total_count},\n  \"total_sum\": {total_sum:.3},\n  \
             \"global_min\": {global_min:.3},\n  \"global_max\": {global_max:.3},\n  \
             \"paths_agree\": {agree},\n  \"slo_evaluations\": {evaluations},\n  \
             \"slo_fired_at_ms\": {fired_at},\n  \"slo_cleared_at_ms\": {cleared_at},\n  \
             \"slo_transitions\": {transitions}\n}}\n",
            agree = naive_ok && sql_ok,
            transitions = status.transitions,
        );
        std::fs::write("BENCH_slo.json", &json).expect("write BENCH_slo.json");
        println!("  wrote BENCH_slo.json");
    }
    println!("  RESULT: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// E14 at full scale: 8 series x 131072 points = 1,048,576 samples.
fn e14() {
    banner(
        "E14",
        "TIME_BUCKET rollups + SLO burn engine over 1M samples",
    );
    e14_run(8, 131_072, true);
}

// --------------------------------------------------------------------
// E15 support: a synthetic monitoring feed with a precisely scripted
// change rate — each source serves `rows` rows of which exactly one
// changes per evaluation cadence, so the delta volume is analytic.
// --------------------------------------------------------------------

mod feed {
    use gridrm_dbc::{
        ColumnMeta, Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet,
        ResultSetMetaData, RowSet, SqlError, Statement,
    };
    use gridrm_simnet::SimClock;
    use gridrm_sqlparse::{SqlType, SqlValue};
    use std::sync::Arc;

    pub struct FeedDriver {
        pub clock: Arc<SimClock>,
        pub rows: usize,
        pub every_ms: u64,
    }

    struct FeedConnection {
        url: JdbcUrl,
        clock: Arc<SimClock>,
        rows: usize,
        every_ms: u64,
        closed: bool,
    }

    struct FeedStatement {
        clock: Arc<SimClock>,
        rows: usize,
        every_ms: u64,
    }

    impl Driver for FeedDriver {
        fn meta(&self) -> DriverMetaData {
            DriverMetaData {
                name: "jdbc-feed".to_owned(),
                subprotocol: "feed".to_owned(),
                version: (0, 1),
                description: "bench feed: one row changes per cadence".to_owned(),
            }
        }
        fn accepts_url(&self, url: &JdbcUrl) -> bool {
            url.subprotocol == "feed"
        }
        fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
            Ok(Box::new(FeedConnection {
                url: url.clone(),
                clock: self.clock.clone(),
                rows: self.rows,
                every_ms: self.every_ms,
                closed: false,
            }))
        }
    }

    impl Connection for FeedConnection {
        fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
            Ok(Box::new(FeedStatement {
                clock: self.clock.clone(),
                rows: self.rows,
                every_ms: self.every_ms,
            }))
        }
        fn url(&self) -> &JdbcUrl {
            &self.url
        }
        fn is_closed(&self) -> bool {
            self.closed
        }
        fn close(&mut self) -> DbcResult<()> {
            self.closed = true;
            Ok(())
        }
    }

    impl Statement for FeedStatement {
        fn execute_query(&mut self, _sql: &str) -> DbcResult<Box<dyn ResultSet>> {
            // Row 0 carries the current epoch (changes every cadence);
            // the remaining rows are stable background data.
            let epoch = self.clock.now_millis() / self.every_ms;
            let rows: Vec<Vec<SqlValue>> = (0..self.rows)
                .map(|r| {
                    let value = if r == 0 { epoch as i64 } else { r as i64 * 100 };
                    vec![SqlValue::Str(format!("h{r}")), SqlValue::Int(value)]
                })
                .collect();
            let rows = RowSet::new(
                ResultSetMetaData::new(vec![
                    ColumnMeta::new("Host", SqlType::Str),
                    ColumnMeta::new("Value", SqlType::Int),
                ]),
                rows,
            )
            .map_err(|e| SqlError::Driver(e.to_string()))?;
            Ok(Box::new(rows))
        }
    }
}

/// E15 — the continuous-query plane at scale: N subscribers sharing
/// deduplicated standing queries versus the same N clients re-polling.
/// Executions, deltas and rows shipped are virtual-time deterministic
/// and land in `BENCH_stream.json`; wall-clock goes to stdout only.
fn e15_run(queries: usize, subs_per_query: usize, ticks: u64, write_json: bool) -> bool {
    use gridrm_core::stream::BackpressurePolicy;
    use gridrm_core::{Gateway, GatewayConfig};
    use gridrm_simnet::{Network, SimClock};
    use std::sync::Arc;
    use std::time::Instant;

    const EVERY_MS: u64 = 1_000;
    const ROWS_PER_SOURCE: usize = 5;
    const BUFFER_CAP: usize = 4;
    const UNPOLLED_TICKS: u64 = 10;
    let subscribers = queries * subs_per_query;
    let sources: Vec<String> = (0..queries)
        .map(|q| format!("jdbc:feed://src{q:03}.bench/feed"))
        .collect();
    let world = |seed: u64| -> (Arc<Gateway>, Arc<SimClock>) {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), seed);
        let gateway = Gateway::new(GatewayConfig::new("gw-stream", "bench"), net);
        gateway.request_manager().set_record_history(false);
        gateway
            .driver_manager()
            .register(Arc::new(feed::FeedDriver {
                clock: clock.clone(),
                rows: ROWS_PER_SOURCE,
                every_ms: EVERY_MS,
            }));
        (gateway, clock)
    };

    // --- Streaming path: subscribe everyone, pump, drain every tick.
    let (gateway, clock) = world(1);
    let t0 = Instant::now();
    let mut ids = Vec::with_capacity(subscribers);
    for source in &sources {
        for _ in 0..subs_per_query {
            let spec = gridrm_core::ClientRequest::builder("SELECT Host, Value FROM Feed")
                .source(source)
                .subscribe_every(EVERY_MS)
                .buffer(BUFFER_CAP)
                .backpressure(BackpressurePolicy::DropOldest);
            ids.push(gateway.subscribe(&spec).expect("subscribe"));
        }
    }
    let subscribe_wall = t0.elapsed();
    let mut stream_rows = 0u64;
    let mut peak_pending = 0usize;
    let t0 = Instant::now();
    for _ in 0..=ticks {
        for &id in &ids {
            peak_pending = peak_pending.max(gateway.streams().pending(id));
            for d in gateway.poll_deltas(id, 0).expect("poll") {
                stream_rows += d.rows.len() as u64;
            }
        }
        clock.advance(EVERY_MS);
        gateway.pump();
    }
    let stream_wall = t0.elapsed();
    let stats = gateway.streams().stats();
    let stream_execs = stats.evaluations.get();
    let stream_deltas = stats.deltas.get();

    // --- Bounded-memory phase: stop draining entirely; buffers must
    // plateau at their capacity while the drop counters absorb the rest.
    for _ in 0..UNPOLLED_TICKS {
        clock.advance(EVERY_MS);
        gateway.pump();
    }
    let peak_unpolled = ids
        .iter()
        .map(|&id| gateway.streams().pending(id))
        .max()
        .unwrap_or(0);
    let dropped_total = stats.dropped_oldest.get();

    // --- Naive path: every subscriber re-polls its query every tick.
    let (gateway2, clock2) = world(2);
    let mut naive_rows = 0u64;
    let t0 = Instant::now();
    for tick in 0..=ticks {
        if tick > 0 {
            clock2.advance(EVERY_MS);
        }
        for source in &sources {
            for _ in 0..subs_per_query {
                let resp = gateway2
                    .query(&gridrm_core::ClientRequest::realtime(
                        source,
                        "SELECT Host, Value FROM Feed",
                    ))
                    .expect("re-poll");
                naive_rows += resp.rows.len() as u64;
            }
        }
    }
    let naive_wall = t0.elapsed();
    let naive_execs = (ticks + 1) * subscribers as u64;

    let exec_reduction = 100.0 * (1.0 - stream_execs as f64 / naive_execs as f64);
    let rows_reduction = 100.0 * (1.0 - stream_rows as f64 / naive_rows as f64);
    println!(
        "  {subscribers} subscribers over {queries} standing queries, {ticks} ticks @ {EVERY_MS}ms, \
         {ROWS_PER_SOURCE} rows/source\n"
    );
    row(
        &["path", "executions", "rows shipped", "wall"],
        &[10, 12, 14, 10],
    );
    row(
        &[
            "delta",
            &stream_execs.to_string(),
            &stream_rows.to_string(),
            &format!("{:.0}ms", stream_wall.as_secs_f64() * 1e3),
        ],
        &[10, 12, 14, 10],
    );
    row(
        &[
            "re-poll",
            &naive_execs.to_string(),
            &naive_rows.to_string(),
            &format!("{:.0}ms", naive_wall.as_secs_f64() * 1e3),
        ],
        &[10, 12, 14, 10],
    );
    println!(
        "\n  subscribe burst: {subscribers} registrations in {:.0}ms",
        subscribe_wall.as_secs_f64() * 1e3
    );
    println!("  source executions reduced ............. {exec_reduction:.1}%");
    println!("  rows shipped reduced .................. {rows_reduction:.1}%");
    println!(
        "  buffers: peak {peak_pending} pending while drained, plateau {peak_unpolled}/{BUFFER_CAP} \
         after {UNPOLLED_TICKS} unpolled ticks, {dropped_total} dropped"
    );
    let bounded = peak_unpolled <= BUFFER_CAP;
    let ok = exec_reduction > 90.0 && rows_reduction > 50.0 && bounded && stream_rows > 0;
    if write_json {
        let json = format!(
            "{{\n  \"experiment\": \"stream_delta\",\n  \"unit\": \"virtual_ms\",\n  \
             \"standing_queries\": {queries},\n  \"subscribers\": {subscribers},\n  \
             \"ticks\": {ticks},\n  \"every_ms\": {EVERY_MS},\n  \
             \"rows_per_source\": {ROWS_PER_SOURCE},\n  \
             \"stream_executions\": {stream_execs},\n  \
             \"stream_deltas_emitted\": {stream_deltas},\n  \
             \"stream_rows_shipped\": {stream_rows},\n  \
             \"naive_executions\": {naive_execs},\n  \"naive_rows_shipped\": {naive_rows},\n  \
             \"execution_reduction_pct\": {exec_reduction:.1},\n  \
             \"rows_reduction_pct\": {rows_reduction:.1},\n  \
             \"buffer_capacity\": {BUFFER_CAP},\n  \"unpolled_ticks\": {UNPOLLED_TICKS},\n  \
             \"peak_pending_unpolled\": {peak_unpolled},\n  \
             \"dropped_total\": {dropped_total},\n  \"memory_bounded\": {bounded}\n}}\n"
        );
        std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
        println!("  wrote BENCH_stream.json");
    }
    println!("  RESULT: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// E15 at full scale: 10,000 subscribers over 100 standing queries.
fn e15() {
    banner(
        "E15",
        "Continuous queries: shared delta evaluation vs 10k re-pollers",
    );
    e15_run(100, 100, 20, true);
}

/// E16 core — the monitor's own network footprint (Zhang et al.'s
/// *intrusiveness* axis), read straight from the portal gateway's cost
/// ledger. Two sweeps: (a) grid size — consolidated queries against
/// every site of an N-site grid must impose a *flat* per-site load
/// (each site answers once per query regardless of N, one frame each
/// way); (b) subscriber count — grid-wide standing queries against one
/// remote site cost one poll round-trip per subscriber per tick, so
/// per-site subscription traffic is exactly linear. Message counts are
/// virtual-network facts, so both curves are deterministic and land in
/// `BENCH_intrusion.json`; wall-clock never matters here.
fn e16_run(
    grid_sizes: &[usize],
    rounds: u64,
    sub_counts: &[usize],
    ticks: u64,
    write_json: bool,
) -> bool {
    use gridrm_core::stream::SubscribeSpec;
    use gridrm_telemetry::IntrusionRow;

    const WAN_MS: u64 = 20;
    const EVERY_MS: u64 = 1_000;
    let sql = "SELECT Hostname, Load1 FROM Processor ORDER BY Hostname";
    let query_bucket = |snapshot: &[IntrusionRow], site: &str| -> (u64, u64, f64, f64) {
        snapshot
            .iter()
            .filter(|r| r.site == site && r.cause == "query")
            .map(|r| {
                (
                    r.bucket.msgs,
                    r.bucket.bytes,
                    r.bucket.msgs_per_vsec(),
                    r.bucket.bytes_per_vsec(),
                )
            })
            .next()
            .unwrap_or((0, 0, 0.0, 0.0))
    };

    // ---- Sweep A: per-site query intrusion vs. grid size ----
    println!("  {rounds} cold fan-out queries per grid, {WAN_MS}ms WAN\n");
    row(
        &[
            "sites",
            "msgs/site",
            "bytes/site",
            "msgs/site/query",
            "flat?",
        ],
        &[6, 10, 11, 16, 6],
    );
    let mut grid_rows = Vec::new();
    let mut per_site_msgs_per_query = Vec::new();
    for &n in grid_sizes {
        let world = grid_world_with_wan(n, 2, Latency::ms(WAN_MS, 0));
        let (_, _, portal_gw, portal) = &world.sites[0];
        let sources: Vec<String> = (0..n)
            .map(|i| format!("jdbc:snmp://node00.site{i}/public"))
            .collect();
        let sources: Vec<&str> = sources.iter().map(String::as_str).collect();
        for _ in 0..rounds {
            for (_, _, gw, _) in &world.sites {
                gw.cache().sweep(gw.clock().now_millis(), 0);
            }
            let request = ClientRequest::builder(sql).sources(&sources).build();
            portal.query(&request).expect("fan-out query");
        }
        let snapshot = portal_gw.telemetry().costs().intrusion_snapshot();
        // Average over the remote sites; each should carry the same
        // load (and sweep A's claim is that it is independent of n).
        let remotes: Vec<(u64, u64, f64, f64)> = (1..n)
            .map(|i| query_bucket(&snapshot, &format!("site{i}")))
            .collect();
        let site_msgs = remotes.iter().map(|r| r.0).sum::<u64>() / remotes.len() as u64;
        let site_bytes = remotes.iter().map(|r| r.1).sum::<u64>() / remotes.len() as u64;
        let msgs_per_vsec = remotes.iter().map(|r| r.2).sum::<f64>() / remotes.len() as f64;
        let bytes_per_vsec = remotes.iter().map(|r| r.3).sum::<f64>() / remotes.len() as f64;
        let uniform = remotes.iter().all(|r| r.0 == site_msgs);
        let per_query = site_msgs as f64 / rounds as f64;
        per_site_msgs_per_query.push(per_query);
        row(
            &[
                &n.to_string(),
                &site_msgs.to_string(),
                &site_bytes.to_string(),
                &format!("{per_query:.1}"),
                if uniform { "yes" } else { "NO" },
            ],
            &[6, 10, 11, 16, 6],
        );
        grid_rows.push(format!(
            "    {{\"sites\": {n}, \"queries\": {rounds}, \"msgs_per_site\": {site_msgs}, \
             \"bytes_per_site\": {site_bytes}, \"msgs_per_site_per_query\": {per_query:.1}, \
             \"msgs_per_site_per_vsec\": {msgs_per_vsec:.3}, \
             \"bytes_per_site_per_vsec\": {bytes_per_vsec:.3}, \
             \"uniform_across_sites\": {uniform}}}"
        ));
        if !uniform {
            println!("  RESULT: FAIL (unequal load across sites)");
            return false;
        }
    }
    // Flat: every grid size imposes the same per-site per-query load
    // (one request frame out, one response frame in).
    let flat = per_site_msgs_per_query
        .iter()
        .all(|&m| m == per_site_msgs_per_query[0]);
    println!(
        "\n  per-site msgs per query across grid sizes ... {:?} (expect flat)",
        per_site_msgs_per_query
    );

    // ---- Sweep B: subscription intrusion vs. subscriber count ----
    println!("\n  standing queries against one remote site, {ticks} ticks @ {EVERY_MS}ms\n");
    row(&["subs", "msgs", "bytes", "msgs/sub"], &[6, 8, 10, 10]);
    let mut sub_rows = Vec::new();
    let mut msgs_per_sub = Vec::new();
    for &k in sub_counts {
        let world = grid_world_with_wan(2, 2, Latency::ms(WAN_MS, 0));
        let (_, _, portal_gw, portal) = &world.sites[0];
        let subs: Vec<_> = (0..k)
            .map(|_| {
                let spec = SubscribeSpec {
                    request: ClientRequest::builder(sql)
                        .sources(&["jdbc:snmp://node00.site1/public"])
                        .build(),
                    every_ms: Some(EVERY_MS),
                    buffer: None,
                    backpressure: None,
                };
                portal.subscribe(&spec).expect("grid subscribe")
            })
            .collect();
        for _ in 0..ticks {
            portal_gw.clock().advance(EVERY_MS);
            world.sites[1].2.pump();
            for sub in &subs {
                portal.poll_deltas(sub, 0).expect("poll deltas");
            }
        }
        for sub in &subs {
            portal.unsubscribe(sub);
        }
        let snapshot = portal_gw.telemetry().costs().intrusion_snapshot();
        let (msgs, bytes, msgs_vsec, bytes_vsec) = snapshot
            .iter()
            .filter(|r| r.site == "site1" && r.cause == "subscription")
            .map(|r| {
                (
                    r.bucket.msgs,
                    r.bucket.bytes,
                    r.bucket.msgs_per_vsec(),
                    r.bucket.bytes_per_vsec(),
                )
            })
            .next()
            .unwrap_or((0, 0, 0.0, 0.0));
        let per_sub = msgs as f64 / k as f64;
        msgs_per_sub.push(per_sub);
        row(
            &[
                &k.to_string(),
                &msgs.to_string(),
                &bytes.to_string(),
                &format!("{per_sub:.1}"),
            ],
            &[6, 8, 10, 10],
        );
        sub_rows.push(format!(
            "    {{\"subscribers\": {k}, \"ticks\": {ticks}, \"msgs\": {msgs}, \
             \"bytes\": {bytes}, \"msgs_per_subscriber\": {per_sub:.1}, \
             \"msgs_per_vsec\": {msgs_vsec:.3}, \"bytes_per_vsec\": {bytes_vsec:.3}}}"
        ));
    }
    // Linear: subscribe + ticks polls + unsubscribe, one round trip
    // each, identically per subscriber.
    let linear = msgs_per_sub.iter().all(|&m| m == msgs_per_sub[0]);
    println!(
        "\n  msgs per subscriber across counts ........... {:?} (expect linear)",
        msgs_per_sub
    );

    if write_json {
        let json = format!(
            "{{\n  \"experiment\": \"intrusion\",\n  \"seed\": \"{SEED:#x}\",\n  \
             \"wan_ms\": {WAN_MS},\n  \"unit\": \"virtual_network_messages_and_bytes\",\n  \
             \"grid_sweep\": [\n{}\n  ],\n  \"subscriber_sweep\": [\n{}\n  ]\n}}\n",
            grid_rows.join(",\n"),
            sub_rows.join(",\n")
        );
        std::fs::write("BENCH_intrusion.json", &json).expect("write BENCH_intrusion.json");
        println!("  wrote BENCH_intrusion.json");
    }
    let ok = flat && linear;
    println!("  RESULT: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// E16 at full scale: grids of 2/4/8 sites, 1/4/16 subscribers.
fn e16() {
    banner(
        "E16",
        "Intrusion profile: per-site monitor traffic vs. grid size and subscribers",
    );
    e16_run(&[2, 4, 8], 8, &[1, 4, 16], 5, true);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id || a == "all");
    println!("GridRM-rs experiment harness (seed {SEED:#x})");
    println!("Timing-shaped experiments: `cargo bench` (e1,e2,e3,e4,e5,e7,e8,e9,e11).");
    if want("e1") {
        e1();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e10") {
        e10();
    }
    if want("e11") {
        e11();
    }
    if want("e12") {
        e12();
    }
    if want("e13") {
        e13();
    }
    if want("e14") {
        e14();
    }
    if want("e15") {
        e15();
    }
    if want("e16") {
        e16();
    }
    println!();
}

#[cfg(test)]
mod tests {
    /// CI smoke: the full e14 pipeline at reduced scale, without
    /// touching the committed BENCH_slo.json.
    #[test]
    fn e14_paths_agree_at_reduced_scale() {
        assert!(super::e14_run(2, 4_096, false));
    }

    /// CI smoke: the full e15 pipeline at reduced scale, without
    /// touching the committed BENCH_stream.json.
    #[test]
    fn e15_delta_beats_repoll_at_reduced_scale() {
        assert!(super::e15_run(10, 20, 5, false));
    }

    /// CI smoke: both e16 sweeps at reduced scale, without touching
    /// the committed BENCH_intrusion.json.
    #[test]
    fn e16_intrusion_is_flat_and_linear_at_reduced_scale() {
        assert!(super::e16_run(&[2, 3], 2, &[1, 2], 2, false));
    }
}
