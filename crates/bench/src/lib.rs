#![warn(missing_docs)]

//! # gridrm-bench — experiment support library
//!
//! Shared scenario builders used by both the Criterion benches
//! (`benches/`) and the experiment harness binary
//! (`src/bin/experiments.rs`). Each experiment in `EXPERIMENTS.md` (E1 —
//! E12) maps to a bench target and/or a harness subcommand; this crate
//! keeps their world-building identical so numbers are comparable.

pub mod world;

pub use world::{grid_world, grid_world_with_wan, single_site_world, GridWorld, SiteWorld, SEED};
