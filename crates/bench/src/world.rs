//! Canonical simulated worlds for the experiments.

use gridrm_agents::{deploy_site, SiteAgents};
use gridrm_core::{Gateway, GatewayConfig};
use gridrm_drivers::{install_into_gateway, DriverEnv};
use gridrm_global::{GlobalLayer, GmaDirectory};
use gridrm_resmodel::{SiteModel, SiteSpec};
use gridrm_simnet::{Latency, Network, SimClock};
use std::sync::Arc;

/// Fixed seed so every experiment run is reproducible; printed by the
/// harness alongside results.
pub const SEED: u64 = 0x6721d;

/// One site with its gateway.
pub struct SiteWorld {
    /// The shared network.
    pub net: Arc<Network>,
    /// The resource model.
    pub site: Arc<SiteModel>,
    /// Deployed agents.
    pub agents: SiteAgents,
    /// The gateway (standard drivers installed).
    pub gateway: Arc<Gateway>,
    /// Driver environment (for direct driver construction in benches).
    pub env: Arc<DriverEnv>,
}

/// Build a single-site world with `hosts` nodes, advanced to ten virtual
/// minutes so metrics and NWS history are populated.
pub fn single_site_world(hosts: usize) -> SiteWorld {
    let net = Network::new(SimClock::new(), SEED);
    let mut spec = SiteSpec::new("bench", hosts, 4);
    spec.peers = vec!["node00.peer".to_owned()];
    let site = SiteModel::generate(SEED, &spec);
    site.advance_to(600_000);
    let agents = deploy_site(&net, site.clone());
    let gateway = Gateway::new(GatewayConfig::new("gw-bench", "bench"), net.clone());
    let env = install_into_gateway(&gateway);
    SiteWorld {
        net,
        site,
        agents,
        gateway,
        env,
    }
}

/// One site of a [`GridWorld`]: `(model, agents, gateway, layer)`.
pub type GridSite = (Arc<SiteModel>, SiteAgents, Arc<Gateway>, Arc<GlobalLayer>);

/// A multi-site Grid with the Global layer attached everywhere.
pub struct GridWorld {
    /// The shared network.
    pub net: Arc<Network>,
    /// The GMA directory.
    pub directory: Arc<GmaDirectory>,
    /// Per-site `(model, agents, gateway, layer)`.
    pub sites: Vec<GridSite>,
}

/// Build a Grid of `n_sites` sites × `hosts` hosts.
pub fn grid_world(n_sites: usize, hosts: usize) -> GridWorld {
    let net = Network::new(SimClock::new(), SEED);
    let directory = GmaDirectory::new();
    let mut sites = Vec::with_capacity(n_sites);
    for i in 0..n_sites {
        let name = format!("site{i}");
        let model = SiteModel::generate(SEED + i as u64, &SiteSpec::new(&name, hosts, 4));
        model.advance_to(600_000);
        let agents = deploy_site(&net, model.clone());
        let gateway = Gateway::new(
            GatewayConfig::new(&format!("gw-{name}"), &name),
            net.clone(),
        );
        install_into_gateway(&gateway);
        let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
        sites.push((model, agents, gateway, layer));
    }
    GridWorld {
        net,
        directory,
        sites,
    }
}

/// A [`grid_world`] whose inter-gateway GMA links all carry the given
/// symmetric WAN latency. Intra-site links stay LAN-fast (zero), so any
/// latency an experiment measures is attributable to the wide area.
pub fn grid_world_with_wan(n_sites: usize, hosts: usize, wan: Latency) -> GridWorld {
    let world = grid_world(n_sites, hosts);
    for a in 0..n_sites {
        for b in 0..n_sites {
            if a != b {
                world
                    .net
                    .set_latency(&format!("gw.site{a}:gma"), &format!("gw.site{b}:gma"), wan);
            }
        }
    }
    world
}
