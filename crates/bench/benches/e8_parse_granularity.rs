//! E8 (§3.2.4): fine-grained vs coarse-grained data sources. SNMP answers
//! a one-attribute question with a few dozen binary bytes; Ganglia ships
//! the whole cluster as XML whose parse cost grows with cluster size —
//! unless the driver's lazy mode or TTL cache compensates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridrm_bench::{single_site_world, SEED};
use gridrm_core::ClientRequest;
use gridrm_drivers::ganglia::{parse_dump_eager, parse_dump_lazy};
use gridrm_resmodel::{SiteModel, SiteSpec};
use std::hint::black_box;
use std::time::Duration;

fn cluster_xml(hosts: usize) -> String {
    let site = SiteModel::generate(SEED, &SiteSpec::new("xml", hosts, 4));
    site.advance_to(600_000);
    gridrm_agents::ganglia::GangliaAgent::new(site).dump()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_parse_granularity");
    group.measurement_time(Duration::from_secs(3));

    // -- end-to-end: one attribute of one host, via each driver ----------
    let world = single_site_world(32);
    world.gateway.request_manager().set_record_history(false);
    let sql = "SELECT Load1 FROM Processor WHERE Hostname = 'node07.bench'";
    let fine = ClientRequest::realtime("jdbc:snmp://node07.bench/public", sql);
    group.bench_function("one_attr_via_snmp_fine", |b| {
        b.iter(|| black_box(world.gateway.query(&fine).unwrap()));
    });
    let coarse = ClientRequest::realtime("jdbc:ganglia://node00.bench/bench?ttl=0", sql);
    group.bench_function("one_attr_via_ganglia_coarse_uncached", |b| {
        b.iter(|| black_box(world.gateway.query(&coarse).unwrap()));
    });
    let coarse_cached =
        ClientRequest::realtime("jdbc:ganglia://node00.bench/bench?ttl=600000", sql);
    world.gateway.query(&coarse_cached).unwrap();
    group.bench_function("one_attr_via_ganglia_driver_ttl_cache", |b| {
        b.iter(|| black_box(world.gateway.query(&coarse_cached).unwrap()));
    });

    // -- raw parse cost scaling with cluster size -------------------------
    for hosts in [4usize, 32, 128] {
        let xml = cluster_xml(hosts);
        group.bench_with_input(
            BenchmarkId::new("xml_parse_eager", hosts),
            &hosts,
            |b, _| {
                b.iter(|| black_box(parse_dump_eager(&xml).unwrap().len()));
            },
        );
        let needed = vec!["load_one".to_owned(), "host.name".to_owned()];
        group.bench_with_input(
            BenchmarkId::new("xml_parse_lazy_2_metrics", hosts),
            &hosts,
            |b, _| {
                b.iter(|| black_box(parse_dump_lazy(&xml, &needed).len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
