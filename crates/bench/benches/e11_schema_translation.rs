//! E11 (§3.1.4, §3.2.3, Fig 5): GLUE translation cost per row, and the
//! value of caching the schema handle on the connection (one atomic
//! version check per statement instead of a full handle fetch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridrm_drivers::mappings::snmp_mapping;
use gridrm_glue::{NativeRow, SchemaManager, Translator};
use gridrm_sqlparse::SqlValue;
use std::hint::black_box;
use std::time::Duration;

fn native_rows(n: usize) -> Vec<NativeRow> {
    (0..n)
        .map(|i| {
            let mut row = NativeRow::new();
            row.insert(
                "1.3.6.1.2.1.1.5.0".into(),
                SqlValue::Str(format!("node{i:03}")),
            );
            row.insert("1.3.6.1.2.1.25.3.3.2.0".into(), SqlValue::Int(4));
            row.insert("1.3.6.1.4.1.2021.100.1.0".into(), SqlValue::Int(2400));
            row.insert(
                "1.3.6.1.4.1.2021.10.1.5.1".into(),
                SqlValue::Int(42 + i as i64),
            );
            row.insert("1.3.6.1.4.1.2021.11.9.0".into(), SqlValue::Int(30));
            row
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let manager = SchemaManager::new();
    manager.register_mapping(snmp_mapping());

    let mut group = c.benchmark_group("e11_schema_translation");
    group.measurement_time(Duration::from_secs(3));

    for n in [1usize, 64, 512] {
        let rows = native_rows(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("translate_processor_rows", n),
            &n,
            |b, _| {
                let handle = manager.handle_for("jdbc-snmp");
                let translator = Translator::new(&handle);
                b.iter(|| black_box(translator.translate_all("Processor", &rows).unwrap()));
            },
        );
    }

    group.throughput(Throughput::Elements(1));
    // Per-statement consistency check (cached handle) vs refetching the
    // handle every statement.
    group.bench_function("per_statement_validate_cached_handle", |b| {
        let handle = manager.handle_for("jdbc-snmp");
        b.iter(|| black_box(manager.is_current(&handle)));
    });
    group.bench_function("per_statement_full_handle_fetch", |b| {
        b.iter(|| black_box(manager.handle_for("jdbc-snmp").version));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
