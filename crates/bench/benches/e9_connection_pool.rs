//! E9 (§3.1.2): connection pooling "to reduce the overhead effects" of
//! per-query connects — with and without dynamic driver mapping on top.

use criterion::{criterion_group, criterion_main, Criterion};
use gridrm_bench::single_site_world;
use gridrm_dbc::JdbcUrl;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let world = single_site_world(4);
    let cm = world.gateway.connections();
    let dm = world.gateway.driver_manager();
    let sql = "SELECT Hostname, Load1 FROM Processor";
    let pinned = JdbcUrl::parse("jdbc:snmp://node01.bench/public").unwrap();
    let wildcard = JdbcUrl::parse("jdbc:://node02.bench/public").unwrap();

    let mut group = c.benchmark_group("e9_connection_pool");
    group.measurement_time(Duration::from_secs(3));

    cm.set_pooling(true);
    group.bench_function("pooled_pinned_driver", |b| {
        b.iter(|| black_box(cm.execute(&pinned, sql).unwrap()));
    });

    cm.set_pooling(false);
    group.bench_function("unpooled_pinned_driver", |b| {
        b.iter(|| black_box(cm.execute(&pinned, sql).unwrap()));
    });

    // Dynamic mapping: each query must re-resolve the driver (the paper's
    // "especially if drivers are dynamically mapped" case).
    cm.set_pooling(false);
    group.bench_function("unpooled_dynamic_mapping", |b| {
        b.iter(|| {
            // Drop the last-success cache so resolution stays dynamic.
            if let Some(d) = dm.cached_driver(&wildcard) {
                dm.record_failure(&wildcard, &d);
            }
            black_box(cm.execute(&wildcard, sql).unwrap())
        });
    });

    cm.set_pooling(true);
    group.bench_function("pooled_dynamic_mapping_cached", |b| {
        cm.execute(&wildcard, sql).unwrap(); // warm driver cache + pool
        b.iter(|| black_box(cm.execute(&wildcard, sql).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
