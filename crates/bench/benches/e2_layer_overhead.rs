//! E2 (Fig 2): the layered gateway architecture (ACIL → security →
//! RequestManager → ConnectionManager → DriverManager) adds only a small,
//! constant overhead over calling the driver directly.

use criterion::{criterion_group, criterion_main, Criterion};
use gridrm_bench::single_site_world;
use gridrm_core::ClientRequest;
use gridrm_dbc::{Driver, JdbcUrl, Properties, RowSet};
use gridrm_drivers::SnmpDriver;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let world = single_site_world(4);
    let sql = "SELECT Hostname, Load1 FROM Processor";
    let url = JdbcUrl::parse("jdbc:snmp://node01.bench/public").unwrap();

    let mut group = c.benchmark_group("e2_layer_overhead");
    group.measurement_time(Duration::from_secs(3));

    // Baseline: straight to a driver instance, reusing one connection.
    let driver = SnmpDriver::new(world.env.clone());
    let mut conn = driver.connect(&url, &Properties::new()).unwrap();
    group.bench_function("direct_driver_call", |b| {
        b.iter(|| {
            let mut stmt = conn.create_statement().unwrap();
            let mut rs = stmt.execute_query(sql).unwrap();
            black_box(RowSet::materialize(rs.as_mut()).unwrap())
        });
    });

    // Through the full gateway stack (ACIL + CGSL/FGSL + RequestManager +
    // cache bookkeeping + ConnectionManager pool + GridRMDriverManager).
    let req = ClientRequest::realtime("jdbc:snmp://node01.bench/public", sql);
    group.bench_function("through_gateway_stack", |b| {
        b.iter(|| black_box(world.gateway.query(&req).unwrap()));
    });

    // The same with history recording disabled, isolating the layers
    // themselves from the history write.
    world.gateway.request_manager().set_record_history(false);
    group.bench_function("through_gateway_stack_no_history", |b| {
        b.iter(|| black_box(world.gateway.query(&req).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
