//! E4 (Fig 4): Event Manager throughput — ingest + dispatch rate as the
//! listener population grows, and the cost of the overflow (disk-buffer)
//! path relative to the fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridrm_core::events::{EventManager, GridRMEvent, ListenerFilter, Severity};
use std::hint::black_box;
use std::time::Duration;

fn event(i: u64) -> GridRMEvent {
    GridRMEvent {
        id: 0,
        at_ms: i as i64,
        source: "node00:snmp".into(),
        hostname: Some("node00".into()),
        severity: if i.is_multiple_of(10) {
            Severity::Critical
        } else {
            Severity::Info
        },
        category: "cpu.load".into(),
        message: "threshold exceeded".into(),
        value: Some(i as f64 * 0.01),
    }
}

fn bench(c: &mut Criterion) {
    const BATCH: u64 = 1000;
    let mut group = c.benchmark_group("e4_event_throughput");
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(BATCH));

    for listeners in [0usize, 1, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("ingest_dispatch_1k", listeners),
            &listeners,
            |b, &n| {
                let manager = EventManager::new(4096);
                let rxs: Vec<_> = (0..n)
                    .map(|_| manager.register_listener(ListenerFilter::default()).1)
                    .collect();
                b.iter(|| {
                    for i in 0..BATCH {
                        manager.ingest(event(i));
                    }
                    let out = manager.dispatch();
                    for rx in &rxs {
                        while rx.try_recv().is_ok() {}
                    }
                    black_box(out.len())
                });
            },
        );
    }

    // Fast path vs forced overflow: same work, buffer 16 vs 4096.
    for (name, capacity) in [("fast_path_4096", 4096usize), ("overflow_path_16", 16)] {
        group.bench_function(name, |b| {
            let manager = EventManager::new(capacity);
            b.iter(|| {
                for i in 0..BATCH {
                    manager.ingest(event(i));
                }
                black_box(manager.dispatch().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
