//! E3 (Fig 3): end-to-end latency of the query path per driver type —
//! the "SQL query in, ResultSet out" pipeline over each native protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use gridrm_bench::single_site_world;
use gridrm_core::ClientRequest;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let world = single_site_world(8);
    world.agents.pump(); // NetLogger needs log content
    world.gateway.request_manager().set_record_history(false);

    let cases: Vec<(&str, &str, &str)> = vec![
        (
            "snmp_processor",
            "jdbc:snmp://node02.bench/public",
            "SELECT Hostname, NCpu, Load1, Load5, Load15 FROM Processor",
        ),
        (
            "snmp_filesystem_walk",
            "jdbc:snmp://node02.bench/public",
            "SELECT Name, SizeMB, AvailableMB FROM FileSystem",
        ),
        (
            "ganglia_cluster",
            "jdbc:ganglia://node00.bench/bench?ttl=0",
            "SELECT Hostname, Load1 FROM Processor",
        ),
        (
            "nws_forecasts",
            "jdbc:nws://node00.bench/perf",
            "SELECT SourceHost, DestHost, ForecastBandwidthMbps FROM NetworkElement",
        ),
        (
            "netlogger_events",
            "jdbc:netlogger://node00.bench/log",
            "SELECT Hostname, Category, Value FROM Event WHERE Category = 'cpu.load'",
        ),
        (
            "scms_cluster",
            "jdbc:scms://node00.bench/",
            "SELECT Hostname, Load1 FROM Processor",
        ),
        (
            "sqlstore_history",
            "jdbc:gridrm://local/history",
            "SELECT COUNT(*) FROM history",
        ),
    ];

    let mut group = c.benchmark_group("e3_query_path");
    group.measurement_time(Duration::from_secs(3));
    for (name, source, sql) in cases {
        let req = ClientRequest::realtime(source, sql);
        group.bench_function(name, |b| {
            b.iter(|| match world.gateway.query(&req) {
                Ok(r) => black_box(r),
                Err(e) => panic!(
                    "case failed: sql={:?} src={:?} err={e}",
                    req.sql, req.sources
                ),
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
