//! E7 (§4, Fig 9): serving repeat clients from the Cache Controller vs
//! re-polling the agent. (The traffic-count side of this experiment lives
//! in the `experiments e7` harness; this bench shows the latency side.)

use criterion::{criterion_group, criterion_main, Criterion};
use gridrm_bench::single_site_world;
use gridrm_core::ClientRequest;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let world = single_site_world(16);
    world.gateway.request_manager().set_record_history(false);
    let source = "jdbc:ganglia://node00.bench/bench?ttl=0";
    let sql = "SELECT Hostname, Load1, CpuIdle FROM Processor";

    let mut group = c.benchmark_group("e7_cache_scalability");
    group.measurement_time(Duration::from_secs(3));

    let realtime = ClientRequest::realtime(source, sql);
    group.bench_function("realtime_poll_16_hosts", |b| {
        b.iter(|| black_box(world.gateway.query(&realtime).unwrap()));
    });

    let cached = ClientRequest::cached(source, sql, Some(u64::MAX / 2));
    world.gateway.query(&cached).unwrap(); // prime
    group.bench_function("cache_served_16_hosts", |b| {
        b.iter(|| {
            let resp = world.gateway.query(&cached).unwrap();
            debug_assert_eq!(resp.served_from_cache, 1);
            black_box(resp)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
