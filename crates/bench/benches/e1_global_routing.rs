//! E1 (Fig 1): local queries are served entirely within the site; remote
//! queries pay one extra gateway hop. Measures the added cost of Global-
//! layer routing (serialisation + directory lookup + gateway RPC).

use criterion::{criterion_group, criterion_main, Criterion};
use gridrm_bench::grid_world;
use gridrm_core::ClientRequest;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let world = grid_world(2, 4);
    let local_layer = &world.sites[0].3;
    let sql = "SELECT Hostname, Load1 FROM Processor";

    let mut group = c.benchmark_group("e1_global_routing");
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("local_source_via_global_layer", |b| {
        let req = ClientRequest::realtime("jdbc:snmp://node01.site0/public", sql);
        b.iter(|| black_box(local_layer.query(&req).unwrap()));
    });
    group.bench_function("remote_source_via_global_layer", |b| {
        let req = ClientRequest::realtime("jdbc:snmp://node01.site1/public", sql);
        b.iter(|| black_box(local_layer.query(&req).unwrap()));
    });
    group.bench_function("remote_source_served_from_remote_cache", |b| {
        let req = ClientRequest::cached("jdbc:snmp://node01.site1/public", sql, Some(u64::MAX / 2));
        local_layer.query(&req).unwrap(); // prime
        b.iter(|| black_box(local_layer.query(&req).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
