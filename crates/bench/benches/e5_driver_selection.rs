//! E5 (Fig 5, Table 2): driver-to-resource allocation cost — dynamic
//! first-time scans vs the last-success cache vs static preferences, as
//! the registry grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridrm_core::GridRMDriverManager;
use gridrm_dbc::{Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// A synthetic driver whose accepts_url is a cheap string check — so the
/// bench isolates the *selection machinery*, not network probing.
struct SyntheticDriver {
    name: String,
    proto: String,
}

impl Driver for SyntheticDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: self.name.clone(),
            subprotocol: self.proto.clone(),
            version: (1, 0),
            description: String::new(),
        }
    }
    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        url.subprotocol == self.proto
    }
    fn connect(&self, _url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        Err(gridrm_dbc::SqlError::Connection("bench driver".into()))
    }
}

fn manager_with(n: usize) -> GridRMDriverManager {
    let m = GridRMDriverManager::new();
    for i in 0..n {
        m.register(Arc::new(SyntheticDriver {
            name: format!("drv-{i}"),
            proto: format!("proto{i}"),
        }));
    }
    m
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_driver_selection");
    group.measurement_time(Duration::from_secs(3));

    for n in [4usize, 16, 64] {
        // Worst case: the matching driver is the last registered.
        let url = JdbcUrl::parse(&format!("jdbc:proto{}://host/x", n - 1)).unwrap();

        let m = manager_with(n);
        group.bench_with_input(BenchmarkId::new("dynamic_scan", n), &n, |b, _| {
            b.iter(|| {
                // No cache: record a failure each round to keep the path
                // dynamic.
                let d = m.resolve(&url).unwrap();
                m.record_failure(&url, &d.name());
                black_box(d.name())
            });
        });

        let m = manager_with(n);
        m.record_success(&url, &format!("drv-{}", n - 1));
        group.bench_with_input(BenchmarkId::new("last_success_cache", n), &n, |b, _| {
            b.iter(|| black_box(m.resolve(&url).unwrap().name()));
        });

        let m = manager_with(n);
        m.set_preferences(&url, vec![format!("drv-{}", n - 1)]);
        group.bench_with_input(BenchmarkId::new("static_preference", n), &n, |b, _| {
            b.iter(|| {
                // Defeat the cache so the static path is exercised.
                m.record_failure(&url, &format!("drv-{}", n - 1));
                black_box(m.resolve(&url).unwrap().name())
            });
        });
    }

    // With *real* drivers, a dynamic wildcard scan probes agents over the
    // network (Table 2's "can connect to the data source?"), which is what
    // the last-success cache actually amortises.
    let world = gridrm_bench::single_site_world(4);
    let dm = world.gateway.driver_manager();
    let wildcard = JdbcUrl::parse("jdbc:://node01.bench/public").unwrap();
    group.bench_function("real_drivers_dynamic_probe_scan", |b| {
        b.iter(|| {
            if let Some(d) = dm.cached_driver(&wildcard) {
                dm.record_failure(&wildcard, &d);
            }
            black_box(dm.resolve(&wildcard).unwrap().name())
        });
    });
    let d = dm.resolve(&wildcard).unwrap();
    dm.record_success(&wildcard, &d.name());
    group.bench_function("real_drivers_last_success_cache", |b| {
        b.iter(|| black_box(dm.resolve(&wildcard).unwrap().name()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
