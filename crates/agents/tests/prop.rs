//! Property tests for the agent substrates: SNMP codec round-trips, OID
//! ordering vs GETNEXT, and ULM line round-trips.

use gridrm_agents::netlogger::UlmEvent;
use gridrm_agents::snmp::codec::{self, Pdu, SnmpMessage, SnmpValue};
use gridrm_agents::snmp::Oid;
use proptest::prelude::*;

fn arb_oid() -> impl Strategy<Value = Oid> {
    prop::collection::vec(0u32..100_000, 1..12).prop_map(Oid)
}

fn arb_snmp_value() -> impl Strategy<Value = SnmpValue> {
    prop_oneof![
        any::<i64>().prop_map(SnmpValue::Integer),
        any::<u64>().prop_map(SnmpValue::Counter64),
        any::<u64>().prop_map(SnmpValue::Gauge),
        "[ -~]{0,24}".prop_map(SnmpValue::OctetString),
        any::<u64>().prop_map(SnmpValue::TimeTicks),
        arb_oid().prop_map(SnmpValue::ObjectId),
        Just(SnmpValue::Null),
    ]
}

fn arb_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        (any::<u32>(), prop::collection::vec(arb_oid(), 0..8))
            .prop_map(|(request_id, oids)| Pdu::Get { request_id, oids }),
        (any::<u32>(), prop::collection::vec(arb_oid(), 0..8))
            .prop_map(|(request_id, oids)| Pdu::GetNext { request_id, oids }),
        (any::<u32>(), 1u32..64, arb_oid()).prop_map(|(request_id, max_repetitions, oid)| {
            Pdu::GetBulk {
                request_id,
                max_repetitions,
                oid,
            }
        }),
        (
            any::<u32>(),
            any::<u8>(),
            prop::collection::vec((arb_oid(), arb_snmp_value()), 0..10)
        )
            .prop_map(|(request_id, error_status, bindings)| Pdu::Response {
                request_id,
                error_status,
                bindings,
            }),
        (
            arb_oid(),
            prop::collection::vec((arb_oid(), arb_snmp_value()), 0..6)
        )
            .prop_map(|(trap_oid, bindings)| Pdu::Trap { trap_oid, bindings }),
    ]
}

proptest! {
    /// Every message round-trips through the codec.
    #[test]
    fn snmp_codec_roundtrip(community in "[a-z]{0,12}", version in 0u8..4, pdu in arb_pdu()) {
        let msg = SnmpMessage { version, community, pdu };
        let bytes = codec::encode(&msg);
        let back = codec::decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn snmp_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = codec::decode(&bytes);
    }

    /// Truncating a valid encoding never panics and never decodes to the
    /// original (no silent mis-framing).
    #[test]
    fn snmp_truncation_is_detected(pdu in arb_pdu(), cut in 0.0f64..1.0) {
        let msg = SnmpMessage { version: 2, community: "public".into(), pdu };
        let bytes = codec::encode(&msg);
        if bytes.len() > 1 {
            let n = ((bytes.len() - 1) as f64 * cut) as usize;
            if let Ok(decoded) = codec::decode(&bytes[..n]) { prop_assert_ne!(decoded, msg) }
        }
    }

    /// OID ordering is consistent with string component comparison and
    /// prefix relationships (the invariant GETNEXT walks rely on).
    #[test]
    fn oid_order_laws(a in arb_oid(), b in arb_oid()) {
        // Antisymmetry via the derived Ord.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // A strict prefix always sorts before its extension.
        if a.is_prefix_of(&b) && a != b {
            prop_assert!(a < b);
        }
        // Display/parse round-trip.
        let reparsed: Oid = a.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, a.clone());
        // child() extends and is strictly greater.
        let c = a.child(7);
        prop_assert!(a.is_prefix_of(&c));
        prop_assert!(c > a);
    }

    /// ULM event lines round-trip through parse().
    #[test]
    fn ulm_roundtrip(
        at_ms in 0u64..(27u64 * 28 * 86_400_000),
        host in "[a-z][a-z0-9.]{0,16}",
        level in prop::sample::select(vec!["Info", "Warning", "Error"]),
        event in "[a-z]+(\\.[a-z]+){0,2}",
        value in prop::option::of(-1e6f64..1e6),
    ) {
        let e = UlmEvent {
            at_ms,
            host: host.clone(),
            prog: "netlogger".into(),
            level: level.to_owned(),
            event: event.clone(),
            value,
        };
        let back = UlmEvent::parse(&e.to_line()).unwrap();
        prop_assert_eq!(back.at_ms, at_ms);
        prop_assert_eq!(back.host, host);
        prop_assert_eq!(back.event, event);
        match (back.value, value) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-3),
            (None, None) => {}
            other => prop_assert!(false, "value mismatch {:?}", other),
        }
    }

    /// ULM parse never panics on arbitrary text.
    #[test]
    fn ulm_parse_never_panics(line in "\\PC{0,96}") {
        let _ = UlmEvent::parse(&line);
    }
}
