//! The Ganglia gmond-style agent: any connection returns the whole
//! cluster's state as one XML document — the paper's archetype of a
//! *coarse-grained* data source whose responses need real parsing (§3.2.4).

use gridrm_resmodel::{HostSnapshot, SiteModel};
use gridrm_simnet::Service;
use std::fmt::Write as _;
use std::sync::Arc;

/// Escape the five XML special characters.
pub fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

fn metric(out: &mut String, name: &str, val: impl std::fmt::Display, ty: &str, units: &str) {
    let _ = writeln!(
        out,
        r#"<METRIC NAME="{name}" VAL="{val}" TYPE="{ty}" UNITS="{units}"/>"#
    );
}

/// Render one host element with the standard gmond metric set.
fn host_xml(out: &mut String, snap: &HostSnapshot) {
    let spec = &snap.spec;
    let ip = spec
        .nics
        .first()
        .map(|(_, ip, _)| ip.clone())
        .unwrap_or_default();
    let _ = writeln!(
        out,
        r#"<HOST NAME="{}" IP="{}" REPORTED="{}">"#,
        xml_escape(&spec.hostname),
        ip,
        snap.at_ms / 1000
    );
    metric(out, "load_one", format!("{:.2}", snap.load1), "float", "");
    metric(out, "load_five", format!("{:.2}", snap.load5), "float", "");
    metric(
        out,
        "load_fifteen",
        format!("{:.2}", snap.load15),
        "float",
        "",
    );
    metric(out, "cpu_num", spec.ncpu, "uint16", "CPUs");
    metric(out, "cpu_speed", spec.clock_mhz, "uint32", "MHz");
    metric(
        out,
        "cpu_user",
        format!("{:.1}", snap.cpu_user),
        "float",
        "%",
    );
    metric(
        out,
        "cpu_system",
        format!("{:.1}", snap.cpu_system),
        "float",
        "%",
    );
    metric(
        out,
        "cpu_idle",
        format!("{:.1}", snap.cpu_idle),
        "float",
        "%",
    );
    metric(out, "mem_total", spec.mem_mb * 1024, "uint32", "KB");
    metric(
        out,
        "mem_free",
        snap.mem_available_mb * 1024,
        "uint32",
        "KB",
    );
    metric(out, "swap_total", spec.swap_mb * 1024, "uint32", "KB");
    metric(
        out,
        "swap_free",
        snap.swap_available_mb * 1024,
        "uint32",
        "KB",
    );
    let disk_total_mb: u64 = snap.filesystems.iter().map(|f| f.size_mb).sum();
    let disk_free_mb: u64 = snap.filesystems.iter().map(|f| f.available_mb).sum();
    metric(
        out,
        "disk_total",
        format!("{:.3}", disk_total_mb as f64 / 1024.0),
        "double",
        "GB",
    );
    metric(
        out,
        "disk_free",
        format!("{:.3}", disk_free_mb as f64 / 1024.0),
        "double",
        "GB",
    );
    if let Some(nic) = snap.nics.first() {
        metric(out, "bytes_in", nic.rx_bytes, "float", "bytes/sec");
        metric(out, "bytes_out", nic.tx_bytes, "float", "bytes/sec");
    }
    metric(out, "boottime", snap.boot_time_ms / 1000, "uint32", "s");
    metric(out, "os_name", xml_escape(&spec.os.name), "string", "");
    metric(
        out,
        "os_release",
        xml_escape(&spec.os.release),
        "string",
        "",
    );
    metric(out, "machine_type", "x86", "string", "");
    let _ = writeln!(out, "</HOST>");
}

/// The gmond-style agent for one site. Register at `"{head}:ganglia"`.
/// The request payload is ignored (connecting to gmond's TCP port dumps
/// the XML), matching real gmond behaviour.
pub struct GangliaAgent {
    site: Arc<SiteModel>,
    head: String,
}

impl GangliaAgent {
    /// Agent for `site`, hosted on the head node.
    pub fn new(site: Arc<SiteModel>) -> Arc<GangliaAgent> {
        let head = site
            .hostnames()
            .first()
            .cloned()
            .unwrap_or_else(|| format!("head.{}", site.name()));
        Arc::new(GangliaAgent { site, head })
    }

    /// The simnet address to register at.
    pub fn address(&self) -> String {
        format!("{}:ganglia", self.head)
    }

    /// Produce the full cluster XML dump.
    pub fn dump(&self) -> String {
        let snaps = self.site.all_snapshots();
        let localtime = snaps.first().map(|s| s.at_ms / 1000).unwrap_or(0);
        let mut out = String::with_capacity(snaps.len() * 1200 + 256);
        let _ = writeln!(out, r#"<?xml version="1.0" encoding="ISO-8859-1"?>"#);
        let _ = writeln!(out, r#"<GANGLIA_XML VERSION="2.5.7" SOURCE="gmond">"#);
        let _ = writeln!(
            out,
            r#"<CLUSTER NAME="{}" LOCALTIME="{}" OWNER="gridrm" URL="">"#,
            xml_escape(self.site.name()),
            localtime
        );
        for snap in &snaps {
            host_xml(&mut out, snap);
        }
        let _ = writeln!(out, "</CLUSTER>");
        let _ = writeln!(out, "</GANGLIA_XML>");
        out
    }
}

impl Service for GangliaAgent {
    fn handle(&self, _from: &str, _request: &[u8]) -> Vec<u8> {
        self.dump().into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_resmodel::SiteSpec;
    use gridrm_simnet::{Network, SimClock};

    fn setup(hosts: usize) -> (Arc<Network>, Arc<GangliaAgent>) {
        let net = Network::new(SimClock::new(), 5);
        let site = SiteModel::generate(9, &SiteSpec::new("clu", hosts, 4));
        site.advance_to(120_000);
        let agent = GangliaAgent::new(site);
        net.register(&agent.address(), agent.clone());
        (net, agent)
    }

    #[test]
    fn dump_contains_every_host() {
        let (net, agent) = setup(5);
        let xml = String::from_utf8(net.request("gw", &agent.address(), b"").unwrap()).unwrap();
        for i in 0..5 {
            assert!(
                xml.contains(&format!(r#"<HOST NAME="node{i:02}.clu""#)),
                "{xml}"
            );
        }
        assert!(xml.contains(r#"<CLUSTER NAME="clu""#));
        assert!(xml.contains(r#"<METRIC NAME="load_one""#));
        assert!(xml.ends_with("</GANGLIA_XML>\n"));
    }

    #[test]
    fn response_grows_with_cluster_size() {
        // The coarse-grained property of E8: response size scales with the
        // whole cluster, regardless of what the client wanted.
        let (net1, a1) = setup(1);
        let (net16, a16) = setup(16);
        let small = net1.request("gw", &a1.address(), b"").unwrap().len();
        let big = net16.request("gw", &a16.address(), b"").unwrap().len();
        assert!(big > small * 8, "small={small} big={big}");
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
        assert_eq!(xml_escape("plain"), "plain");
    }

    #[test]
    fn metrics_have_expected_units() {
        let (net, agent) = setup(1);
        let xml = String::from_utf8(net.request("gw", &agent.address(), b"").unwrap()).unwrap();
        assert!(
            xml.contains(r#"<METRIC NAME="mem_total" VAL="2097152" TYPE="uint32" UNITS="KB"/>"#)
        );
        assert!(xml.contains(r#"NAME="cpu_speed" VAL="2400""#));
    }
}
