#![warn(missing_docs)]

//! # gridrm-agents — native monitoring agents
//!
//! The paper's initial driver set targets "SNMP, Ganglia, NWS, Net Logger
//! and SCMS … selected for their data representation characteristics and as
//! they are commonly used systems" (§3.2.4). This crate implements those
//! five agents from scratch against the simulated resource model, each
//! speaking its own wire format over the simulated network:
//!
//! | Agent | Granularity | Format | Paper's characterisation |
//! |-------|-------------|--------|--------------------------|
//! | [`snmp`] | fine | binary TLV ("BER-lite") | "fine grained native requests … little or no parsing" |
//! | [`ganglia`] | coarse | whole-cluster XML | "responses are typically coarse grained … greater overhead to parse" |
//! | [`nws`] | coarse | plain text + forecasts | same, plus genuine NWS forecasting |
//! | [`netlogger`] | fine | ULM text lines | fine-grained log events, also a native *event* source |
//! | [`scms`] | fine | key=value text | simple cluster status |
//!
//! Addressing convention: an agent for protocol `p` on host `h` registers
//! at simnet address `"{h}:{p}"` (e.g. `node00.site-a:snmp`); cluster-level
//! agents (Ganglia, NWS, SCMS, NetLogger) live on the site head node.
//! [`deploy::deploy_site`] wires a whole site up in one call.

pub mod deploy;
pub mod ganglia;
pub mod netlogger;
pub mod nws;
pub mod scms;
pub mod snmp;

pub use deploy::{deploy_site, SiteAgents};
