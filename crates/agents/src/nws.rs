//! The Network Weather Service agent: measurement series plus a genuine
//! NWS-style forecaster bank over a plain-text protocol.
//!
//! NWS's defining feature is *prediction*: it runs a battery of simple
//! forecasters over each measurement series, tracks each forecaster's
//! mean-squared error on one-step-ahead predictions, and reports the
//! prediction of the historically best one. This module reproduces that
//! mechanism with the classic predictor families (last value, running
//! mean, sliding-window means, sliding-window medians).

use gridrm_resmodel::{Measurement, SiteModel};
use gridrm_simnet::Service;
use std::fmt::Write as _;
use std::sync::Arc;

/// One forecaster's output.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// Predicted next value.
    pub value: f64,
    /// Name of the winning predictor.
    pub method: &'static str,
    /// Its mean squared one-step-ahead error over the history.
    pub mse: f64,
}

/// The predictor bank.
const WINDOWS: [usize; 3] = [5, 10, 20];

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// A named predictor: maps a history prefix to the next-value prediction.
type Predictor = (&'static str, Box<dyn Fn(&[f64]) -> f64>);

/// All predictors: `(name, f(history_prefix) -> prediction)`.
fn predictors() -> Vec<Predictor> {
    let mut v: Vec<Predictor> = vec![
        (
            "last",
            Box::new(|h: &[f64]| h.last().copied().unwrap_or(0.0)),
        ),
        ("running_mean", Box::new(mean)),
        ("running_median", Box::new(median)),
    ];
    for w in WINDOWS {
        let name: &'static str = match w {
            5 => "sliding_mean_5",
            10 => "sliding_mean_10",
            _ => "sliding_mean_20",
        };
        v.push((
            name,
            Box::new(move |h: &[f64]| mean(&h[h.len().saturating_sub(w)..])),
        ));
        let mname: &'static str = match w {
            5 => "sliding_median_5",
            10 => "sliding_median_10",
            _ => "sliding_median_20",
        };
        v.push((
            mname,
            Box::new(move |h: &[f64]| median(&h[h.len().saturating_sub(w)..])),
        ));
    }
    v
}

/// Run the forecaster bank over a series: each predictor is scored by its
/// one-step-ahead MSE over the history; the winner's prediction from the
/// full history is returned.
pub fn forecast(series: &[f64]) -> Forecast {
    if series.is_empty() {
        return Forecast {
            value: 0.0,
            method: "none",
            mse: f64::INFINITY,
        };
    }
    let bank = predictors();
    let mut best: Option<Forecast> = None;
    for (name, pred) in &bank {
        let mut se = 0.0;
        let mut n = 0usize;
        for t in 1..series.len() {
            let p = pred(&series[..t]);
            let e = p - series[t];
            se += e * e;
            n += 1;
        }
        let mse = if n == 0 { 0.0 } else { se / n as f64 };
        let candidate = Forecast {
            value: pred(series),
            method: name,
            mse,
        };
        match &best {
            Some(b) if b.mse <= mse => {}
            _ => best = Some(candidate),
        }
    }
    best.expect("bank is non-empty")
}

/// The NWS "nameserver+sensor" agent for one site. Register at
/// `"{head}:nws"`. Protocol (one request per line, text in/text out):
///
/// * `SERIES` — list monitored `src dst` pairs;
/// * `MEASURE <src> <dst>` — latest bandwidth/latency measurement;
/// * `FORECAST <src> <dst>` — forecaster-bank outputs;
/// * `HISTORY <src> <dst> <n>` — the last `n` raw measurements.
pub struct NwsAgent {
    site: Arc<SiteModel>,
    head: String,
}

impl NwsAgent {
    /// Create the agent for `site`, hosted on the site head node.
    pub fn new(site: Arc<SiteModel>) -> Arc<NwsAgent> {
        let head = site
            .hostnames()
            .first()
            .cloned()
            .unwrap_or_else(|| format!("head.{}", site.name()));
        Arc::new(NwsAgent { site, head })
    }

    /// The simnet address to register this agent at.
    pub fn address(&self) -> String {
        format!("{}:nws", self.head)
    }

    fn series(&self) -> String {
        let mut out = String::new();
        for (src, dst) in self.site.pair_names() {
            let _ = writeln!(out, "bandwidthMbps {src} {dst}");
            let _ = writeln!(out, "latencyMs {src} {dst}");
        }
        out
    }

    fn measure(&self, src: &str, dst: &str) -> String {
        match self.site.pair_history(src, dst).last() {
            Some(m) => format!(
                "bandwidthMbps {:.4}\nlatencyMs {:.4}\nat {}\n",
                m.bandwidth_mbps, m.latency_ms, m.at_ms
            ),
            None => "ERROR no such series\n".to_owned(),
        }
    }

    fn forecast_pair(&self, src: &str, dst: &str) -> String {
        let hist: Vec<Measurement> = self.site.pair_history(src, dst);
        if hist.is_empty() {
            return "ERROR no such series\n".to_owned();
        }
        let bw: Vec<f64> = hist.iter().map(|m| m.bandwidth_mbps).collect();
        let lat: Vec<f64> = hist.iter().map(|m| m.latency_ms).collect();
        let fb = forecast(&bw);
        let fl = forecast(&lat);
        format!(
            "bandwidthMbps_forecast {:.4} method {} mse {:.6}\n\
             latencyMs_forecast {:.4} method {} mse {:.6}\n",
            fb.value, fb.method, fb.mse, fl.value, fl.method, fl.mse
        )
    }

    fn history(&self, src: &str, dst: &str, n: usize) -> String {
        let hist = self.site.pair_history(src, dst);
        if hist.is_empty() {
            return "ERROR no such series\n".to_owned();
        }
        let mut out = String::new();
        for m in hist.iter().rev().take(n).rev() {
            let _ = writeln!(
                out,
                "{} {:.4} {:.4}",
                m.at_ms, m.bandwidth_mbps, m.latency_ms
            );
        }
        out
    }
}

impl Service for NwsAgent {
    fn handle(&self, _from: &str, request: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(request);
        let mut parts = text.split_whitespace();
        let reply = match parts.next() {
            Some("SERIES") => self.series(),
            Some("MEASURE") => match (parts.next(), parts.next()) {
                (Some(s), Some(d)) => self.measure(s, d),
                _ => "ERROR usage: MEASURE <src> <dst>\n".to_owned(),
            },
            Some("FORECAST") => match (parts.next(), parts.next()) {
                (Some(s), Some(d)) => self.forecast_pair(s, d),
                _ => "ERROR usage: FORECAST <src> <dst>\n".to_owned(),
            },
            Some("HISTORY") => match (parts.next(), parts.next(), parts.next()) {
                (Some(s), Some(d), Some(n)) => self.history(s, d, n.parse().unwrap_or(10)),
                _ => "ERROR usage: HISTORY <src> <dst> <n>\n".to_owned(),
            },
            _ => "ERROR unknown command\n".to_owned(),
        };
        reply.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_resmodel::SiteSpec;
    use gridrm_simnet::{Network, SimClock};

    fn setup() -> (Arc<Network>, Arc<NwsAgent>, (String, String)) {
        let net = Network::new(SimClock::new(), 3);
        let mut spec = SiteSpec::new("s", 3, 2);
        spec.peers = vec!["node00.r".to_owned()];
        let site = SiteModel::generate(11, &spec);
        site.advance_to(3_600_000); // 1 h of measurements
        let pair = site.pair_names()[0].clone();
        let agent = NwsAgent::new(site);
        net.register(&agent.address(), agent.clone());
        (net, agent, pair)
    }

    fn ask(net: &Network, agent: &NwsAgent, cmd: &str) -> String {
        String::from_utf8(net.request("gw", &agent.address(), cmd.as_bytes()).unwrap()).unwrap()
    }

    #[test]
    fn series_lists_pairs() {
        let (net, agent, (src, dst)) = setup();
        let out = ask(&net, &agent, "SERIES");
        assert!(out.contains(&format!("bandwidthMbps {src} {dst}")));
        assert!(out.contains("latencyMs"));
    }

    #[test]
    fn measure_returns_values() {
        let (net, agent, (src, dst)) = setup();
        let out = ask(&net, &agent, &format!("MEASURE {src} {dst}"));
        assert!(out.starts_with("bandwidthMbps "));
        assert!(out.contains("latencyMs "));
    }

    #[test]
    fn forecast_returns_method_and_mse() {
        let (net, agent, (src, dst)) = setup();
        let out = ask(&net, &agent, &format!("FORECAST {src} {dst}"));
        assert!(out.contains("bandwidthMbps_forecast"), "{out}");
        assert!(out.contains("method"));
        assert!(out.contains("mse"));
    }

    #[test]
    fn history_limited() {
        let (net, agent, (src, dst)) = setup();
        let out = ask(&net, &agent, &format!("HISTORY {src} {dst} 5"));
        assert!(out.lines().count() <= 5);
        assert!(out.lines().count() >= 1);
    }

    #[test]
    fn unknown_pair_errors() {
        let (net, agent, _) = setup();
        assert!(ask(&net, &agent, "MEASURE a b").starts_with("ERROR"));
        assert!(ask(&net, &agent, "NONSENSE").starts_with("ERROR"));
        assert!(ask(&net, &agent, "MEASURE onlyone").starts_with("ERROR"));
    }

    // --- forecaster bank unit tests --------------------------------------

    #[test]
    fn forecast_constant_series_is_exact() {
        let f = forecast(&[5.0; 30]);
        assert!((f.value - 5.0).abs() < 1e-9);
        assert!(f.mse < 1e-12);
    }

    #[test]
    fn forecast_is_robust_to_spikes() {
        // Upward trend plus isolated spikes: running-family predictors lag
        // the trend, `last` is contaminated on the step after each spike,
        // and sliding means are contaminated for a whole window — a sliding
        // *median* handles all three, so it must win and the forecast must
        // track the trend rather than the spikes.
        let mut s: Vec<f64> = (0..120).map(|i| i as f64).collect();
        for i in (13..120).step_by(17) {
            s[i] += 500.0;
        }
        let f = forecast(&s);
        // A windowed predictor must win (running-family predictors lag the
        // trend hopelessly; `last` eats the full post-spike error).
        assert!(f.method.starts_with("sliding_"), "picked {}", f.method);
        // And the forecast must track the trend level, not the spikes.
        assert!((100.0..140.0).contains(&f.value), "forecast {}", f.value);
    }

    #[test]
    fn forecast_tracks_trend_better_with_last() {
        // Strictly increasing ramp: "last" has the lowest one-step error.
        let s: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let f = forecast(&s);
        assert_eq!(f.method, "last");
        assert!((f.value - 49.0).abs() < 1e-9);
    }

    #[test]
    fn forecast_empty_series() {
        let f = forecast(&[]);
        assert_eq!(f.method, "none");
    }

    #[test]
    fn median_of_even_length() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }
}
