//! SNMP wire format: a compact TLV encoding ("BER-lite").
//!
//! Real SNMP uses ASN.1 BER. For the reproduction the interesting property
//! is that SNMP is a *binary, fine-grained request/response protocol* whose
//! values need essentially no parsing on the driver side (§3.2.4) — a
//! simple tag/length/value scheme preserves exactly that while staying
//! fully implemented and tested here. See DESIGN.md §2.

use super::oid::Oid;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Typed SNMP values.
#[derive(Debug, Clone, PartialEq)]
pub enum SnmpValue {
    /// INTEGER.
    Integer(i64),
    /// Counter64 (monotone).
    Counter64(u64),
    /// Gauge32-style unsigned value.
    Gauge(u64),
    /// OCTET STRING (UTF-8 in this implementation).
    OctetString(String),
    /// TimeTicks, centiseconds.
    TimeTicks(u64),
    /// An OID-valued binding.
    ObjectId(Oid),
    /// ASN.1 NULL / noSuchObject.
    Null,
}

impl fmt::Display for SnmpValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnmpValue::Integer(i) => write!(f, "INTEGER: {i}"),
            SnmpValue::Counter64(c) => write!(f, "Counter64: {c}"),
            SnmpValue::Gauge(g) => write!(f, "Gauge: {g}"),
            SnmpValue::OctetString(s) => write!(f, "STRING: {s}"),
            SnmpValue::TimeTicks(t) => write!(f, "Timeticks: {t}"),
            SnmpValue::ObjectId(o) => write!(f, "OID: {o}"),
            SnmpValue::Null => f.write_str("NULL"),
        }
    }
}

/// SNMP error status codes (subset).
pub mod error_status {
    /// No error.
    pub const NO_ERROR: u8 = 0;
    /// Name not found (v1 semantics, also used for end-of-mib here).
    pub const NO_SUCH_NAME: u8 = 2;
    /// Authentication (community) failure.
    pub const AUTH_ERROR: u8 = 16;
}

/// Protocol data units.
#[derive(Debug, Clone, PartialEq)]
pub enum Pdu {
    /// GET: fetch exactly these OIDs.
    Get {
        /// Request correlation id.
        request_id: u32,
        /// OIDs to fetch.
        oids: Vec<Oid>,
    },
    /// GETNEXT: fetch the successors of these OIDs.
    GetNext {
        /// Request correlation id.
        request_id: u32,
        /// Starting OIDs.
        oids: Vec<Oid>,
    },
    /// GETBULK: walk up to `max_repetitions` successors of one OID.
    GetBulk {
        /// Request correlation id.
        request_id: u32,
        /// Maximum bindings to return.
        max_repetitions: u32,
        /// Starting OID.
        oid: Oid,
    },
    /// Response to any request.
    Response {
        /// Echoed correlation id.
        request_id: u32,
        /// 0 = ok; see [`error_status`].
        error_status: u8,
        /// Variable bindings.
        bindings: Vec<(Oid, SnmpValue)>,
    },
    /// Asynchronous notification (v2c-style trap).
    Trap {
        /// The trap's identity OID.
        trap_oid: Oid,
        /// Payload bindings.
        bindings: Vec<(Oid, SnmpValue)>,
    },
}

/// A full message: version + community + PDU.
#[derive(Debug, Clone, PartialEq)]
pub struct SnmpMessage {
    /// Protocol version (2 = v2c-alike).
    pub version: u8,
    /// Community string (the URL path in GridRM SNMP URLs).
    pub community: String,
    /// The request or response.
    pub pdu: Pdu,
}

impl SnmpMessage {
    /// Wrap a PDU in a v2c message.
    pub fn v2c(community: &str, pdu: Pdu) -> SnmpMessage {
        SnmpMessage {
            version: 2,
            community: community.to_owned(),
            pdu,
        }
    }
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended prematurely.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// String payload was not UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("truncated SNMP message"),
            CodecError::BadTag(t) => write!(f, "unknown tag 0x{t:02x}"),
            CodecError::BadUtf8 => f.write_str("invalid UTF-8 in octet string"),
        }
    }
}

impl std::error::Error for CodecError {}

// Tag bytes.
const T_INT: u8 = 0x02;
const T_STR: u8 = 0x04;
const T_NULL: u8 = 0x05;
const T_OID: u8 = 0x06;
const T_CNT: u8 = 0x46;
const T_GAUGE: u8 = 0x42;
const T_TICKS: u8 = 0x43;
const T_GET: u8 = 0xA0;
const T_GETNEXT: u8 = 0xA1;
const T_RESPONSE: u8 = 0xA2;
const T_GETBULK: u8 = 0xA5;
const T_TRAP: u8 = 0xA7;

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(b);
            return;
        }
        buf.put_u8(b | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let b = buf.get_u8();
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Truncated);
        }
    }
}

fn put_oid(buf: &mut BytesMut, oid: &Oid) {
    put_varint(buf, oid.0.len() as u64);
    for c in &oid.0 {
        put_varint(buf, *c as u64);
    }
}

fn get_oid(buf: &mut Bytes) -> Result<Oid, CodecError> {
    let n = get_varint(buf)? as usize;
    if n > 128 {
        return Err(CodecError::Truncated);
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(get_varint(buf)? as u32);
    }
    Ok(Oid(v))
}

fn put_value(buf: &mut BytesMut, v: &SnmpValue) {
    match v {
        SnmpValue::Integer(i) => {
            buf.put_u8(T_INT);
            put_varint(buf, zigzag(*i));
        }
        SnmpValue::Counter64(c) => {
            buf.put_u8(T_CNT);
            put_varint(buf, *c);
        }
        SnmpValue::Gauge(g) => {
            buf.put_u8(T_GAUGE);
            put_varint(buf, *g);
        }
        SnmpValue::OctetString(s) => {
            buf.put_u8(T_STR);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        SnmpValue::TimeTicks(t) => {
            buf.put_u8(T_TICKS);
            put_varint(buf, *t);
        }
        SnmpValue::ObjectId(o) => {
            buf.put_u8(T_OID);
            put_oid(buf, o);
        }
        SnmpValue::Null => buf.put_u8(T_NULL),
    }
}

fn get_value(buf: &mut Bytes) -> Result<SnmpValue, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    match buf.get_u8() {
        T_INT => Ok(SnmpValue::Integer(unzigzag(get_varint(buf)?))),
        T_CNT => Ok(SnmpValue::Counter64(get_varint(buf)?)),
        T_GAUGE => Ok(SnmpValue::Gauge(get_varint(buf)?)),
        T_STR => {
            let n = get_varint(buf)? as usize;
            if buf.remaining() < n {
                return Err(CodecError::Truncated);
            }
            let bytes = buf.split_to(n);
            String::from_utf8(bytes.to_vec())
                .map(SnmpValue::OctetString)
                .map_err(|_| CodecError::BadUtf8)
        }
        T_TICKS => Ok(SnmpValue::TimeTicks(get_varint(buf)?)),
        T_OID => Ok(SnmpValue::ObjectId(get_oid(buf)?)),
        T_NULL => Ok(SnmpValue::Null),
        t => Err(CodecError::BadTag(t)),
    }
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn put_bindings(buf: &mut BytesMut, bindings: &[(Oid, SnmpValue)]) {
    put_varint(buf, bindings.len() as u64);
    for (oid, value) in bindings {
        put_oid(buf, oid);
        put_value(buf, value);
    }
}

fn get_bindings(buf: &mut Bytes) -> Result<Vec<(Oid, SnmpValue)>, CodecError> {
    let n = get_varint(buf)? as usize;
    if n > 4096 {
        return Err(CodecError::Truncated);
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        let oid = get_oid(buf)?;
        let value = get_value(buf)?;
        v.push((oid, value));
    }
    Ok(v)
}

/// Encode a message to bytes.
pub fn encode(msg: &SnmpMessage) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(msg.version);
    put_varint(&mut buf, msg.community.len() as u64);
    buf.put_slice(msg.community.as_bytes());
    match &msg.pdu {
        Pdu::Get { request_id, oids } => {
            buf.put_u8(T_GET);
            put_varint(&mut buf, *request_id as u64);
            put_varint(&mut buf, oids.len() as u64);
            for o in oids {
                put_oid(&mut buf, o);
            }
        }
        Pdu::GetNext { request_id, oids } => {
            buf.put_u8(T_GETNEXT);
            put_varint(&mut buf, *request_id as u64);
            put_varint(&mut buf, oids.len() as u64);
            for o in oids {
                put_oid(&mut buf, o);
            }
        }
        Pdu::GetBulk {
            request_id,
            max_repetitions,
            oid,
        } => {
            buf.put_u8(T_GETBULK);
            put_varint(&mut buf, *request_id as u64);
            put_varint(&mut buf, *max_repetitions as u64);
            put_oid(&mut buf, oid);
        }
        Pdu::Response {
            request_id,
            error_status,
            bindings,
        } => {
            buf.put_u8(T_RESPONSE);
            put_varint(&mut buf, *request_id as u64);
            buf.put_u8(*error_status);
            put_bindings(&mut buf, bindings);
        }
        Pdu::Trap { trap_oid, bindings } => {
            buf.put_u8(T_TRAP);
            put_oid(&mut buf, trap_oid);
            put_bindings(&mut buf, bindings);
        }
    }
    buf.to_vec()
}

/// Decode a message from bytes.
pub fn decode(data: &[u8]) -> Result<SnmpMessage, CodecError> {
    let mut buf = Bytes::copy_from_slice(data);
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    let version = buf.get_u8();
    let clen = get_varint(&mut buf)? as usize;
    if buf.remaining() < clen {
        return Err(CodecError::Truncated);
    }
    let community =
        String::from_utf8(buf.split_to(clen).to_vec()).map_err(|_| CodecError::BadUtf8)?;
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    let pdu = match tag {
        T_GET | T_GETNEXT => {
            let request_id = get_varint(&mut buf)? as u32;
            let n = get_varint(&mut buf)? as usize;
            if n > 4096 {
                return Err(CodecError::Truncated);
            }
            let mut oids = Vec::with_capacity(n);
            for _ in 0..n {
                oids.push(get_oid(&mut buf)?);
            }
            if tag == T_GET {
                Pdu::Get { request_id, oids }
            } else {
                Pdu::GetNext { request_id, oids }
            }
        }
        T_GETBULK => Pdu::GetBulk {
            request_id: get_varint(&mut buf)? as u32,
            max_repetitions: get_varint(&mut buf)? as u32,
            oid: get_oid(&mut buf)?,
        },
        T_RESPONSE => {
            let request_id = get_varint(&mut buf)? as u32;
            if !buf.has_remaining() {
                return Err(CodecError::Truncated);
            }
            let error_status = buf.get_u8();
            Pdu::Response {
                request_id,
                error_status,
                bindings: get_bindings(&mut buf)?,
            }
        }
        T_TRAP => Pdu::Trap {
            trap_oid: get_oid(&mut buf)?,
            bindings: get_bindings(&mut buf)?,
        },
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(SnmpMessage {
        version,
        community,
        pdu,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(msg: SnmpMessage) {
        let bytes = encode(&msg);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn roundtrip_get() {
        rt(SnmpMessage::v2c(
            "public",
            Pdu::Get {
                request_id: 42,
                oids: vec!["1.3.6.1.2.1.1.5.0".parse().unwrap()],
            },
        ));
    }

    #[test]
    fn roundtrip_getnext_and_bulk() {
        rt(SnmpMessage::v2c(
            "private",
            Pdu::GetNext {
                request_id: 7,
                oids: vec!["1.3.6.1".parse().unwrap(), "1.3.6.1.4".parse().unwrap()],
            },
        ));
        rt(SnmpMessage::v2c(
            "c",
            Pdu::GetBulk {
                request_id: 8,
                max_repetitions: 25,
                oid: "1.3.6.1.2.1.2.2".parse().unwrap(),
            },
        ));
    }

    #[test]
    fn roundtrip_response_all_value_types() {
        rt(SnmpMessage::v2c(
            "public",
            Pdu::Response {
                request_id: 42,
                error_status: 0,
                bindings: vec![
                    ("1.1".parse().unwrap(), SnmpValue::Integer(-12345)),
                    ("1.2".parse().unwrap(), SnmpValue::Counter64(u64::MAX)),
                    ("1.3".parse().unwrap(), SnmpValue::Gauge(99)),
                    (
                        "1.4".parse().unwrap(),
                        SnmpValue::OctetString("Linux node01 2.4.20 ü".into()),
                    ),
                    ("1.5".parse().unwrap(), SnmpValue::TimeTicks(123456)),
                    (
                        "1.6".parse().unwrap(),
                        SnmpValue::ObjectId("1.3.6.1.4.1".parse().unwrap()),
                    ),
                    ("1.7".parse().unwrap(), SnmpValue::Null),
                ],
            },
        ));
    }

    #[test]
    fn roundtrip_trap() {
        rt(SnmpMessage::v2c(
            "public",
            Pdu::Trap {
                trap_oid: "1.3.6.1.6.3.1.1.5.1".parse().unwrap(),
                bindings: vec![(
                    "1.3.6.1.2.1.1.3.0".parse().unwrap(),
                    SnmpValue::TimeTicks(100),
                )],
            },
        ));
    }

    #[test]
    fn zigzag_symmetry() {
        for i in [-1i64, 0, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[2, 200]).is_err()); // community length > remaining
        assert!(decode(&[2, 0, 0xFF]).is_err()); // bad tag
                                                 // Fuzz-ish: random prefixes of a valid message never panic.
        let valid = encode(&SnmpMessage::v2c(
            "public",
            Pdu::Get {
                request_id: 1,
                oids: vec!["1.3.6.1.2.1.1.1.0".parse().unwrap()],
            },
        ));
        for n in 0..valid.len() {
            let _ = decode(&valid[..n]);
        }
    }

    #[test]
    fn encoding_is_compact() {
        // A single-OID GET should be well under 40 bytes — the property
        // that makes SNMP "fine grained" in E8.
        let bytes = encode(&SnmpMessage::v2c(
            "public",
            Pdu::Get {
                request_id: 1,
                oids: vec!["1.3.6.1.2.1.1.5.0".parse().unwrap()],
            },
        ));
        assert!(bytes.len() < 40, "GET is {} bytes", bytes.len());
    }
}
