//! The SNMP agent service: GET / GETNEXT / GETBULK over the simulated
//! network, plus threshold traps pushed to a configured sink.

use super::codec::{self, error_status, Pdu, SnmpMessage, SnmpValue};
use super::mib::{mib_for_host, oids};
use super::oid::Oid;
use gridrm_resmodel::SiteModel;
use gridrm_simnet::{Network, Service};
use parking_lot::Mutex;
use std::sync::Arc;

/// An SNMP agent for one host of a site.
///
/// Register it at simnet address `"{hostname}:snmp"`. The community string
/// of incoming messages must match `community` or the agent answers with an
/// authentication error — this is the data-source end of GridRM's security
/// story (wrong credentials are indistinguishable from a broken driver,
/// which is what the failure-policy machinery must cope with).
pub struct SnmpAgent {
    site: Arc<SiteModel>,
    hostname: String,
    community: String,
    /// Trap sink (gateway address) and load threshold.
    trap_sink: Mutex<Option<(Arc<Network>, String, f64)>>,
    /// Last load value seen by the trap pump (edge-triggered traps).
    last_over: Mutex<bool>,
}

impl SnmpAgent {
    /// Create an agent bound to `hostname` within `site`.
    pub fn new(site: Arc<SiteModel>, hostname: &str, community: &str) -> Arc<SnmpAgent> {
        Arc::new(SnmpAgent {
            site,
            hostname: hostname.to_owned(),
            community: community.to_owned(),
            trap_sink: Mutex::new(None),
            last_over: Mutex::new(false),
        })
    }

    /// The simnet address this agent should be registered at.
    pub fn address(&self) -> String {
        format!("{}:snmp", self.hostname)
    }

    /// Configure trap emission: when the host's load1 crosses `threshold`,
    /// push a `TRAP_LOAD_HIGH` to `sink` over `network` (fire-and-forget,
    /// like UDP traps).
    pub fn set_trap_sink(&self, network: Arc<Network>, sink: &str, threshold: f64) {
        *self.trap_sink.lock() = Some((network, sink.to_owned(), threshold));
    }

    /// Poll thresholds; call from the scenario's event pump after advancing
    /// virtual time. Returns `true` if a trap was emitted.
    pub fn pump(&self) -> bool {
        let guard = self.trap_sink.lock();
        let Some((network, sink, threshold)) = guard.as_ref() else {
            return false;
        };
        let Some(snap) = self.site.host_snapshot(&self.hostname) else {
            return false;
        };
        let over = snap.load1 > *threshold;
        let mut last = self.last_over.lock();
        let fire = over && !*last;
        *last = over;
        if fire {
            let msg = SnmpMessage::v2c(
                &self.community,
                Pdu::Trap {
                    trap_oid: oids::TRAP_LOAD_HIGH.parse().expect("static OID"),
                    bindings: vec![
                        (
                            oids::SYS_NAME.parse().expect("static OID"),
                            SnmpValue::OctetString(self.hostname.clone()),
                        ),
                        (
                            format!("{}.1", oids::LA_LOAD_INT)
                                .parse()
                                .expect("static OID"),
                            SnmpValue::Integer((snap.load1 * 100.0).round() as i64),
                        ),
                    ],
                },
            );
            network.push(&self.address(), sink, codec::encode(&msg));
        }
        fire
    }

    fn respond(&self, request_id: u32, error: u8, bindings: Vec<(Oid, SnmpValue)>) -> Vec<u8> {
        codec::encode(&SnmpMessage::v2c(
            &self.community,
            Pdu::Response {
                request_id,
                error_status: error,
                bindings,
            },
        ))
    }
}

impl Service for SnmpAgent {
    fn handle(&self, _from: &str, request: &[u8]) -> Vec<u8> {
        let Ok(msg) = codec::decode(request) else {
            // Undecodable request: answer with a generic error response.
            return self.respond(0, error_status::NO_SUCH_NAME, Vec::new());
        };
        let request_id = match &msg.pdu {
            Pdu::Get { request_id, .. }
            | Pdu::GetNext { request_id, .. }
            | Pdu::GetBulk { request_id, .. } => *request_id,
            _ => 0,
        };
        if msg.community != self.community {
            return self.respond(request_id, error_status::AUTH_ERROR, Vec::new());
        }
        let Some(snap) = self.site.host_snapshot(&self.hostname) else {
            return self.respond(request_id, error_status::NO_SUCH_NAME, Vec::new());
        };
        let mib = mib_for_host(&snap);
        match msg.pdu {
            Pdu::Get { oids, .. } => {
                let bindings = oids
                    .iter()
                    .map(|oid| {
                        (
                            oid.clone(),
                            mib.get(oid).cloned().unwrap_or(SnmpValue::Null),
                        )
                    })
                    .collect();
                self.respond(request_id, error_status::NO_ERROR, bindings)
            }
            Pdu::GetNext { oids, .. } => {
                let mut bindings = Vec::with_capacity(oids.len());
                let mut status = error_status::NO_ERROR;
                for oid in &oids {
                    use std::ops::Bound;
                    let next = mib
                        .range((Bound::Excluded(oid.clone()), Bound::Unbounded))
                        .next();
                    match next {
                        Some((o2, v)) => bindings.push((o2.clone(), v.clone())),
                        None => status = error_status::NO_SUCH_NAME, // end of MIB
                    }
                }
                self.respond(request_id, status, bindings)
            }
            Pdu::GetBulk {
                max_repetitions,
                oid,
                ..
            } => {
                use std::ops::Bound;
                let bindings: Vec<(Oid, SnmpValue)> = mib
                    .range((Bound::Excluded(oid), Bound::Unbounded))
                    .take(max_repetitions as usize)
                    .map(|(o2, v)| (o2.clone(), v.clone()))
                    .collect();
                self.respond(request_id, error_status::NO_ERROR, bindings)
            }
            // Agents don't accept responses or traps.
            Pdu::Response { .. } | Pdu::Trap { .. } => {
                self.respond(request_id, error_status::NO_SUCH_NAME, Vec::new())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_resmodel::SiteSpec;
    use gridrm_simnet::SimClock;

    fn setup() -> (Arc<Network>, Arc<SiteModel>, Arc<SnmpAgent>) {
        let clock = SimClock::new();
        let net = Network::new(clock, 1);
        let site = SiteModel::generate(42, &SiteSpec::new("t", 2, 4));
        site.advance_to(60_000);
        let agent = SnmpAgent::new(site.clone(), "node00.t", "public");
        net.register(&agent.address(), agent.clone());
        (net, site, agent)
    }

    fn ask(net: &Network, agent: &SnmpAgent, msg: SnmpMessage) -> Pdu {
        let resp = net
            .request("gw", &agent.address(), &codec::encode(&msg))
            .unwrap();
        codec::decode(&resp).unwrap().pdu
    }

    #[test]
    fn get_sysname() {
        let (net, _site, agent) = setup();
        let pdu = ask(
            &net,
            &agent,
            SnmpMessage::v2c(
                "public",
                Pdu::Get {
                    request_id: 9,
                    oids: vec![oids::SYS_NAME.parse().unwrap()],
                },
            ),
        );
        match pdu {
            Pdu::Response {
                request_id,
                error_status: 0,
                bindings,
            } => {
                assert_eq!(request_id, 9);
                assert_eq!(bindings[0].1, SnmpValue::OctetString("node00.t".to_owned()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_unknown_oid_is_null() {
        let (net, _s, agent) = setup();
        let pdu = ask(
            &net,
            &agent,
            SnmpMessage::v2c(
                "public",
                Pdu::Get {
                    request_id: 1,
                    oids: vec!["9.9.9".parse().unwrap()],
                },
            ),
        );
        let Pdu::Response { bindings, .. } = pdu else {
            panic!()
        };
        assert_eq!(bindings[0].1, SnmpValue::Null);
    }

    #[test]
    fn wrong_community_rejected() {
        let (net, _s, agent) = setup();
        let pdu = ask(
            &net,
            &agent,
            SnmpMessage::v2c(
                "letmein",
                Pdu::Get {
                    request_id: 1,
                    oids: vec![oids::SYS_NAME.parse().unwrap()],
                },
            ),
        );
        let Pdu::Response { error_status, .. } = pdu else {
            panic!()
        };
        assert_eq!(error_status, error_status::AUTH_ERROR);
    }

    #[test]
    fn getnext_walks_in_order() {
        let (net, _s, agent) = setup();
        // Walk the whole MIB from the root; must terminate and visit
        // strictly ascending OIDs.
        let mut cur: Oid = "1".parse().unwrap();
        let mut visited = 0;
        loop {
            let pdu = ask(
                &net,
                &agent,
                SnmpMessage::v2c(
                    "public",
                    Pdu::GetNext {
                        request_id: visited,
                        oids: vec![cur.clone()],
                    },
                ),
            );
            let Pdu::Response {
                error_status,
                bindings,
                ..
            } = pdu
            else {
                panic!()
            };
            if error_status == error_status::NO_SUCH_NAME {
                break;
            }
            let (next, _) = bindings.into_iter().next().unwrap();
            assert!(next > cur, "GETNEXT went backwards");
            cur = next;
            visited += 1;
            assert!(visited < 1000, "walk did not terminate");
        }
        assert!(visited > 25, "only {visited} objects walked");
    }

    #[test]
    fn getbulk_caps_repetitions() {
        let (net, _s, agent) = setup();
        let pdu = ask(
            &net,
            &agent,
            SnmpMessage::v2c(
                "public",
                Pdu::GetBulk {
                    request_id: 1,
                    max_repetitions: 5,
                    oid: "1".parse().unwrap(),
                },
            ),
        );
        let Pdu::Response { bindings, .. } = pdu else {
            panic!()
        };
        assert_eq!(bindings.len(), 5);
    }

    #[test]
    fn traps_fire_on_threshold_edge() {
        let (net, site, agent) = setup();
        net.register("gw", Arc::new(|_: &str, _: &[u8]| Vec::new()));
        let rx = net.subscribe("gw").unwrap();
        agent.set_trap_sink(net.clone(), "gw", 3.0);

        // Below threshold: no trap.
        assert!(!agent.pump());
        // Spike the host over the threshold.
        site.inject_load_spike("node00.t", 10.0);
        site.advance_to(61_000);
        assert!(agent.pump());
        // Still over: edge-triggered, no second trap.
        assert!(!agent.pump());

        let push = rx.try_recv().unwrap();
        let msg = codec::decode(&push.payload).unwrap();
        match msg.pdu {
            Pdu::Trap { trap_oid, bindings } => {
                assert_eq!(trap_oid.to_string(), oids::TRAP_LOAD_HIGH);
                assert!(!bindings.is_empty());
            }
            other => panic!("expected trap, got {other:?}"),
        }
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn garbage_request_answered_not_panicked() {
        let (net, _s, agent) = setup();
        let resp = net
            .request("gw", &agent.address(), b"\xFF\xFF\xFF")
            .unwrap();
        assert!(codec::decode(&resp).is_ok());
    }
}
