//! A from-scratch SNMP implementation: OIDs, a compact TLV wire codec
//! ("BER-lite" — see DESIGN.md for the substitution note), a MIB-2 /
//! host-resources / UCD subset populated from the resource model, and an
//! agent with GET / GETNEXT / GETBULK plus threshold traps.

pub mod agent;
pub mod codec;
pub mod mib;
pub mod oid;

pub use agent::SnmpAgent;
pub use codec::{Pdu, SnmpMessage, SnmpValue};
pub use mib::{mib_for_host, oids};
pub use oid::Oid;
