//! The MIB subset served by the agent: MIB-2 system + interfaces,
//! HOST-RESOURCES, and UCD-SNMP load/memory/CPU — the objects the paper's
//! JDBC-SNMP driver needs to populate the GLUE host groups.

use super::codec::SnmpValue;
use super::oid::Oid;
use gridrm_resmodel::HostSnapshot;
use std::collections::BTreeMap;

/// Well-known OIDs (string form; parse with `.parse::<Oid>()`).
pub mod oids {
    /// sysDescr.0
    pub const SYS_DESCR: &str = "1.3.6.1.2.1.1.1.0";
    /// sysUpTime.0 (TimeTicks, centiseconds)
    pub const SYS_UPTIME: &str = "1.3.6.1.2.1.1.3.0";
    /// sysName.0
    pub const SYS_NAME: &str = "1.3.6.1.2.1.1.5.0";
    /// ifNumber.0
    pub const IF_NUMBER: &str = "1.3.6.1.2.1.2.1.0";
    /// ifDescr table column
    pub const IF_DESCR: &str = "1.3.6.1.2.1.2.2.1.2";
    /// ifMtu table column
    pub const IF_MTU: &str = "1.3.6.1.2.1.2.2.1.4";
    /// ifOperStatus table column (1 = up)
    pub const IF_OPER_STATUS: &str = "1.3.6.1.2.1.2.2.1.8";
    /// ifInOctets table column
    pub const IF_IN_OCTETS: &str = "1.3.6.1.2.1.2.2.1.10";
    /// ifOutOctets table column
    pub const IF_OUT_OCTETS: &str = "1.3.6.1.2.1.2.2.1.16";
    /// hrMemorySize.0 (KB)
    pub const HR_MEMORY_SIZE: &str = "1.3.6.1.2.1.25.2.2.0";
    /// hrStorageDescr column
    pub const HR_STORAGE_DESCR: &str = "1.3.6.1.2.1.25.2.3.1.3";
    /// hrStorageSize column (in allocation units; we use MB units)
    pub const HR_STORAGE_SIZE: &str = "1.3.6.1.2.1.25.2.3.1.5";
    /// hrStorageUsed column
    pub const HR_STORAGE_USED: &str = "1.3.6.1.2.1.25.2.3.1.6";
    /// hrProcessorLoad column (percent)
    pub const HR_PROCESSOR_LOAD: &str = "1.3.6.1.2.1.25.3.3.1.2";
    /// hrSystemNumUsers-adjacent: number of processors (we publish a scalar)
    pub const HR_NUM_CPU: &str = "1.3.6.1.2.1.25.3.3.2.0";
    /// UCD laLoadInt.{1,2,3} (load × 100)
    pub const LA_LOAD_INT: &str = "1.3.6.1.4.1.2021.10.1.5";
    /// UCD memAvailReal.0 (KB)
    pub const MEM_AVAIL_REAL: &str = "1.3.6.1.4.1.2021.4.6.0";
    /// UCD memTotalSwap.0 (KB)
    pub const MEM_TOTAL_SWAP: &str = "1.3.6.1.4.1.2021.4.3.0";
    /// UCD memAvailSwap.0 (KB)
    pub const MEM_AVAIL_SWAP: &str = "1.3.6.1.4.1.2021.4.4.0";
    /// UCD ssCpuUser.0 (percent)
    pub const SS_CPU_USER: &str = "1.3.6.1.4.1.2021.11.9.0";
    /// UCD ssCpuSystem.0 (percent)
    pub const SS_CPU_SYSTEM: &str = "1.3.6.1.4.1.2021.11.10.0";
    /// UCD ssCpuIdle.0 (percent)
    pub const SS_CPU_IDLE: &str = "1.3.6.1.4.1.2021.11.11.0";
    /// UCD diskIO device-name column (per device)
    pub const DISK_IO_DEVICE: &str = "1.3.6.1.4.1.2021.13.15.1.1.2";
    /// UCD diskIO reads column (per device)
    pub const DISK_IO_READS: &str = "1.3.6.1.4.1.2021.13.15.1.1.5";
    /// UCD diskIO writes column (per device)
    pub const DISK_IO_WRITES: &str = "1.3.6.1.4.1.2021.13.15.1.1.6";
    /// CPU clock MHz (vendor extension scalar)
    pub const CPU_MHZ: &str = "1.3.6.1.4.1.2021.100.1.0";
    /// CPU model (vendor extension scalar)
    pub const CPU_MODEL: &str = "1.3.6.1.4.1.2021.100.2.0";
    /// CPU vendor (vendor extension scalar)
    pub const CPU_VENDOR: &str = "1.3.6.1.4.1.2021.100.3.0";
    /// Enterprise trap: load threshold exceeded
    pub const TRAP_LOAD_HIGH: &str = "1.3.6.1.4.1.2021.251.1";
}

fn o(s: &str) -> Oid {
    s.parse().expect("static OID")
}

/// Build the complete sorted OID → value view of one host snapshot.
///
/// The map is rebuilt per request from the live snapshot — agents are
/// stateless views over the resource model, exactly like a real snmpd
/// reading /proc.
pub fn mib_for_host(snap: &HostSnapshot) -> BTreeMap<Oid, SnmpValue> {
    let mut m = BTreeMap::new();
    let spec = &snap.spec;
    m.insert(
        o(oids::SYS_DESCR),
        SnmpValue::OctetString(format!(
            "{} {} {} {}",
            spec.os.name, spec.hostname, spec.os.release, spec.os.version
        )),
    );
    m.insert(
        o(oids::SYS_UPTIME),
        SnmpValue::TimeTicks(snap.uptime_sec * 100),
    );
    m.insert(
        o(oids::SYS_NAME),
        SnmpValue::OctetString(spec.hostname.clone()),
    );

    // interfaces
    m.insert(
        o(oids::IF_NUMBER),
        SnmpValue::Integer(snap.nics.len() as i64),
    );
    for (i, nic) in snap.nics.iter().enumerate() {
        let idx = i as u32 + 1;
        m.insert(
            o(oids::IF_DESCR).child(idx),
            SnmpValue::OctetString(nic.name.clone()),
        );
        m.insert(
            o(oids::IF_MTU).child(idx),
            SnmpValue::Integer(nic.mtu as i64),
        );
        m.insert(
            o(oids::IF_OPER_STATUS).child(idx),
            SnmpValue::Integer(if nic.up { 1 } else { 2 }),
        );
        m.insert(
            o(oids::IF_IN_OCTETS).child(idx),
            SnmpValue::Counter64(nic.rx_bytes),
        );
        m.insert(
            o(oids::IF_OUT_OCTETS).child(idx),
            SnmpValue::Counter64(nic.tx_bytes),
        );
    }

    // host resources
    m.insert(
        o(oids::HR_MEMORY_SIZE),
        SnmpValue::Integer((spec.mem_mb * 1024) as i64),
    );
    m.insert(o(oids::HR_NUM_CPU), SnmpValue::Integer(spec.ncpu as i64));
    for (i, fsys) in snap.filesystems.iter().enumerate() {
        let idx = i as u32 + 1;
        m.insert(
            o(oids::HR_STORAGE_DESCR).child(idx),
            SnmpValue::OctetString(fsys.name.clone()),
        );
        m.insert(
            o(oids::HR_STORAGE_SIZE).child(idx),
            SnmpValue::Integer(fsys.size_mb as i64),
        );
        m.insert(
            o(oids::HR_STORAGE_USED).child(idx),
            SnmpValue::Integer((fsys.size_mb - fsys.available_mb) as i64),
        );
    }
    let per_cpu_load = ((snap.cpu_user + snap.cpu_system).round() as i64).clamp(0, 100);
    for cpu in 0..spec.ncpu {
        m.insert(
            o(oids::HR_PROCESSOR_LOAD).child(cpu + 1),
            SnmpValue::Integer(per_cpu_load),
        );
    }

    // UCD
    m.insert(
        o(oids::LA_LOAD_INT).child(1),
        SnmpValue::Integer((snap.load1 * 100.0).round() as i64),
    );
    m.insert(
        o(oids::LA_LOAD_INT).child(2),
        SnmpValue::Integer((snap.load5 * 100.0).round() as i64),
    );
    m.insert(
        o(oids::LA_LOAD_INT).child(3),
        SnmpValue::Integer((snap.load15 * 100.0).round() as i64),
    );
    m.insert(
        o(oids::MEM_AVAIL_REAL),
        SnmpValue::Integer((snap.mem_available_mb * 1024) as i64),
    );
    m.insert(
        o(oids::MEM_TOTAL_SWAP),
        SnmpValue::Integer((spec.swap_mb * 1024) as i64),
    );
    m.insert(
        o(oids::MEM_AVAIL_SWAP),
        SnmpValue::Integer((snap.swap_available_mb * 1024) as i64),
    );
    m.insert(
        o(oids::SS_CPU_USER),
        SnmpValue::Integer(snap.cpu_user.round() as i64),
    );
    m.insert(
        o(oids::SS_CPU_SYSTEM),
        SnmpValue::Integer(snap.cpu_system.round() as i64),
    );
    m.insert(
        o(oids::SS_CPU_IDLE),
        SnmpValue::Integer(snap.cpu_idle.round() as i64),
    );
    for (i, d) in snap.disks.iter().enumerate() {
        let idx = i as u32 + 1;
        m.insert(
            o(oids::DISK_IO_DEVICE).child(idx),
            SnmpValue::OctetString(d.device.clone()),
        );
        m.insert(
            o(oids::DISK_IO_READS).child(idx),
            SnmpValue::Counter64(d.read_count),
        );
        m.insert(
            o(oids::DISK_IO_WRITES).child(idx),
            SnmpValue::Counter64(d.write_count),
        );
    }
    m.insert(o(oids::CPU_MHZ), SnmpValue::Integer(spec.clock_mhz as i64));
    m.insert(
        o(oids::CPU_MODEL),
        SnmpValue::OctetString(spec.cpu_model.clone()),
    );
    m.insert(
        o(oids::CPU_VENDOR),
        SnmpValue::OctetString(spec.cpu_vendor.clone()),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_resmodel::{Host, HostSpec, OsSpec};

    fn snapshot() -> HostSnapshot {
        let spec = HostSpec {
            hostname: "node01.test".into(),
            site: "test".into(),
            ncpu: 2,
            clock_mhz: 2000,
            cpu_model: "Xeon".into(),
            cpu_vendor: "GenuineIntel".into(),
            mem_mb: 1024,
            swap_mb: 2048,
            os: OsSpec {
                name: "Linux".into(),
                release: "2.4.20".into(),
                version: "#1".into(),
            },
            disks: vec![("sda".into(), 40_000)],
            filesystems: vec![("/".into(), "sda1".into(), 38_000)],
            nics: vec![("eth0".into(), "10.0.0.1".into(), 1500)],
        };
        let mut h = Host::new(7, spec);
        h.advance_to(30_000);
        h.snapshot()
    }

    #[test]
    fn scalar_objects_present() {
        let m = mib_for_host(&snapshot());
        assert!(matches!(
            m.get(&oids::SYS_NAME.parse().unwrap()),
            Some(SnmpValue::OctetString(s)) if s == "node01.test"
        ));
        assert!(matches!(
            m.get(&oids::SYS_UPTIME.parse().unwrap()),
            Some(SnmpValue::TimeTicks(3000))
        ));
        assert!(matches!(
            m.get(&oids::HR_NUM_CPU.parse().unwrap()),
            Some(SnmpValue::Integer(2))
        ));
    }

    #[test]
    fn table_objects_indexed_from_one() {
        let m = mib_for_host(&snapshot());
        let descr: Oid = oids::IF_DESCR.parse().unwrap();
        assert!(m.contains_key(&descr.child(1)));
        assert!(!m.contains_key(&descr.child(2)));
        let load: Oid = oids::HR_PROCESSOR_LOAD.parse().unwrap();
        assert!(m.contains_key(&load.child(1)));
        assert!(m.contains_key(&load.child(2)));
        assert!(!m.contains_key(&load.child(3)));
    }

    #[test]
    fn load_is_centiload() {
        let snap = snapshot();
        let m = mib_for_host(&snap);
        let Some(SnmpValue::Integer(centi)) =
            m.get(&format!("{}.1", oids::LA_LOAD_INT).parse().unwrap())
        else {
            panic!("laLoadInt.1 missing")
        };
        assert_eq!(*centi, (snap.load1 * 100.0).round() as i64);
    }

    #[test]
    fn map_is_sorted_for_getnext() {
        let m = mib_for_host(&snapshot());
        let keys: Vec<&Oid> = m.keys().collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(m.len() > 25);
    }

    #[test]
    fn memory_reported_in_kb() {
        let m = mib_for_host(&snapshot());
        assert!(matches!(
            m.get(&oids::HR_MEMORY_SIZE.parse().unwrap()),
            Some(SnmpValue::Integer(i)) if *i == 1024 * 1024
        ));
    }
}
