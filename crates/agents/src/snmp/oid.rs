//! Object identifiers with the lexicographic ordering GETNEXT walks.

use std::fmt;
use std::str::FromStr;

/// An SNMP object identifier, e.g. `1.3.6.1.2.1.1.5.0`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Oid(pub Vec<u32>);

impl Oid {
    /// Construct from components.
    pub fn new(parts: &[u32]) -> Oid {
        Oid(parts.to_vec())
    }

    /// Append one component (table index, scalar `.0`, ...).
    pub fn child(&self, component: u32) -> Oid {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(component);
        Oid(v)
    }

    /// Append several components.
    pub fn extend(&self, components: &[u32]) -> Oid {
        let mut v = Vec::with_capacity(self.0.len() + components.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(components);
        Oid(v)
    }

    /// Is `self` a prefix of `other` (i.e. is `other` inside this subtree)?
    pub fn is_prefix_of(&self, other: &Oid) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty OID.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromStr for Oid {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_prefix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Oid::default());
        }
        s.split('.')
            .map(|p| {
                p.parse::<u32>()
                    .map_err(|_| format!("bad OID component '{p}'"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let o: Oid = "1.3.6.1.2.1.1.5.0".parse().unwrap();
        assert_eq!(o.to_string(), "1.3.6.1.2.1.1.5.0");
        let with_dot: Oid = ".1.3.6".parse().unwrap();
        assert_eq!(with_dot, Oid::new(&[1, 3, 6]));
        assert!("1.x.3".parse::<Oid>().is_err());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: Oid = "1.3.6.1.2.1.1".parse().unwrap();
        let b: Oid = "1.3.6.1.2.1.1.5.0".parse().unwrap();
        let c: Oid = "1.3.6.1.2.1.2".parse().unwrap();
        assert!(a < b); // prefix sorts before extension
        assert!(b < c);
    }

    #[test]
    fn prefix_and_children() {
        let sys: Oid = "1.3.6.1.2.1.1".parse().unwrap();
        let name = sys.extend(&[5, 0]);
        assert!(sys.is_prefix_of(&name));
        assert!(!name.is_prefix_of(&sys));
        assert!(sys.is_prefix_of(&sys));
        assert_eq!(sys.child(5).to_string(), "1.3.6.1.2.1.1.5");
    }
}
