//! One-call deployment of a full agent set for a site.

use crate::ganglia::GangliaAgent;
use crate::netlogger::NetLoggerAgent;
use crate::nws::NwsAgent;
use crate::scms::ScmsAgent;
use crate::snmp::SnmpAgent;
use gridrm_resmodel::SiteModel;
use gridrm_simnet::Network;
use std::sync::Arc;

/// Handles to every agent deployed for one site.
pub struct SiteAgents {
    /// The site they observe.
    pub site: Arc<SiteModel>,
    /// One SNMP agent per host.
    pub snmp: Vec<Arc<SnmpAgent>>,
    /// The cluster-level Ganglia agent (head node).
    pub ganglia: Arc<GangliaAgent>,
    /// The NWS agent (head node).
    pub nws: Arc<NwsAgent>,
    /// The NetLogger agent (head node).
    pub netlogger: Arc<NetLoggerAgent>,
    /// The SCMS agent (head node).
    pub scms: Arc<ScmsAgent>,
}

impl SiteAgents {
    /// Run every agent's periodic work (trap thresholds, log generation).
    /// Call after advancing virtual time. Returns `(traps, log_events)`.
    pub fn pump(&self) -> (usize, usize) {
        let traps = self.snmp.iter().filter(|a| a.pump()).count();
        let events = self.netlogger.pump();
        (traps, events)
    }
}

/// Deploy the standard agent set for `site` onto `network`:
/// an SNMP agent on every host (community `public`) and Ganglia, NWS,
/// NetLogger and SCMS agents on the head node.
pub fn deploy_site(network: &Arc<Network>, site: Arc<SiteModel>) -> SiteAgents {
    let mut snmp = Vec::with_capacity(site.host_count());
    for hostname in site.hostnames() {
        let agent = SnmpAgent::new(site.clone(), &hostname, "public");
        network.register(&agent.address(), agent.clone());
        snmp.push(agent);
    }
    let ganglia = GangliaAgent::new(site.clone());
    network.register(&ganglia.address(), ganglia.clone());
    let nws = NwsAgent::new(site.clone());
    network.register(&nws.address(), nws.clone());
    let netlogger = NetLoggerAgent::new(site.clone());
    netlogger.attach_network(network.clone());
    network.register(&netlogger.address(), netlogger.clone());
    let scms = ScmsAgent::new(site.clone());
    network.register(&scms.address(), scms.clone());
    SiteAgents {
        site,
        snmp,
        ganglia,
        nws,
        netlogger,
        scms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_resmodel::SiteSpec;
    use gridrm_simnet::SimClock;

    #[test]
    fn deploy_registers_all_addresses() {
        let net = Network::new(SimClock::new(), 1);
        let site = SiteModel::generate(3, &SiteSpec::new("d", 3, 2));
        site.advance_to(10_000);
        let agents = deploy_site(&net, site);
        let addrs = net.scan();
        assert!(addrs.contains(&"node00.d:snmp".to_owned()));
        assert!(addrs.contains(&"node02.d:snmp".to_owned()));
        assert!(addrs.contains(&"node00.d:ganglia".to_owned()));
        assert!(addrs.contains(&"node00.d:nws".to_owned()));
        assert!(addrs.contains(&"node00.d:netlogger".to_owned()));
        assert!(addrs.contains(&"node00.d:scms".to_owned()));
        assert_eq!(agents.snmp.len(), 3);
        // All five protocol services answer.
        assert!(net.request("c", "node00.d:ganglia", b"").is_ok());
        assert!(net.request("c", "node00.d:scms", b"SUMMARY").is_ok());
    }

    #[test]
    fn pump_produces_events() {
        let net = Network::new(SimClock::new(), 1);
        let site = SiteModel::generate(3, &SiteSpec::new("d", 2, 2));
        site.advance_to(10_000);
        let agents = deploy_site(&net, site);
        let (traps, events) = agents.pump();
        assert_eq!(traps, 0); // no sinks configured
        assert!(events > 0);
    }
}
