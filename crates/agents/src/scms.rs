//! The SCMS (Scalable Cluster Management System) agent: simple per-host
//! `key: value` status text — the third data shape the drivers must cope
//! with (§3.2.4).

use gridrm_resmodel::{HostSnapshot, SiteModel};
use gridrm_simnet::Service;
use std::fmt::Write as _;
use std::sync::Arc;

/// Derive the coarse SCMS host status from load.
fn status_of(snap: &HostSnapshot) -> &'static str {
    let per_cpu = snap.load1 / snap.spec.ncpu as f64;
    if per_cpu > 1.5 {
        "overloaded"
    } else if per_cpu > 0.9 {
        "busy"
    } else {
        "ok"
    }
}

fn host_block(out: &mut String, snap: &HostSnapshot) {
    let _ = writeln!(out, "host: {}", snap.spec.hostname);
    let _ = writeln!(out, "status: {}", status_of(snap));
    let _ = writeln!(out, "ncpu: {}", snap.spec.ncpu);
    let _ = writeln!(out, "cpu_mhz: {}", snap.spec.clock_mhz);
    let _ = writeln!(out, "load1: {:.2}", snap.load1);
    let _ = writeln!(out, "load5: {:.2}", snap.load5);
    let _ = writeln!(out, "mem_total_mb: {}", snap.spec.mem_mb);
    let _ = writeln!(out, "mem_free_mb: {}", snap.mem_available_mb);
    let _ = writeln!(out, "uptime_sec: {}", snap.uptime_sec);
    let _ = writeln!(out, "os: {} {}", snap.spec.os.name, snap.spec.os.release);
    let _ = writeln!(out);
}

/// SCMS agent for a site. Register at `"{head}:scms"`.
///
/// Protocol: `ALL` dumps every host block; `STATUS <host>` one block;
/// `SUMMARY` one site-level line.
pub struct ScmsAgent {
    site: Arc<SiteModel>,
    head: String,
}

impl ScmsAgent {
    /// Agent for `site`, hosted on the head node.
    pub fn new(site: Arc<SiteModel>) -> Arc<ScmsAgent> {
        let head = site
            .hostnames()
            .first()
            .cloned()
            .unwrap_or_else(|| format!("head.{}", site.name()));
        Arc::new(ScmsAgent { site, head })
    }

    /// The simnet address to register at.
    pub fn address(&self) -> String {
        format!("{}:scms", self.head)
    }
}

impl Service for ScmsAgent {
    fn handle(&self, _from: &str, request: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(request);
        let mut parts = text.split_whitespace();
        let reply = match parts.next() {
            Some("ALL") => {
                let mut out = String::new();
                for snap in self.site.all_snapshots() {
                    host_block(&mut out, &snap);
                }
                out
            }
            Some("STATUS") => match parts.next() {
                Some(host) => match self.site.host_snapshot(host) {
                    Some(snap) => {
                        let mut out = String::new();
                        host_block(&mut out, &snap);
                        out
                    }
                    None => "ERROR no such host\n".to_owned(),
                },
                None => "ERROR usage: STATUS <host>\n".to_owned(),
            },
            Some("SUMMARY") => {
                let (total, free, running, waiting) = self.site.compute_summary();
                format!(
                    "site: {}\nhosts: {}\ncpus_total: {total}\ncpus_free: {free}\njobs_running: {running}\njobs_waiting: {waiting}\n",
                    self.site.name(),
                    self.site.host_count()
                )
            }
            _ => "ERROR unknown command\n".to_owned(),
        };
        reply.into_bytes()
    }
}

/// Parse an SCMS host block into key/value pairs (used by the driver).
pub fn parse_blocks(text: &str) -> Vec<Vec<(String, String)>> {
    let mut blocks = Vec::new();
    let mut cur: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            if !cur.is_empty() {
                blocks.push(std::mem::take(&mut cur));
            }
            continue;
        }
        if let Some((k, v)) = line.split_once(':') {
            cur.push((k.trim().to_owned(), v.trim().to_owned()));
        }
    }
    if !cur.is_empty() {
        blocks.push(cur);
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_resmodel::SiteSpec;
    use gridrm_simnet::{Network, SimClock};

    fn setup() -> (Arc<Network>, Arc<ScmsAgent>) {
        let net = Network::new(SimClock::new(), 8);
        let site = SiteModel::generate(21, &SiteSpec::new("sc", 3, 2));
        site.advance_to(90_000);
        let agent = ScmsAgent::new(site);
        net.register(&agent.address(), agent.clone());
        (net, agent)
    }

    fn ask(net: &Network, agent: &ScmsAgent, cmd: &str) -> String {
        String::from_utf8(net.request("gw", &agent.address(), cmd.as_bytes()).unwrap()).unwrap()
    }

    #[test]
    fn all_returns_block_per_host() {
        let (net, agent) = setup();
        let out = ask(&net, &agent, "ALL");
        let blocks = parse_blocks(&out);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0][0].0, "host");
        assert!(blocks.iter().all(|b| b.iter().any(|(k, _)| k == "status")));
    }

    #[test]
    fn status_single_host() {
        let (net, agent) = setup();
        let out = ask(&net, &agent, "STATUS node01.sc");
        let blocks = parse_blocks(&out);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0][0].1, "node01.sc");
        assert!(ask(&net, &agent, "STATUS ghost").starts_with("ERROR"));
    }

    #[test]
    fn summary_fields() {
        let (net, agent) = setup();
        let out = ask(&net, &agent, "SUMMARY");
        assert!(out.contains("site: sc"));
        assert!(out.contains("cpus_total: 6"));
    }

    #[test]
    fn parse_blocks_handles_trailing_block() {
        let blocks = parse_blocks("a: 1\nb: 2");
        assert_eq!(blocks.len(), 1);
        assert_eq!(
            blocks[0],
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "2".to_owned())
            ]
        );
    }
}
