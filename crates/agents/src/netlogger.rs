//! The NetLogger agent: ULM-format event lines, fine-grained field queries,
//! and a streaming mode that pushes events to subscribers — the native
//! *event source* feeding the gateway Event Manager (Fig 4).

use gridrm_resmodel::SiteModel;
use gridrm_simnet::{Network, Service};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;

/// One ULM (Universal Logger Message) event.
#[derive(Debug, Clone, PartialEq)]
pub struct UlmEvent {
    /// Event time, epoch millis.
    pub at_ms: u64,
    /// Originating host.
    pub host: String,
    /// Program name.
    pub prog: String,
    /// Severity level.
    pub level: String,
    /// Event name, e.g. `cpu.load`.
    pub event: String,
    /// Numeric value, if any.
    pub value: Option<f64>,
}

impl UlmEvent {
    /// Render in ULM `KEY=value` line format.
    pub fn to_line(&self) -> String {
        let mut s = format!(
            "DATE={} HOST={} PROG={} LVL={} NL.EVNT={}",
            format_ulm_date(self.at_ms),
            self.host,
            self.prog,
            self.level,
            self.event
        );
        if let Some(v) = self.value {
            let _ = write!(s, " VAL={v:.4}");
        }
        s
    }

    /// Parse a ULM line (used by the driver and by tests).
    pub fn parse(line: &str) -> Option<UlmEvent> {
        let mut at_ms = None;
        let mut host = None;
        let mut prog = None;
        let mut level = None;
        let mut event = None;
        let mut value = None;
        for field in line.split_whitespace() {
            let (k, v) = field.split_once('=')?;
            match k {
                "DATE" => at_ms = parse_ulm_date(v),
                "HOST" => host = Some(v.to_owned()),
                "PROG" => prog = Some(v.to_owned()),
                "LVL" => level = Some(v.to_owned()),
                "NL.EVNT" => event = Some(v.to_owned()),
                "VAL" => value = v.parse().ok(),
                _ => {}
            }
        }
        Some(UlmEvent {
            at_ms: at_ms?,
            host: host?,
            prog: prog.unwrap_or_else(|| "netlogger".to_owned()),
            level: level.unwrap_or_else(|| "Info".to_owned()),
            event: event?,
            value,
        })
    }
}

/// ULM dates are `YYYYMMDDhhmmss.uuuuuu`; the simulation maps virtual
/// millis onto that shape directly (days roll at 86.4M ms as expected).
fn format_ulm_date(at_ms: u64) -> String {
    let secs = at_ms / 1000;
    let (d, rem) = (secs / 86_400, secs % 86_400);
    let (h, rem2) = (rem / 3600, rem % 3600);
    let (m, s) = (rem2 / 60, rem2 % 60);
    format!(
        "2003{:02}{:02}{:02}{:02}{:02}.{:06}",
        1 + d / 28, // month (synthetic)
        1 + d % 28, // day
        h,
        m,
        s,
        (at_ms % 1000) * 1000
    )
}

fn parse_ulm_date(s: &str) -> Option<u64> {
    // Inverse of format_ulm_date for the synthetic calendar.
    let (whole, frac) = s.split_once('.')?;
    if whole.len() != 14 {
        return None;
    }
    let month: u64 = whole[4..6].parse().ok()?;
    let day: u64 = whole[6..8].parse().ok()?;
    let h: u64 = whole[8..10].parse().ok()?;
    let m: u64 = whole[10..12].parse().ok()?;
    let sec: u64 = whole[12..14].parse().ok()?;
    let micros: u64 = frac.parse().ok()?;
    let days = (month - 1) * 28 + (day - 1);
    Some((((days * 24 + h) * 60 + m) * 60 + sec) * 1000 + micros / 1000)
}

/// NetLogger agent for a site: keeps a bounded event log it refreshes from
/// the resource model on [`NetLoggerAgent::pump`], serves fine-grained
/// queries, and streams new events to registered destinations.
///
/// Protocol:
/// * `TAIL <n>` — last n events;
/// * `QUERY <event-name> <n>` — last n events of one type;
/// * `HOSTQ <host> <n>` — last n events for one host;
/// * `SUBSCRIBE <addr>` — stream subsequent events to `addr` via push.
pub struct NetLoggerAgent {
    site: Arc<SiteModel>,
    head: String,
    network: Mutex<Option<Arc<Network>>>,
    log: Mutex<VecDeque<UlmEvent>>,
    subscribers: Mutex<Vec<String>>,
    capacity: usize,
}

impl NetLoggerAgent {
    /// Agent for `site`, hosted on the head node.
    pub fn new(site: Arc<SiteModel>) -> Arc<NetLoggerAgent> {
        let head = site
            .hostnames()
            .first()
            .cloned()
            .unwrap_or_else(|| format!("head.{}", site.name()));
        Arc::new(NetLoggerAgent {
            site,
            head,
            network: Mutex::new(None),
            log: Mutex::new(VecDeque::new()),
            subscribers: Mutex::new(Vec::new()),
            capacity: 4096,
        })
    }

    /// The simnet address to register at.
    pub fn address(&self) -> String {
        format!("{}:netlogger", self.head)
    }

    /// Attach the network (needed for streaming pushes).
    pub fn attach_network(&self, network: Arc<Network>) {
        *self.network.lock() = Some(network);
    }

    /// Sample the resource model into new log events and stream them to
    /// subscribers. Call after advancing virtual time. Returns how many
    /// events were generated.
    pub fn pump(&self) -> usize {
        let snaps = self.site.all_snapshots();
        let mut fresh = Vec::with_capacity(snaps.len() * 3);
        for s in &snaps {
            fresh.push(UlmEvent {
                at_ms: s.at_ms,
                host: s.spec.hostname.clone(),
                prog: "netlogger".into(),
                level: if s.load1 > s.spec.ncpu as f64 {
                    "Warning".into()
                } else {
                    "Info".into()
                },
                event: "cpu.load".into(),
                value: Some(s.load1),
            });
            fresh.push(UlmEvent {
                at_ms: s.at_ms,
                host: s.spec.hostname.clone(),
                prog: "netlogger".into(),
                level: "Info".into(),
                event: "mem.free".into(),
                value: Some(s.mem_available_mb as f64),
            });
            if let Some(nic) = s.nics.first() {
                fresh.push(UlmEvent {
                    at_ms: s.at_ms,
                    host: s.spec.hostname.clone(),
                    prog: "netlogger".into(),
                    level: "Info".into(),
                    event: "net.rx_bytes".into(),
                    value: Some(nic.rx_bytes as f64),
                });
            }
        }
        let n = fresh.len();
        {
            let mut log = self.log.lock();
            for e in &fresh {
                if log.len() == self.capacity {
                    log.pop_front();
                }
                log.push_back(e.clone());
            }
        }
        let subs = self.subscribers.lock().clone();
        if !subs.is_empty() {
            if let Some(net) = self.network.lock().clone() {
                for e in &fresh {
                    let line = e.to_line();
                    for dst in &subs {
                        net.push(&self.address(), dst, line.clone().into_bytes());
                    }
                }
            }
        }
        n
    }

    fn render<'a>(events: impl Iterator<Item = &'a UlmEvent>) -> String {
        let mut out = String::new();
        for e in events {
            let _ = writeln!(out, "{}", e.to_line());
        }
        out
    }
}

impl Service for NetLoggerAgent {
    fn handle(&self, _from: &str, request: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(request);
        let mut parts = text.split_whitespace();
        let log = self.log.lock();
        let reply = match parts.next() {
            Some("TAIL") => {
                let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(10);
                let skip = log.len().saturating_sub(n);
                Self::render(log.iter().skip(skip))
            }
            Some("QUERY") => match parts.next() {
                Some(event) => {
                    let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(100);
                    let matching: Vec<&UlmEvent> =
                        log.iter().filter(|e| e.event == event).collect();
                    let skip = matching.len().saturating_sub(n);
                    Self::render(matching.into_iter().skip(skip))
                }
                None => "ERROR usage: QUERY <event> <n>\n".to_owned(),
            },
            Some("HOSTQ") => match parts.next() {
                Some(host) => {
                    let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(100);
                    let matching: Vec<&UlmEvent> = log.iter().filter(|e| e.host == host).collect();
                    let skip = matching.len().saturating_sub(n);
                    Self::render(matching.into_iter().skip(skip))
                }
                None => "ERROR usage: HOSTQ <host> <n>\n".to_owned(),
            },
            Some("SUBSCRIBE") => match parts.next() {
                Some(addr) => {
                    drop(log);
                    self.subscribers.lock().push(addr.to_owned());
                    "OK\n".to_owned()
                }
                None => "ERROR usage: SUBSCRIBE <addr>\n".to_owned(),
            },
            _ => "ERROR unknown command\n".to_owned(),
        };
        reply.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_resmodel::SiteSpec;
    use gridrm_simnet::SimClock;

    fn setup() -> (Arc<Network>, Arc<NetLoggerAgent>) {
        let net = Network::new(SimClock::new(), 2);
        let site = SiteModel::generate(4, &SiteSpec::new("nl", 2, 2));
        site.advance_to(30_000);
        let agent = NetLoggerAgent::new(site);
        agent.attach_network(net.clone());
        net.register(&agent.address(), agent.clone());
        (net, agent)
    }

    fn ask(net: &Network, agent: &NetLoggerAgent, cmd: &str) -> String {
        String::from_utf8(net.request("gw", &agent.address(), cmd.as_bytes()).unwrap()).unwrap()
    }

    #[test]
    fn ulm_line_roundtrip() {
        let e = UlmEvent {
            at_ms: 123_456,
            host: "node00.nl".into(),
            prog: "netlogger".into(),
            level: "Info".into(),
            event: "cpu.load".into(),
            value: Some(0.75),
        };
        let line = e.to_line();
        assert!(line.contains("NL.EVNT=cpu.load"));
        assert!(line.contains("VAL=0.7500"));
        let back = UlmEvent::parse(&line).unwrap();
        assert_eq!(back.at_ms, e.at_ms);
        assert_eq!(back.host, e.host);
        assert_eq!(back.event, e.event);
        assert!((back.value.unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn date_roundtrip_across_days() {
        for ms in [0u64, 999, 86_399_999, 86_400_000, 10 * 86_400_000 + 5432] {
            let s = format_ulm_date(ms);
            assert_eq!(parse_ulm_date(&s), Some(ms), "date {s}");
        }
    }

    #[test]
    fn tail_and_query() {
        let (net, agent) = setup();
        assert!(agent.pump() > 0);
        let tail = ask(&net, &agent, "TAIL 3");
        assert_eq!(tail.lines().count(), 3);
        let q = ask(&net, &agent, "QUERY cpu.load 10");
        assert!(q.lines().all(|l| l.contains("NL.EVNT=cpu.load")));
        assert_eq!(q.lines().count(), 2); // one per host
        let hq = ask(&net, &agent, "HOSTQ node01.nl 10");
        assert!(hq.lines().all(|l| l.contains("HOST=node01.nl")));
    }

    #[test]
    fn streaming_pushes_to_subscriber() {
        let (net, agent) = setup();
        net.register("gw", Arc::new(|_: &str, _: &[u8]| Vec::new()));
        let rx = net.subscribe("gw").unwrap();
        assert_eq!(ask(&net, &agent, "SUBSCRIBE gw"), "OK\n");
        let n = agent.pump();
        let mut received = 0;
        while rx.try_recv().is_ok() {
            received += 1;
        }
        assert_eq!(received, n);
    }

    #[test]
    fn log_capacity_bounded() {
        let (_net, agent) = setup();
        for _ in 0..2000 {
            agent.pump();
        }
        assert!(agent.log.lock().len() <= 4096);
    }

    #[test]
    fn bad_commands_error() {
        let (net, agent) = setup();
        assert!(ask(&net, &agent, "QUERY").starts_with("ERROR"));
        assert!(ask(&net, &agent, "NOPE").starts_with("ERROR"));
    }
}
