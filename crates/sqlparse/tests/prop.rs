//! Property-based tests for the SQL parser and evaluator.

use gridrm_sqlparse::ast::{BinaryOp, Expr};
use gridrm_sqlparse::eval::like_match;
use gridrm_sqlparse::{parse, parse_expr, Evaluator, MapContext, SqlValue, Statement};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = SqlValue> {
    prop_oneof![
        Just(SqlValue::Null),
        any::<bool>().prop_map(SqlValue::Bool),
        (-1_000_000i64..1_000_000).prop_map(SqlValue::Int),
        (-1e6f64..1e6).prop_map(SqlValue::Float),
        "[a-z]{0,8}".prop_map(SqlValue::Str),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,10}".prop_filter("not a keyword", |s| {
        gridrm_sqlparse::Keyword::lookup(s).is_none()
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Literal),
        arb_ident().prop_map(Expr::col),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(a, BinaryOp::And, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(a, BinaryOp::Or, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(a, BinaryOp::Eq, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(a, BinaryOp::Lt, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(a, BinaryOp::Add, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(a, BinaryOp::Mul, b)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            (
                inner.clone(),
                prop::collection::vec(inner, 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
        ]
    })
}

proptest! {
    /// Printing an expression and re-parsing it yields the same AST.
    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap_or_else(|err| {
            panic!("failed to reparse `{printed}`: {err}")
        });
        // Compare by re-printing: the printer is deterministic and fully
        // parenthesised, so print-equality implies structural equality up to
        // literal representation (e.g. -0.0 vs 0.0 prints identically).
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// A printed SELECT re-parses to an identical statement.
    #[test]
    fn select_roundtrip(
        table in arb_ident(),
        cols in prop::collection::vec(arb_ident(), 0..4),
        limit in prop::option::of(0u64..1000),
        desc in any::<bool>(),
    ) {
        let mut sql = String::from("SELECT ");
        if cols.is_empty() {
            sql.push('*');
        } else {
            sql.push_str(&cols.join(", "));
        }
        sql.push_str(&format!(" FROM {table}"));
        if let Some(c) = cols.first() {
            sql.push_str(&format!(" ORDER BY {c}{}", if desc { " DESC" } else { "" }));
        }
        if let Some(l) = limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        let stmt1 = parse(&sql).unwrap();
        let printed = stmt1.to_string();
        let stmt2 = parse(&printed).unwrap();
        prop_assert_eq!(stmt2.to_string(), printed);
        prop_assert!(matches!(stmt1, Statement::Select(_)));
    }

    /// LIKE agrees with a simple reference implementation on `%`-only patterns.
    #[test]
    fn like_percent_reference(parts in prop::collection::vec("[a-z]{0,4}", 1..4), text in "[a-z]{0,12}") {
        let pattern = parts.join("%");
        let ours = like_match(&pattern, &text);
        // Reference: greedy segment search.
        let reference = {
            let segs: Vec<&str> = pattern.split('%').collect();
            let mut pos = 0usize;
            let mut ok = true;
            for (i, seg) in segs.iter().enumerate() {
                if seg.is_empty() { continue; }
                if i == 0 {
                    if !text[pos..].starts_with(seg) { ok = false; break; }
                    pos += seg.len();
                } else if i == segs.len() - 1 {
                    if !(text.len() >= pos + seg.len() && text.ends_with(seg)
                        && text.len() - seg.len() >= pos) { ok = false; break; }
                    pos = text.len();
                } else {
                    match text[pos..].find(seg) {
                        Some(idx) => pos += idx + seg.len(),
                        None => { ok = false; break; }
                    }
                }
            }
            if ok && segs.len() == 1 {
                // No '%' at all: exact match required.
                text == pattern
            } else { ok }
        };
        prop_assert_eq!(ours, reference, "pattern={} text={}", pattern, text);
    }

    /// NOT(NOT(p)) has the same truth value as p (in three-valued logic).
    #[test]
    fn double_negation(e in arb_expr()) {
        let ctx = MapContext::new();
        let ev = Evaluator;
        let direct = ev.eval_truth(&e, &ctx);
        let double = ev.eval_truth(&Expr::Not(Box::new(Expr::Not(Box::new(e)))), &ctx);
        match (direct, double) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            // NOT coerces its operand to a truth value first, so an operand
            // that errors under eval() may survive under eval_truth(); accept
            // any combination involving an error on the direct side.
            (Err(_), Ok(_)) | (Ok(_), Err(_)) => {}
        }
    }

    /// total_cmp is a total order: antisymmetric and transitive on samples.
    #[test]
    fn total_cmp_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_never_panics(input in "\\PC{0,64}") {
        let _ = gridrm_sqlparse::Lexer::new(&input).tokenize();
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,64}") {
        let _ = parse(&input);
    }
}
