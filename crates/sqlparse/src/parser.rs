//! Recursive-descent parser producing the [`crate::ast`] types.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::lexer::Lexer;
use crate::token::{Keyword as K, Token, TokenKind as T};
use crate::value::{SqlType, SqlValue};

/// Recursive-descent SQL parser.
///
/// Construction lexes the entire input; parsing then walks the token stream.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lex `sql` and prepare a parser over it.
    pub fn new(sql: &str) -> ParseResult<Self> {
        Ok(Parser {
            tokens: Lexer::new(sql).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kind(&mut self, kind: &T) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: K) -> bool {
        self.eat_kind(&T::Keyword(kw))
    }

    fn expect_kw(&mut self, kw: K) -> ParseResult<()> {
        let t = self.peek();
        if t.kind == T::Keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {kw}, found {}", t.kind),
                t.offset,
            ))
        }
    }

    fn expect_kind(&mut self, kind: T) -> ParseResult<()> {
        let t = self.peek();
        if t.kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {kind}, found {}", t.kind),
                t.offset,
            ))
        }
    }

    fn expect_ident(&mut self) -> ParseResult<String> {
        let t = self.peek().clone();
        match t.kind {
            T::Ident(s) => {
                self.bump();
                Ok(s)
            }
            // Allow non-reserved-looking keywords as identifiers where
            // unambiguous (e.g. a column named "key").
            T::Keyword(K::Key) => {
                self.bump();
                Ok("Key".to_owned())
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {other}"),
                t.offset,
            )),
        }
    }

    /// Parse exactly one statement, requiring EOF (an optional trailing `;`
    /// is allowed).
    pub fn parse_statement(&mut self) -> ParseResult<Statement> {
        let stmt = self.parse_statement_inner()?;
        self.eat_kind(&T::Semicolon);
        let t = self.peek();
        if t.kind != T::Eof {
            return Err(ParseError::new(
                format!("unexpected trailing input: {}", t.kind),
                t.offset,
            ));
        }
        Ok(stmt)
    }

    fn parse_statement_inner(&mut self) -> ParseResult<Statement> {
        let t = self.peek().clone();
        match t.kind {
            T::Keyword(K::Select) => self.parse_select().map(Statement::Select),
            T::Keyword(K::Insert) => self.parse_insert(),
            T::Keyword(K::Delete) => self.parse_delete(),
            T::Keyword(K::Update) => self.parse_update(),
            T::Keyword(K::Create) => self.parse_create_table(),
            T::Keyword(K::Drop) => self.parse_drop_table(),
            T::Keyword(K::Explain) => {
                self.expect_kw(K::Explain)?;
                let analyze = self.eat_kw(K::Analyze);
                let inner = Box::new(self.parse_statement_inner()?);
                Ok(Statement::Explain { analyze, inner })
            }
            other => Err(ParseError::new(
                format!("expected a statement, found {other}"),
                t.offset,
            )),
        }
    }

    /// Parse a standalone scalar expression (whole input).
    pub fn parse_standalone_expr(&mut self) -> ParseResult<Expr> {
        let e = self.parse_expr()?;
        let t = self.peek();
        if t.kind != T::Eof {
            return Err(ParseError::new(
                format!("unexpected trailing input: {}", t.kind),
                t.offset,
            ));
        }
        Ok(e)
    }

    fn parse_select(&mut self) -> ParseResult<SelectStatement> {
        self.expect_kw(K::Select)?;
        let distinct = self.eat_kw(K::Distinct);
        let projection = if self.eat_kind(&T::Star) {
            Projection::Star
        } else {
            let mut items = Vec::new();
            loop {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw(K::As) {
                    Some(self.expect_ident()?)
                } else if let T::Ident(_) = self.peek().kind {
                    // Implicit alias: `SELECT Load1 busy`.
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                items.push(SelectItem { expr, alias });
                if !self.eat_kind(&T::Comma) {
                    break;
                }
            }
            Projection::Items(items)
        };
        self.expect_kw(K::From)?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_kw(K::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(K::Group) {
            self.expect_kw(K::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_kind(&T::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw(K::Order) {
            self.expect_kw(K::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw(K::Desc) {
                    true
                } else {
                    self.eat_kw(K::Asc);
                    false
                };
                order_by.push(OrderBy { expr, desc });
                if !self.eat_kind(&T::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(K::Limit) {
            Some(self.expect_u64()?)
        } else {
            None
        };
        let offset = if self.eat_kw(K::Offset) {
            Some(self.expect_u64()?)
        } else {
            None
        };
        let every_ms = if self.eat_kw(K::Every) {
            let at = self.peek().offset;
            let interval = self.expect_u64()?;
            if interval == 0 {
                return Err(ParseError::new(
                    "EVERY interval must be a positive number of milliseconds".to_owned(),
                    at,
                ));
            }
            Some(interval)
        } else {
            None
        };
        Ok(SelectStatement {
            distinct,
            projection,
            table,
            where_clause,
            group_by,
            order_by,
            limit,
            offset,
            every_ms,
        })
    }

    fn expect_u64(&mut self) -> ParseResult<u64> {
        let t = self.peek().clone();
        match t.kind {
            T::Int(i) if i >= 0 => {
                self.bump();
                Ok(i as u64)
            }
            other => Err(ParseError::new(
                format!("expected non-negative integer, found {other}"),
                t.offset,
            )),
        }
    }

    fn parse_insert(&mut self) -> ParseResult<Statement> {
        self.expect_kw(K::Insert)?;
        self.expect_kw(K::Into)?;
        let table = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.eat_kind(&T::LParen) {
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat_kind(&T::Comma) {
                    break;
                }
            }
            self.expect_kind(T::RParen)?;
        }
        self.expect_kw(K::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(T::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat_kind(&T::Comma) {
                    break;
                }
            }
            self.expect_kind(T::RParen)?;
            rows.push(row);
            if !self.eat_kind(&T::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_delete(&mut self) -> ParseResult<Statement> {
        self.expect_kw(K::Delete)?;
        self.expect_kw(K::From)?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_kw(K::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn parse_update(&mut self) -> ParseResult<Statement> {
        self.expect_kw(K::Update)?;
        let table = self.expect_ident()?;
        self.expect_kw(K::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_kind(T::Eq)?;
            let e = self.parse_expr()?;
            assignments.push((col, e));
            if !self.eat_kind(&T::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw(K::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn parse_create_table(&mut self) -> ParseResult<Statement> {
        self.expect_kw(K::Create)?;
        self.expect_kw(K::Table)?;
        let if_not_exists = if self.eat_kw(K::If) {
            self.expect_kw(K::Not)?;
            self.expect_kw(K::Exists)?;
            true
        } else {
            false
        };
        let table = self.expect_ident()?;
        self.expect_kind(T::LParen)?;
        let mut columns = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let ty_tok = self.peek().clone();
            let ty_name = self.expect_ident()?;
            let ty = SqlType::parse(&ty_name).ok_or_else(|| {
                ParseError::new(format!("unknown column type '{ty_name}'"), ty_tok.offset)
            })?;
            let mut primary_key = false;
            if self.eat_kw(K::Primary) {
                self.expect_kw(K::Key)?;
                primary_key = true;
            }
            columns.push(ColumnDef {
                name,
                ty,
                primary_key,
            });
            if !self.eat_kind(&T::Comma) {
                break;
            }
        }
        self.expect_kind(T::RParen)?;
        Ok(Statement::CreateTable {
            table,
            columns,
            if_not_exists,
        })
    }

    fn parse_drop_table(&mut self) -> ParseResult<Statement> {
        self.expect_kw(K::Drop)?;
        self.expect_kw(K::Table)?;
        let if_exists = if self.eat_kw(K::If) {
            self.expect_kw(K::Exists)?;
            true
        } else {
            false
        };
        let table = self.expect_ident()?;
        Ok(Statement::DropTable { table, if_exists })
    }

    // --- expressions: precedence climbing -------------------------------

    /// OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < add < mul < unary.
    pub fn parse_expr(&mut self) -> ParseResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw(K::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(lhs, BinaryOp::Or, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw(K::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::bin(lhs, BinaryOp::And, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> ParseResult<Expr> {
        if self.eat_kw(K::Not) {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> ParseResult<Expr> {
        let lhs = self.parse_additive()?;
        let op = match &self.peek().kind {
            T::Eq => Some(BinaryOp::Eq),
            T::NotEq => Some(BinaryOp::NotEq),
            T::Lt => Some(BinaryOp::Lt),
            T::LtEq => Some(BinaryOp::LtEq),
            T::Gt => Some(BinaryOp::Gt),
            T::GtEq => Some(BinaryOp::GtEq),
            T::Keyword(K::Like) => Some(BinaryOp::Like),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_additive()?;
            return Ok(Expr::bin(lhs, op, rhs));
        }
        // IS [NOT] NULL
        if self.eat_kw(K::Is) {
            let negated = self.eat_kw(K::Not);
            self.expect_kw(K::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] IN / [NOT] BETWEEN / NOT LIKE
        let negated = self.eat_kw(K::Not);
        if self.eat_kw(K::In) {
            self.expect_kind(T::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_kind(&T::Comma) {
                    break;
                }
            }
            self.expect_kind(T::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw(K::Between) {
            let low = self.parse_additive()?;
            self.expect_kw(K::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            if self.eat_kw(K::Like) {
                let rhs = self.parse_additive()?;
                return Ok(Expr::Not(Box::new(Expr::bin(lhs, BinaryOp::Like, rhs))));
            }
            let t = self.peek();
            return Err(ParseError::new(
                format!("expected IN, BETWEEN or LIKE after NOT, found {}", t.kind),
                t.offset,
            ));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().kind {
                T::Plus => BinaryOp::Add,
                T::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::bin(lhs, op, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                T::Star => BinaryOp::Mul,
                T::Slash => BinaryOp::Div,
                T::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(lhs, op, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> ParseResult<Expr> {
        if self.eat_kind(&T::Minus) {
            // Fold negation of numeric literals so `-1` round-trips as a
            // literal rather than `Neg(Literal(1))`.
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Literal(SqlValue::Int(i)) => Expr::Literal(SqlValue::Int(-i)),
                Expr::Literal(SqlValue::Float(x)) => Expr::Literal(SqlValue::Float(-x)),
                other => Expr::Neg(Box::new(other)),
            });
        }
        if self.eat_kind(&T::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> ParseResult<Expr> {
        let t = self.peek().clone();
        match t.kind {
            T::Int(i) => {
                self.bump();
                Ok(Expr::Literal(SqlValue::Int(i)))
            }
            T::Float(x) => {
                self.bump();
                Ok(Expr::Literal(SqlValue::Float(x)))
            }
            T::Str(s) => {
                self.bump();
                Ok(Expr::Literal(SqlValue::Str(s)))
            }
            T::Keyword(K::Null) => {
                self.bump();
                Ok(Expr::Literal(SqlValue::Null))
            }
            T::Keyword(K::True) => {
                self.bump();
                Ok(Expr::Literal(SqlValue::Bool(true)))
            }
            T::Keyword(K::False) => {
                self.bump();
                Ok(Expr::Literal(SqlValue::Bool(false)))
            }
            T::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_kind(T::RParen)?;
                Ok(e)
            }
            T::Ident(name) => {
                self.bump();
                // Function call?
                if self.peek().kind == T::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    let mut star = false;
                    if self.eat_kind(&T::Star) {
                        star = true;
                    } else if self.peek().kind != T::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_kind(&T::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_kind(T::RParen)?;
                    return Ok(Expr::Function {
                        name: name.to_ascii_uppercase(),
                        args,
                        star,
                    });
                }
                // Qualified column?
                if self.eat_kind(&T::Dot) {
                    let col = self.expect_ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::col(name))
            }
            other => Err(ParseError::new(
                format!("expected an expression, found {other}"),
                t.offset,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn parse_glue_group_query() {
        // The exact example query from the paper, §3.2.3.
        let stmt = parse("SELECT * FROM Processor").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.table, "Processor");
                assert!(matches!(s.projection, Projection::Star));
            }
            _ => panic!("not a select"),
        }
    }

    #[test]
    fn parse_full_select() {
        let stmt = parse(
            "SELECT DISTINCT Hostname, Load1 AS busy FROM Processor \
             WHERE Load1 > 0.5 AND Hostname LIKE 'node%' \
             ORDER BY Load1 DESC, Hostname LIMIT 10 OFFSET 5",
        )
        .unwrap();
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        assert!(s.distinct);
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
    }

    #[test]
    fn parse_every_continuous_query() {
        let stmt =
            parse("SELECT Hostname, Load1 FROM Processor WHERE Load1 > 0.5 EVERY 500").unwrap();
        let Statement::Select(s) = &stmt else {
            panic!("not a select")
        };
        assert_eq!(s.every_ms, Some(500));
        // Round-trips through Display so remote gateways re-parse the
        // same standing query.
        assert_eq!(
            stmt.to_string(),
            "SELECT Hostname, Load1 FROM Processor WHERE (Load1 > 0.5) EVERY 500"
        );
        // EVERY composes after LIMIT/OFFSET; stripping it yields the
        // one-shot query a tick evaluates.
        let stmt = parse("SELECT * FROM Processor LIMIT 10 OFFSET 5 EVERY 250").unwrap();
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        assert_eq!(s.every_ms, Some(250));
        assert_eq!(
            s.without_every().to_string(),
            "SELECT * FROM Processor LIMIT 10 OFFSET 5"
        );
    }

    #[test]
    fn every_rejects_zero_and_garbage() {
        assert!(parse("SELECT * FROM Processor EVERY 0").is_err());
        assert!(parse("SELECT * FROM Processor EVERY").is_err());
        assert!(parse("SELECT * FROM Processor EVERY fast").is_err());
    }

    #[test]
    fn parse_explain_variants() {
        let stmt = parse("EXPLAIN SELECT * FROM Processor").unwrap();
        let Statement::Explain { analyze, inner } = stmt else {
            panic!("not an explain")
        };
        assert!(!analyze);
        assert!(matches!(*inner, Statement::Select(_)));

        let stmt = parse("explain analyze SELECT Hostname FROM Processor WHERE Load1 > 1").unwrap();
        let Statement::Explain { analyze, inner } = &stmt else {
            panic!("not an explain")
        };
        assert!(analyze);
        assert!(matches!(**inner, Statement::Select(_)));
        // Round-trips through Display so the inner SQL can be re-dispatched.
        assert_eq!(
            stmt.to_string(),
            "EXPLAIN ANALYZE SELECT Hostname FROM Processor WHERE (Load1 > 1)"
        );

        assert!(parse("EXPLAIN").is_err());
        assert!(parse("EXPLAIN ANALYZE").is_err());
    }

    #[test]
    fn precedence_or_and() {
        let e = crate::parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        // Must parse as a=1 OR (b=2 AND c=3).
        assert_eq!(e.to_string(), "((a = 1) OR ((b = 2) AND (c = 3)))");
    }

    #[test]
    fn precedence_arithmetic() {
        let e = crate::parse_expr("1 + 2 * 3 - 4 / 2").unwrap();
        assert_eq!(e.to_string(), "((1 + (2 * 3)) - (4 / 2))");
    }

    #[test]
    fn parse_in_between_isnull() {
        let e = crate::parse_expr("x IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: false, .. }));
        let e = crate::parse_expr("x NOT IN (1)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
        let e = crate::parse_expr("x BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = crate::parse_expr("x IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn parse_not_like() {
        let e = crate::parse_expr("x NOT LIKE 'a%'").unwrap();
        assert!(matches!(e, Expr::Not(_)));
    }

    #[test]
    fn parse_function_calls() {
        let e = crate::parse_expr("COUNT(*)").unwrap();
        assert!(matches!(e, Expr::Function { star: true, .. }));
        let e = crate::parse_expr("avg(Load1)").unwrap();
        match e {
            Expr::Function { name, args, star } => {
                assert_eq!(name, "AVG");
                assert_eq!(args.len(), 1);
                assert!(!star);
            }
            _ => panic!("not a function"),
        }
    }

    #[test]
    fn parse_qualified_column() {
        let e = crate::parse_expr("Processor.Load1").unwrap();
        assert_eq!(
            e,
            Expr::Column {
                qualifier: Some("Processor".into()),
                name: "Load1".into()
            }
        );
    }

    #[test]
    fn parse_insert_multi_row() {
        let stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert { columns, rows, .. } => {
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            _ => panic!("not an insert"),
        }
    }

    #[test]
    fn parse_create_and_drop() {
        let stmt = parse(
            "CREATE TABLE IF NOT EXISTS events (id INTEGER PRIMARY KEY, at TIMESTAMP, msg TEXT)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable {
                columns,
                if_not_exists,
                ..
            } => {
                assert!(if_not_exists);
                assert_eq!(columns.len(), 3);
                assert!(columns[0].primary_key);
                assert_eq!(columns[1].ty, SqlType::Timestamp);
            }
            _ => panic!("not create"),
        }
        let stmt = parse("DROP TABLE IF EXISTS events").unwrap();
        assert!(matches!(
            stmt,
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn parse_update() {
        let stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        match stmt {
            Statement::Update {
                assignments,
                where_clause,
                ..
            } => {
                assert_eq!(assignments.len(), 2);
                assert!(where_clause.is_some());
            }
            _ => panic!("not update"),
        }
    }

    #[test]
    fn parse_delete_without_where() {
        let stmt = parse("DELETE FROM history").unwrap();
        assert!(matches!(
            stmt,
            Statement::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_group_by() {
        let stmt = parse(
            "SELECT TIME_BUCKET(1000, ts_ms) AS bucket, AVG(value) FROM h \
             WHERE name = 'x' GROUP BY TIME_BUCKET(1000, ts_ms) ORDER BY bucket LIMIT 5",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.group_by.len(), 1);
                assert!(s.where_clause.is_some());
                assert_eq!(s.order_by.len(), 1);
                assert_eq!(s.limit, Some(5));
                // GROUP BY round-trips through Display.
                let rendered = s.to_string();
                assert!(
                    rendered.contains("GROUP BY TIME_BUCKET(1000, ts_ms)"),
                    "{rendered}"
                );
            }
            _ => panic!("not select"),
        }
        // Multiple keys parse as a comma list.
        let stmt = parse("SELECT name FROM h GROUP BY name, kind").unwrap();
        match stmt {
            Statement::Select(s) => assert_eq!(s.group_by.len(), 2),
            _ => panic!("not select"),
        }
        // GROUP without BY is rejected.
        assert!(parse("SELECT name FROM h GROUP name").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM t garbage garbage").is_err());
        assert!(parse("SELECT * FROM t; extra").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.message.contains("expected an expression"));
    }

    #[test]
    fn unary_minus_and_plus() {
        let e = crate::parse_expr("-3 + +4").unwrap();
        assert_eq!(e.to_string(), "(-3 + 4)");
        let e = crate::parse_expr("-x").unwrap();
        assert!(matches!(e, Expr::Neg(_)));
    }
}
