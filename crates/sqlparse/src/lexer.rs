//! Hand-written SQL tokeniser.

use crate::error::{ParseError, ParseResult};
use crate::token::{Keyword, Token, TokenKind};

/// Streaming tokeniser over a SQL source string.
///
/// The lexer is typically driven to completion by [`Lexer::tokenize`]; the
/// parser consumes the resulting token vector.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lex the whole input, appending a trailing [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> ParseResult<Vec<Token>> {
        let mut out = Vec::with_capacity(self.src.len() / 4 + 4);
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // `-- line comment`
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // `/* block comment */`
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(ParseError::new("unterminated block comment", start))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> ParseResult<Token> {
        self.skip_trivia()?;
        let offset = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                offset,
            });
        };
        let kind = match b {
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            b';' => {
                self.pos += 1;
                TokenKind::Semicolon
            }
            b'.' => {
                self.pos += 1;
                TokenKind::Dot
            }
            b'+' => {
                self.pos += 1;
                TokenKind::Plus
            }
            b'-' => {
                self.pos += 1;
                TokenKind::Minus
            }
            b'*' => {
                self.pos += 1;
                TokenKind::Star
            }
            b'/' => {
                self.pos += 1;
                TokenKind::Slash
            }
            b'%' => {
                self.pos += 1;
                TokenKind::Percent
            }
            b'=' => {
                self.pos += 1;
                TokenKind::Eq
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        TokenKind::LtEq
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new("unexpected '!'", offset));
                }
            }
            b'\'' => return self.lex_string(offset),
            b'"' => return self.lex_quoted_ident(offset),
            b'0'..=b'9' => return self.lex_number(offset),
            b if b.is_ascii_alphabetic() || b == b'_' => return Ok(self.lex_word(offset)),
            other => {
                return Err(ParseError::new(
                    format!("unexpected character '{}'", other as char),
                    offset,
                ))
            }
        };
        Ok(Token { kind, offset })
    }

    fn lex_string(&mut self, offset: usize) -> ParseResult<Token> {
        // NOTE: the bump must happen unconditionally — never inside a
        // debug_assert!, which compiles out in release builds.
        let opening = self.bump();
        debug_assert_eq!(opening, Some(b'\''));
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // `''` escapes a single quote inside a literal.
                    if self.peek() == Some(b'\'') {
                        self.pos += 1;
                        s.push('\'');
                    } else {
                        return Ok(Token {
                            kind: TokenKind::Str(s),
                            offset,
                        });
                    }
                }
                Some(b) => {
                    // Collect raw bytes; re-validate as UTF-8 on multi-byte.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        // Walk back and take the full char from the source.
                        let start = self.pos - 1;
                        let ch_len = utf8_len(b);
                        let end = start + ch_len;
                        if end > self.bytes.len() {
                            return Err(ParseError::new("invalid UTF-8 in string", start));
                        }
                        let ch = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| ParseError::new("invalid UTF-8 in string", start))?;
                        s.push_str(ch);
                        self.pos = end;
                    }
                }
                None => return Err(ParseError::new("unterminated string literal", offset)),
            }
        }
    }

    fn lex_quoted_ident(&mut self, offset: usize) -> ParseResult<Token> {
        let opening = self.bump();
        debug_assert_eq!(opening, Some(b'"'));
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let ident = self.src[start..self.pos].to_owned();
                self.pos += 1;
                return Ok(Token {
                    kind: TokenKind::Ident(ident),
                    offset,
                });
            }
            self.pos += 1;
        }
        Err(ParseError::new("unterminated quoted identifier", offset))
    }

    fn lex_number(&mut self, offset: usize) -> ParseResult<Token> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b) if b.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = save; // `1e` with no digits: treat `e` as next word
            }
        }
        let text = &self.src[start..self.pos];
        let kind = if is_float {
            TokenKind::Float(
                text.parse()
                    .map_err(|_| ParseError::new("invalid float literal", offset))?,
            )
        } else {
            match text.parse::<i64>() {
                Ok(i) => TokenKind::Int(i),
                // Overflowing integers degrade to floats, like most SQL engines.
                Err(_) => TokenKind::Float(
                    text.parse()
                        .map_err(|_| ParseError::new("invalid numeric literal", offset))?,
                ),
            }
        };
        Ok(Token { kind, offset })
    }

    fn lex_word(&mut self, offset: usize) -> Token {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        let kind = match Keyword::lookup(word) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(word.to_owned()),
        };
        Token { kind, offset }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as K;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::new(sql)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_select_star() {
        assert_eq!(
            kinds("SELECT * FROM Processor"),
            vec![
                TokenKind::Keyword(K::Select),
                TokenKind::Star,
                TokenKind::Keyword(K::From),
                TokenKind::Ident("Processor".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("a <= b <> c != d >= e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::LtEq,
                TokenKind::Ident("b".into()),
                TokenKind::NotEq,
                TokenKind::Ident("c".into()),
                TokenKind::NotEq,
                TokenKind::Ident("d".into()),
                TokenKind::GtEq,
                TokenKind::Ident("e".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 7.25e-2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.0725),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_string_with_escape() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_unicode_string() {
        assert_eq!(
            kinds("'héllo→'"),
            vec![TokenKind::Str("héllo→".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_comments() {
        assert_eq!(
            kinds("SELECT -- comment\n 1 /* block */ ,2"),
            vec![
                TokenKind::Keyword(K::Select),
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Int(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_quoted_identifier() {
        assert_eq!(
            kinds("\"Weird Col\""),
            vec![TokenKind::Ident("Weird Col".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("'oops").tokenize().is_err());
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(Lexer::new("/* no end").tokenize().is_err());
    }

    #[test]
    fn error_carries_offset() {
        let err = Lexer::new("SELECT @").tokenize().unwrap_err();
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn big_integer_degrades_to_float() {
        assert_eq!(
            kinds("99999999999999999999"),
            vec![TokenKind::Float(1e20), TokenKind::Eof]
        );
    }
}
