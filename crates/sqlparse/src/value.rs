//! Dynamic SQL value and type system shared by the parser, the evaluator,
//! the embedded store and the `gridrm-dbc` result sets.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The static type of a column or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SqlType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Milliseconds since the UNIX epoch.
    Timestamp,
    /// The type of `NULL` literals before coercion.
    Null,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SqlType::Int => "INTEGER",
            SqlType::Float => "REAL",
            SqlType::Str => "TEXT",
            SqlType::Bool => "BOOLEAN",
            SqlType::Timestamp => "TIMESTAMP",
            SqlType::Null => "NULL",
        };
        f.write_str(s)
    }
}

impl SqlType {
    /// Parse a type name as accepted by `CREATE TABLE`.
    pub fn parse(name: &str) -> Option<SqlType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(SqlType::Int),
            "REAL" | "FLOAT" | "DOUBLE" => Some(SqlType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(SqlType::Str),
            "BOOL" | "BOOLEAN" => Some(SqlType::Bool),
            "TIMESTAMP" | "DATETIME" => Some(SqlType::Timestamp),
            _ => None,
        }
    }
}

/// A dynamically typed SQL value.
///
/// `SqlValue` is the unit of data flowing through GridRM: drivers populate
/// result sets with it, the evaluator computes over it, and the GLUE schema
/// layer validates it against attribute definitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SqlValue {
    /// SQL `NULL`. Per §3.2.3 of the paper, drivers return NULL for
    /// attributes "not possible or currently not implemented" to translate.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Milliseconds since the UNIX epoch.
    Timestamp(i64),
}

impl SqlValue {
    /// The runtime type tag of this value.
    pub fn sql_type(&self) -> SqlType {
        match self {
            SqlValue::Null => SqlType::Null,
            SqlValue::Bool(_) => SqlType::Bool,
            SqlValue::Int(_) => SqlType::Int,
            SqlValue::Float(_) => SqlType::Float,
            SqlValue::Str(_) => SqlType::Str,
            SqlValue::Timestamp(_) => SqlType::Timestamp,
        }
    }

    /// True when the value is SQL `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// Numeric view of this value, when it has one (`Int`, `Float`,
    /// `Timestamp`, and `Bool` as 0/1).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            SqlValue::Int(i) => Some(*i as f64),
            SqlValue::Float(f) => Some(*f),
            SqlValue::Timestamp(t) => Some(*t as f64),
            SqlValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view, truncating floats.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            SqlValue::Int(i) => Some(*i),
            SqlValue::Float(f) => Some(*f as i64),
            SqlValue::Timestamp(t) => Some(*t),
            SqlValue::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Borrowed string view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SqlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view (`Bool`, or nonzero numerics).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            SqlValue::Bool(b) => Some(*b),
            SqlValue::Int(i) => Some(*i != 0),
            SqlValue::Float(f) => Some(*f != 0.0),
            _ => None,
        }
    }

    /// Attempt to coerce the value to a target column type. Returns `None`
    /// when the coercion is lossy or nonsensical (e.g. `"abc"` → INTEGER).
    pub fn coerce(&self, ty: SqlType) -> Option<SqlValue> {
        if self.is_null() {
            return Some(SqlValue::Null);
        }
        match ty {
            SqlType::Null => Some(self.clone()),
            SqlType::Int => match self {
                SqlValue::Int(_) => Some(self.clone()),
                SqlValue::Float(f) if f.fract() == 0.0 => Some(SqlValue::Int(*f as i64)),
                SqlValue::Bool(b) => Some(SqlValue::Int(i64::from(*b))),
                SqlValue::Timestamp(t) => Some(SqlValue::Int(*t)),
                SqlValue::Str(s) => s.trim().parse().ok().map(SqlValue::Int),
                _ => None,
            },
            SqlType::Float => match self {
                SqlValue::Float(_) => Some(self.clone()),
                SqlValue::Int(i) => Some(SqlValue::Float(*i as f64)),
                SqlValue::Bool(b) => Some(SqlValue::Float(if *b { 1.0 } else { 0.0 })),
                SqlValue::Timestamp(t) => Some(SqlValue::Float(*t as f64)),
                SqlValue::Str(s) => s.trim().parse().ok().map(SqlValue::Float),
                SqlValue::Null => Some(SqlValue::Null),
            },
            SqlType::Str => Some(SqlValue::Str(self.to_string())),
            SqlType::Bool => self.as_bool().map(SqlValue::Bool),
            SqlType::Timestamp => match self {
                SqlValue::Timestamp(_) => Some(self.clone()),
                SqlValue::Int(i) => Some(SqlValue::Timestamp(*i)),
                SqlValue::Float(f) => Some(SqlValue::Timestamp(*f as i64)),
                SqlValue::Str(s) => s.trim().parse().ok().map(SqlValue::Timestamp),
                _ => None,
            },
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL (three-valued
    /// logic: the comparison is *unknown*) or the types are incomparable.
    ///
    /// Numeric types compare numerically across `Int`/`Float`/`Timestamp`;
    /// strings compare lexicographically; booleans as `false < true`.
    pub fn compare(&self, other: &SqlValue) -> Option<Ordering> {
        use SqlValue::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering used for `ORDER BY`: NULLs sort first, then by
    /// [`SqlValue::compare`], with incomparable pairs ordered by type tag so
    /// the sort is stable and total.
    pub fn total_cmp(&self, other: &SqlValue) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self
                .compare(other)
                .unwrap_or_else(|| type_rank(self).cmp(&type_rank(other))),
        }
    }

    /// SQL equality: `None` (unknown) if either side is NULL.
    pub fn sql_eq(&self, other: &SqlValue) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }
}

fn type_rank(v: &SqlValue) -> u8 {
    match v {
        SqlValue::Null => 0,
        SqlValue::Bool(_) => 1,
        SqlValue::Int(_) => 2,
        SqlValue::Float(_) => 2,
        SqlValue::Timestamp(_) => 2,
        SqlValue::Str(_) => 3,
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => f.write_str("NULL"),
            SqlValue::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            SqlValue::Int(i) => write!(f, "{i}"),
            SqlValue::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            SqlValue::Str(s) => f.write_str(s),
            SqlValue::Timestamp(t) => write!(f, "{t}"),
        }
    }
}

impl PartialEq for SqlValue {
    /// Structural (not SQL) equality: NULL == NULL here. Use
    /// [`SqlValue::sql_eq`] for SQL semantics.
    fn eq(&self, other: &Self) -> bool {
        use SqlValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Str(a), Str(b)) => a == b,
            (Timestamp(a), Timestamp(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl From<i64> for SqlValue {
    fn from(v: i64) -> Self {
        SqlValue::Int(v)
    }
}
impl From<i32> for SqlValue {
    fn from(v: i32) -> Self {
        SqlValue::Int(v as i64)
    }
}
impl From<u32> for SqlValue {
    fn from(v: u32) -> Self {
        SqlValue::Int(v as i64)
    }
}
impl From<u64> for SqlValue {
    fn from(v: u64) -> Self {
        SqlValue::Int(v as i64)
    }
}
impl From<f64> for SqlValue {
    fn from(v: f64) -> Self {
        SqlValue::Float(v)
    }
}
impl From<bool> for SqlValue {
    fn from(v: bool) -> Self {
        SqlValue::Bool(v)
    }
}
impl From<&str> for SqlValue {
    fn from(v: &str) -> Self {
        SqlValue::Str(v.to_owned())
    }
}
impl From<String> for SqlValue {
    fn from(v: String) -> Self {
        SqlValue::Str(v)
    }
}
impl<T: Into<SqlValue>> From<Option<T>> for SqlValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(SqlValue::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_numbers() {
        assert_eq!(SqlValue::Float(2.0).to_string(), "2.0");
        assert_eq!(SqlValue::Int(2).to_string(), "2");
        assert_eq!(SqlValue::Null.to_string(), "NULL");
        assert_eq!(SqlValue::Bool(true).to_string(), "TRUE");
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(SqlValue::Null.compare(&SqlValue::Int(1)), None);
        assert_eq!(SqlValue::Int(1).compare(&SqlValue::Null), None);
        assert_eq!(SqlValue::Null.sql_eq(&SqlValue::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            SqlValue::Int(2).compare(&SqlValue::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            SqlValue::Float(1.5).compare(&SqlValue::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn strings_incomparable_with_numbers() {
        assert_eq!(SqlValue::Str("a".into()).compare(&SqlValue::Int(1)), None);
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vals = [SqlValue::Int(3), SqlValue::Null, SqlValue::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], SqlValue::Int(1));
    }

    #[test]
    fn coercions() {
        assert_eq!(
            SqlValue::Str("42".into()).coerce(SqlType::Int),
            Some(SqlValue::Int(42))
        );
        assert_eq!(SqlValue::Str("x".into()).coerce(SqlType::Int), None);
        assert_eq!(
            SqlValue::Int(1).coerce(SqlType::Bool),
            Some(SqlValue::Bool(true))
        );
        assert_eq!(
            SqlValue::Float(3.0).coerce(SqlType::Int),
            Some(SqlValue::Int(3))
        );
        assert_eq!(SqlValue::Float(3.5).coerce(SqlType::Int), None);
        assert_eq!(SqlValue::Null.coerce(SqlType::Str), Some(SqlValue::Null));
    }

    #[test]
    fn type_parsing() {
        assert_eq!(SqlType::parse("varchar"), Some(SqlType::Str));
        assert_eq!(SqlType::parse("BIGINT"), Some(SqlType::Int));
        assert_eq!(SqlType::parse("blob"), None);
    }
}
