#![warn(missing_docs)]

//! # gridrm-sqlparse
//!
//! A small, dependency-light SQL dialect used throughout GridRM-rs.
//!
//! The GridRM paper (§3) uses SQL as the single query language flowing from
//! clients through the gateway down to every data-source driver: *"queries for
//! resource data are submitted as SQL statements and pass down to the data
//! source drivers in the same format"*. This crate supplies that substrate:
//!
//! * [`Lexer`] — tokeniser with source positions,
//! * [`Parser`] — recursive-descent parser producing a typed [`ast`],
//! * [`eval`] — three-valued-logic expression evaluator used by drivers and
//!   the historical store to apply `WHERE` clauses,
//! * [`SqlValue`] — the dynamic value type shared with `gridrm-dbc` result
//!   sets.
//!
//! The dialect covers what GridRM needs: `SELECT` (projection, `WHERE`,
//! `ORDER BY`, `LIMIT`), `INSERT`, `DELETE`, `CREATE TABLE`, and the usual
//! scalar expression grammar (`AND`/`OR`/`NOT`, comparisons, arithmetic,
//! `LIKE`, `IN`, `BETWEEN`, `IS [NOT] NULL`).

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod value;

pub use ast::{ColumnDef, Expr, OrderBy, Projection, SelectItem, SelectStatement, Statement};
pub use error::{ParseError, ParseResult};
pub use eval::{EvalContext, EvalError, Evaluator, MapContext};
pub use lexer::Lexer;
pub use parser::Parser;
pub use token::{Keyword, Token, TokenKind};
pub use value::{SqlType, SqlValue};

/// Parse a complete SQL statement from a string.
///
/// Convenience wrapper over [`Parser::parse_statement`].
///
/// ```
/// let stmt = gridrm_sqlparse::parse("SELECT * FROM Processor WHERE Load1 > 0.5").unwrap();
/// assert!(matches!(stmt, gridrm_sqlparse::Statement::Select(_)));
/// ```
pub fn parse(sql: &str) -> ParseResult<Statement> {
    Parser::new(sql)?.parse_statement()
}

/// Parse a SQL scalar expression (e.g. a bare `WHERE` clause body).
pub fn parse_expr(sql: &str) -> ParseResult<Expr> {
    Parser::new(sql)?.parse_standalone_expr()
}
