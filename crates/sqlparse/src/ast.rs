//! Typed abstract syntax tree for the GridRM SQL dialect, including a
//! SQL printer (`Display`) used when forwarding queries to remote gateways.

use crate::value::{SqlType, SqlValue};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Like,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Like => "LIKE",
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified (`table.column`).
    Column {
        /// Optional table/group qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal value.
    Literal(SqlValue),
    /// `left op right`.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `-expr`.
    Neg(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// Candidate expressions.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// Function call, e.g. `COUNT(*)` or `NOW()`.
    Function {
        /// Upper-cased function name.
        name: String,
        /// Argument expressions; `COUNT(*)` is encoded with an empty list
        /// and `star == true`.
        args: Vec<Expr>,
        /// Whether the single argument was `*`.
        star: bool,
    },
}

impl Expr {
    /// Shorthand: unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<SqlValue>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand: binary expression.
    pub fn bin(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Collect the set of column names referenced by this expression into
    /// `out` (used by drivers to decide which native attributes to fetch).
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column { name, .. } => out.push(name),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_columns(out),
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::Function { args, .. } => {
                for e in args {
                    e.collect_columns(out);
                }
            }
        }
    }
}

/// One item of a `SELECT` projection list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

impl SelectItem {
    /// The output column name: the alias if given, otherwise the column
    /// name for plain column references, otherwise the printed expression.
    pub fn output_name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            Expr::Column { name, .. } => name.clone(),
            other => other.to_string(),
        }
    }
}

/// `SELECT` projection: `*` or an explicit item list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// `SELECT a, b AS c, ...`
    Items(Vec<SelectItem>),
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Sort expression (usually a column).
    pub expr: Expr,
    /// True for descending order.
    pub desc: bool,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// The projection list.
    pub projection: Projection,
    /// The table (GLUE group) being queried.
    pub table: String,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` keys, possibly empty.
    pub group_by: Vec<Expr>,
    /// `ORDER BY` keys, possibly empty.
    pub order_by: Vec<OrderBy>,
    /// Optional `LIMIT`.
    pub limit: Option<u64>,
    /// Optional `OFFSET`.
    pub offset: Option<u64>,
    /// Optional `EVERY <n>` re-evaluation interval in virtual
    /// milliseconds. Present only on continuous queries: the statement
    /// describes a standing subscription rather than a one-shot fetch.
    pub every_ms: Option<u64>,
}

impl SelectStatement {
    /// A minimal `SELECT * FROM table` statement.
    pub fn star(table: impl Into<String>) -> Self {
        SelectStatement {
            distinct: false,
            projection: Projection::Star,
            table: table.into(),
            where_clause: None,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
            every_ms: None,
        }
    }

    /// The same statement without its `EVERY` clause: the one-shot
    /// query a standing subscription evaluates on each tick.
    pub fn without_every(&self) -> SelectStatement {
        SelectStatement {
            every_ms: None,
            ..self.clone()
        }
    }

    /// Column names needed to answer this query: projection plus predicate
    /// plus sort keys. Returns `None` when the projection is `*` (all).
    pub fn required_columns(&self) -> Option<Vec<String>> {
        let items = match &self.projection {
            Projection::Star => return None,
            Projection::Items(items) => items,
        };
        let mut cols: Vec<&str> = Vec::new();
        for item in items {
            item.expr.collect_columns(&mut cols);
        }
        if let Some(w) = &self.where_clause {
            w.collect_columns(&mut cols);
        }
        for g in &self.group_by {
            g.collect_columns(&mut cols);
        }
        for ob in &self.order_by {
            ob.expr.collect_columns(&mut cols);
        }
        let mut owned: Vec<String> = cols.into_iter().map(str::to_owned).collect();
        owned.sort();
        owned.dedup();
        Some(owned)
    }
}

/// A column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// Whether this column is (part of) the primary key.
    pub primary_key: bool,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(SelectStatement),
    /// `INSERT INTO t (cols) VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list (empty means "all columns in order").
        columns: Vec<String>,
        /// One row of value expressions per `VALUES` tuple.
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM t [WHERE ...]`
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate; `None` deletes every row.
        where_clause: Option<Expr>,
    },
    /// `UPDATE t SET a = e, ... [WHERE ...]`
    Update {
        /// Target table.
        table: String,
        /// `(column, value expression)` assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional predicate.
        where_clause: Option<Expr>,
    },
    /// `CREATE TABLE [IF NOT EXISTS] t (...)`
    CreateTable {
        /// New table name.
        table: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Whether `IF NOT EXISTS` was given.
        if_not_exists: bool,
    },
    /// `DROP TABLE [IF EXISTS] t`
    DropTable {
        /// Table to drop.
        table: String,
        /// Whether `IF EXISTS` was given.
        if_exists: bool,
    },
    /// `EXPLAIN [ANALYZE] <statement>` — run (or plan) the inner
    /// statement and return its span tree as a result set.
    Explain {
        /// Whether `ANALYZE` was given (execute and report real
        /// timings rather than a plan-only rendering).
        analyze: bool,
        /// The statement being explained.
        inner: Box<Statement>,
    },
}

fn fmt_literal(v: &SqlValue, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        SqlValue::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        other => write!(f, "{other}"),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(v) => fmt_literal(v, f),
            Expr::Binary { left, op, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Function { name, args, star } => {
                write!(f, "{name}(")?;
                if *star {
                    f.write_str("*")?;
                } else {
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        match &self.projection {
            Projection::Star => f.write_str("*")?,
            Projection::Items(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", item.expr)?;
                    if let Some(a) = &item.alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        write!(f, " FROM {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, ob) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}{}", ob.expr, if ob.desc { " DESC" } else { " ASC" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        if let Some(e) = self.every_ms {
            write!(f, " EVERY {e}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if !columns.is_empty() {
                    write!(f, " ({})", columns.join(", "))?;
                }
                f.write_str(" VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str("(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateTable {
                table,
                columns,
                if_not_exists,
            } => {
                write!(
                    f,
                    "CREATE TABLE {}{table} (",
                    if *if_not_exists { "IF NOT EXISTS " } else { "" }
                )?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} {}", c.name, c.ty)?;
                    if c.primary_key {
                        f.write_str(" PRIMARY KEY")?;
                    }
                }
                f.write_str(")")
            }
            Statement::DropTable { table, if_exists } => {
                write!(
                    f,
                    "DROP TABLE {}{table}",
                    if *if_exists { "IF EXISTS " } else { "" }
                )
            }
            Statement::Explain { analyze, inner } => {
                write!(
                    f,
                    "EXPLAIN {}{inner}",
                    if *analyze { "ANALYZE " } else { "" }
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_star_builder() {
        let s = SelectStatement::star("Processor");
        assert_eq!(s.to_string(), "SELECT * FROM Processor");
        assert_eq!(s.required_columns(), None);
    }

    #[test]
    fn required_columns_dedup_and_sort() {
        let s = SelectStatement {
            distinct: false,
            projection: Projection::Items(vec![
                SelectItem {
                    expr: Expr::col("Load1"),
                    alias: None,
                },
                SelectItem {
                    expr: Expr::col("Hostname"),
                    alias: Some("h".into()),
                },
            ]),
            table: "Processor".into(),
            where_clause: Some(Expr::bin(Expr::col("Load1"), BinaryOp::Gt, Expr::lit(0.5))),
            group_by: Vec::new(),
            order_by: vec![OrderBy {
                expr: Expr::col("ClockMHz"),
                desc: true,
            }],
            limit: None,
            offset: None,
            every_ms: None,
        };
        assert_eq!(
            s.required_columns().unwrap(),
            vec!["ClockMHz".to_owned(), "Hostname".into(), "Load1".into()]
        );
    }

    #[test]
    fn output_name_prefers_alias() {
        let item = SelectItem {
            expr: Expr::col("Load1"),
            alias: Some("busy".into()),
        };
        assert_eq!(item.output_name(), "busy");
        let item = SelectItem {
            expr: Expr::col("Load1"),
            alias: None,
        };
        assert_eq!(item.output_name(), "Load1");
    }

    #[test]
    fn string_literals_escape_quotes() {
        let e = Expr::lit("it's");
        assert_eq!(e.to_string(), "'it''s'");
    }
}
