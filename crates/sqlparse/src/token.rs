//! Tokens produced by the [`crate::Lexer`].

use std::fmt;

/// SQL keywords recognised by the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    Insert,
    Into,
    Values,
    Delete,
    Update,
    Set,
    Create,
    Table,
    Order,
    Group,
    By,
    Asc,
    Desc,
    Limit,
    Offset,
    Like,
    In,
    Is,
    Null,
    True,
    False,
    Between,
    As,
    Distinct,
    Primary,
    Key,
    If,
    Exists,
    Drop,
    Explain,
    Analyze,
    Every,
}

impl Keyword {
    /// Look up a keyword from an identifier, case-insensitively.
    ///
    /// Hot path of the lexer (called once per word), so the uppercase
    /// comparison happens in a stack buffer instead of allocating.
    pub fn lookup(ident: &str) -> Option<Keyword> {
        use Keyword::*;
        // The longest keyword ("DISTINCT") is 8 bytes.
        if ident.len() > 8 || !ident.is_ascii() {
            return None;
        }
        let mut buf = [0u8; 8];
        for (slot, b) in buf.iter_mut().zip(ident.bytes()) {
            *slot = b.to_ascii_uppercase();
        }
        let up = std::str::from_utf8(&buf[..ident.len()]).expect("ASCII verified");
        Some(match up {
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "DELETE" => Delete,
            "UPDATE" => Update,
            "SET" => Set,
            "CREATE" => Create,
            "TABLE" => Table,
            "ORDER" => Order,
            "GROUP" => Group,
            "BY" => By,
            "ASC" => Asc,
            "DESC" => Desc,
            "LIMIT" => Limit,
            "OFFSET" => Offset,
            "LIKE" => Like,
            "IN" => In,
            "IS" => Is,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "BETWEEN" => Between,
            "AS" => As,
            "DISTINCT" => Distinct,
            "PRIMARY" => Primary,
            "KEY" => Key,
            "IF" => If,
            "EXISTS" => Exists,
            "DROP" => Drop,
            "EXPLAIN" => Explain,
            "ANALYZE" => Analyze,
            "EVERY" => Every,
            _ => return None,
        })
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format!("{self:?}").to_ascii_uppercase())
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword such as `SELECT`.
    Keyword(Keyword),
    /// An identifier (table, column, function name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*` (also used for `SELECT *`)
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::NotEq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its byte offset in the source string (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the first character in the original source.
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("processor"), None);
    }

    #[test]
    fn keyword_display_is_uppercase() {
        assert_eq!(Keyword::Select.to_string(), "SELECT");
        assert_eq!(Keyword::Between.to_string(), "BETWEEN");
    }
}
