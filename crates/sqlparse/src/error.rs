//! Parse errors with positional context.

use std::fmt;

/// Result alias for parse operations.
pub type ParseResult<T> = Result<T, ParseError>;

/// An error produced by the lexer or parser, carrying the byte offset at
/// which it occurred so gateways can report precise diagnostics to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the source SQL where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Construct an error at the given source offset.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}
