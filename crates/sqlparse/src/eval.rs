//! Expression evaluation with SQL three-valued logic.
//!
//! Used by data-source drivers to apply `WHERE` clauses to rows they have
//! fetched natively, and by the embedded historical store for query
//! execution.

use crate::ast::{BinaryOp, Expr};
use crate::value::SqlValue;
use std::collections::HashMap;
use std::fmt;

/// Errors produced during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A referenced column does not exist in the row context.
    UnknownColumn(String),
    /// Operands had types the operator cannot handle.
    TypeMismatch {
        /// The operator involved.
        op: &'static str,
        /// Printed operand summary.
        detail: String,
    },
    /// Unknown scalar function.
    UnknownFunction(String),
    /// Function called with the wrong number of arguments.
    Arity {
        /// Function name.
        name: String,
        /// Expected argument count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// Division or modulo by zero.
    DivisionByZero,
    /// Aggregates cannot be evaluated row-at-a-time.
    AggregateInScalarContext(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            EvalError::TypeMismatch { op, detail } => {
                write!(f, "type mismatch for {op}: {detail}")
            }
            EvalError::UnknownFunction(n) => write!(f, "unknown function '{n}'"),
            EvalError::Arity {
                name,
                expected,
                got,
            } => write!(f, "{name} expects {expected} argument(s), got {got}"),
            EvalError::DivisionByZero => f.write_str("division by zero"),
            EvalError::AggregateInScalarContext(n) => {
                write!(f, "aggregate {n} not allowed in a scalar context")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Names of the aggregate functions understood by the historical store.
pub const AGGREGATE_FUNCTIONS: &[&str] = &["COUNT", "SUM", "AVG", "MIN", "MAX"];

/// Is `name` (already upper-cased) an aggregate?
pub fn is_aggregate(name: &str) -> bool {
    AGGREGATE_FUNCTIONS.contains(&name)
}

/// Provides column values for a row during evaluation.
pub trait EvalContext {
    /// Fetch the value of `column`, or `None` when the column is unknown.
    fn get(&self, column: &str) -> Option<SqlValue>;
    /// Milliseconds since the epoch for `NOW()`. Defaults to 0 so that
    /// evaluation stays deterministic unless a clock is supplied.
    fn now_millis(&self) -> i64 {
        0
    }
}

/// Simple map-backed context, convenient in tests and drivers.
#[derive(Debug, Default, Clone)]
pub struct MapContext {
    values: HashMap<String, SqlValue>,
    now: i64,
}

impl MapContext {
    /// Empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a column value (builder style).
    pub fn with(mut self, column: impl Into<String>, value: impl Into<SqlValue>) -> Self {
        self.values.insert(column.into(), value.into());
        self
    }

    /// Set the `NOW()` clock.
    pub fn with_now(mut self, now_millis: i64) -> Self {
        self.now = now_millis;
        self
    }

    /// Insert a column value.
    pub fn set(&mut self, column: impl Into<String>, value: impl Into<SqlValue>) {
        self.values.insert(column.into(), value.into());
    }
}

impl EvalContext for MapContext {
    fn get(&self, column: &str) -> Option<SqlValue> {
        self.values.get(column).cloned()
    }
    fn now_millis(&self) -> i64 {
        self.now
    }
}

/// Stateless evaluator. Construct once and reuse across rows.
#[derive(Debug, Default, Clone, Copy)]
pub struct Evaluator;

impl Evaluator {
    /// Evaluate `expr` against `ctx`, producing a value (possibly NULL).
    pub fn eval(&self, expr: &Expr, ctx: &dyn EvalContext) -> Result<SqlValue, EvalError> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column { name, .. } => ctx
                .get(name)
                .ok_or_else(|| EvalError::UnknownColumn(name.clone())),
            Expr::Neg(e) => {
                let v = self.eval(e, ctx)?;
                match v {
                    SqlValue::Null => Ok(SqlValue::Null),
                    SqlValue::Int(i) => Ok(SqlValue::Int(i.wrapping_neg())),
                    SqlValue::Float(x) => Ok(SqlValue::Float(-x)),
                    other => Err(EvalError::TypeMismatch {
                        op: "-",
                        detail: other.to_string(),
                    }),
                }
            }
            Expr::Not(e) => match self.eval_truth(e, ctx)? {
                Some(b) => Ok(SqlValue::Bool(!b)),
                None => Ok(SqlValue::Null),
            },
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, ctx)?;
                Ok(SqlValue::Bool(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let needle = self.eval(expr, ctx)?;
                if needle.is_null() {
                    return Ok(SqlValue::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = self.eval(item, ctx)?;
                    match needle.sql_eq(&v) {
                        Some(true) => return Ok(SqlValue::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(SqlValue::Null)
                } else {
                    Ok(SqlValue::Bool(*negated))
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr, ctx)?;
                let lo = self.eval(low, ctx)?;
                let hi = self.eval(high, ctx)?;
                let (Some(ge), Some(le)) = (
                    v.compare(&lo).map(|o| o != std::cmp::Ordering::Less),
                    v.compare(&hi).map(|o| o != std::cmp::Ordering::Greater),
                ) else {
                    return Ok(SqlValue::Null);
                };
                Ok(SqlValue::Bool((ge && le) != *negated))
            }
            Expr::Binary { left, op, right } => self.eval_binary(left, *op, right, ctx),
            Expr::Function { name, args, star } => self.eval_function(name, args, *star, ctx),
        }
    }

    /// Evaluate as a predicate: `Some(bool)` or `None` for SQL unknown.
    pub fn eval_truth(
        &self,
        expr: &Expr,
        ctx: &dyn EvalContext,
    ) -> Result<Option<bool>, EvalError> {
        let v = self.eval(expr, ctx)?;
        Ok(match v {
            SqlValue::Null => None,
            other => other.as_bool(),
        })
    }

    /// `WHERE` semantics: unknown filters the row out.
    pub fn matches(&self, expr: &Expr, ctx: &dyn EvalContext) -> Result<bool, EvalError> {
        Ok(self.eval_truth(expr, ctx)?.unwrap_or(false))
    }

    fn eval_binary(
        &self,
        left: &Expr,
        op: BinaryOp,
        right: &Expr,
        ctx: &dyn EvalContext,
    ) -> Result<SqlValue, EvalError> {
        use BinaryOp::*;
        // AND/OR get short-circuit three-valued logic.
        if op == And || op == Or {
            let l = self.eval_truth(left, ctx)?;
            // SQL Kleene logic: FALSE AND x = FALSE, TRUE OR x = TRUE even
            // when x is unknown.
            match (op, l) {
                (And, Some(false)) => return Ok(SqlValue::Bool(false)),
                (Or, Some(true)) => return Ok(SqlValue::Bool(true)),
                _ => {}
            }
            let r = self.eval_truth(right, ctx)?;
            let out = match op {
                And => match (l, r) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                Or => match (l, r) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
                _ => unreachable!(),
            };
            return Ok(out.map_or(SqlValue::Null, SqlValue::Bool));
        }

        let l = self.eval(left, ctx)?;
        let r = self.eval(right, ctx)?;
        match op {
            Eq | NotEq | Lt | LtEq | Gt | GtEq => {
                let Some(ord) = l.compare(&r) else {
                    // NULL involved, or incomparable types: unknown for
                    // NULLs, type error otherwise.
                    if l.is_null() || r.is_null() {
                        return Ok(SqlValue::Null);
                    }
                    return Err(EvalError::TypeMismatch {
                        op: op.symbol(),
                        detail: format!("{} vs {}", l.sql_type(), r.sql_type()),
                    });
                };
                use std::cmp::Ordering::*;
                let b = match op {
                    Eq => ord == Equal,
                    NotEq => ord != Equal,
                    Lt => ord == Less,
                    LtEq => ord != Greater,
                    Gt => ord == Greater,
                    GtEq => ord != Less,
                    _ => unreachable!(),
                };
                Ok(SqlValue::Bool(b))
            }
            Like => {
                if l.is_null() || r.is_null() {
                    return Ok(SqlValue::Null);
                }
                let (Some(s), Some(p)) = (l.as_str(), r.as_str()) else {
                    return Err(EvalError::TypeMismatch {
                        op: "LIKE",
                        detail: format!("{} LIKE {}", l.sql_type(), r.sql_type()),
                    });
                };
                Ok(SqlValue::Bool(like_match(p, s)))
            }
            Add | Sub | Mul | Div | Mod => self.eval_arith(l, op, r),
            And | Or => unreachable!("handled above"),
        }
    }

    fn eval_arith(&self, l: SqlValue, op: BinaryOp, r: SqlValue) -> Result<SqlValue, EvalError> {
        use BinaryOp::*;
        if l.is_null() || r.is_null() {
            return Ok(SqlValue::Null);
        }
        // String concatenation via `+`, a convenience many small dialects allow.
        if op == Add {
            if let (SqlValue::Str(a), SqlValue::Str(b)) = (&l, &r) {
                let mut s = String::with_capacity(a.len() + b.len());
                s.push_str(a);
                s.push_str(b);
                return Ok(SqlValue::Str(s));
            }
        }
        // Integer arithmetic stays integral; anything else goes via f64.
        if let (SqlValue::Int(a), SqlValue::Int(b)) = (&l, &r) {
            let (a, b) = (*a, *b);
            return match op {
                Add => Ok(SqlValue::Int(a.wrapping_add(b))),
                Sub => Ok(SqlValue::Int(a.wrapping_sub(b))),
                Mul => Ok(SqlValue::Int(a.wrapping_mul(b))),
                Div => {
                    if b == 0 {
                        Err(EvalError::DivisionByZero)
                    } else {
                        Ok(SqlValue::Int(a.wrapping_div(b)))
                    }
                }
                Mod => {
                    if b == 0 {
                        Err(EvalError::DivisionByZero)
                    } else {
                        Ok(SqlValue::Int(a.wrapping_rem(b)))
                    }
                }
                _ => unreachable!(),
            };
        }
        let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
            return Err(EvalError::TypeMismatch {
                op: op.symbol(),
                detail: format!("{} {} {}", l.sql_type(), op.symbol(), r.sql_type()),
            });
        };
        let out = match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => {
                if b == 0.0 {
                    return Err(EvalError::DivisionByZero);
                }
                a / b
            }
            Mod => {
                if b == 0.0 {
                    return Err(EvalError::DivisionByZero);
                }
                a % b
            }
            _ => unreachable!(),
        };
        Ok(SqlValue::Float(out))
    }

    fn eval_function(
        &self,
        name: &str,
        args: &[Expr],
        star: bool,
        ctx: &dyn EvalContext,
    ) -> Result<SqlValue, EvalError> {
        if is_aggregate(name) {
            return Err(EvalError::AggregateInScalarContext(name.to_owned()));
        }
        let arity = |expected: usize| -> Result<(), EvalError> {
            let got = if star { 1 } else { args.len() };
            if got == expected {
                Ok(())
            } else {
                Err(EvalError::Arity {
                    name: name.to_owned(),
                    expected,
                    got,
                })
            }
        };
        match name {
            "NOW" => {
                arity(0)?;
                Ok(SqlValue::Timestamp(ctx.now_millis()))
            }
            "UPPER" => {
                arity(1)?;
                let v = self.eval(&args[0], ctx)?;
                Ok(match v {
                    SqlValue::Str(s) => SqlValue::Str(s.to_uppercase()),
                    SqlValue::Null => SqlValue::Null,
                    other => SqlValue::Str(other.to_string().to_uppercase()),
                })
            }
            "LOWER" => {
                arity(1)?;
                let v = self.eval(&args[0], ctx)?;
                Ok(match v {
                    SqlValue::Str(s) => SqlValue::Str(s.to_lowercase()),
                    SqlValue::Null => SqlValue::Null,
                    other => SqlValue::Str(other.to_string().to_lowercase()),
                })
            }
            "LENGTH" => {
                arity(1)?;
                let v = self.eval(&args[0], ctx)?;
                Ok(match v {
                    SqlValue::Str(s) => SqlValue::Int(s.chars().count() as i64),
                    SqlValue::Null => SqlValue::Null,
                    other => SqlValue::Int(other.to_string().chars().count() as i64),
                })
            }
            "ABS" => {
                arity(1)?;
                let v = self.eval(&args[0], ctx)?;
                Ok(match v {
                    SqlValue::Int(i) => SqlValue::Int(i.wrapping_abs()),
                    SqlValue::Float(x) => SqlValue::Float(x.abs()),
                    SqlValue::Null => SqlValue::Null,
                    other => {
                        return Err(EvalError::TypeMismatch {
                            op: "ABS",
                            detail: other.to_string(),
                        })
                    }
                })
            }
            "ROUND" => {
                arity(1)?;
                let v = self.eval(&args[0], ctx)?;
                Ok(match v {
                    SqlValue::Float(x) => SqlValue::Float(x.round()),
                    SqlValue::Int(_) | SqlValue::Null => v,
                    other => {
                        return Err(EvalError::TypeMismatch {
                            op: "ROUND",
                            detail: other.to_string(),
                        })
                    }
                })
            }
            "COALESCE" => {
                if args.is_empty() {
                    return Err(EvalError::Arity {
                        name: name.to_owned(),
                        expected: 1,
                        got: 0,
                    });
                }
                for a in args {
                    let v = self.eval(a, ctx)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(SqlValue::Null)
            }
            "TIME_BUCKET" => {
                // TIME_BUCKET(width_ms, ts): align `ts` down to a
                // `width_ms`-wide bucket boundary (the grouping key for
                // time-series aggregation). Timestamp in, Timestamp out.
                arity(2)?;
                let width = match self.eval(&args[0], ctx)? {
                    SqlValue::Int(w) => w,
                    SqlValue::Null => return Ok(SqlValue::Null),
                    other => {
                        return Err(EvalError::TypeMismatch {
                            op: "TIME_BUCKET",
                            detail: format!("bucket width must be an integer, got {other}"),
                        })
                    }
                };
                if width <= 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(match self.eval(&args[1], ctx)? {
                    SqlValue::Int(ts) => SqlValue::Int(ts.div_euclid(width) * width),
                    SqlValue::Timestamp(ts) => SqlValue::Timestamp(ts.div_euclid(width) * width),
                    SqlValue::Null => SqlValue::Null,
                    other => {
                        return Err(EvalError::TypeMismatch {
                            op: "TIME_BUCKET",
                            detail: format!("timestamp must be integral, got {other}"),
                        })
                    }
                })
            }
            other => Err(EvalError::UnknownFunction(other.to_owned())),
        }
    }
}

/// SQL `LIKE` matcher: `%` matches any run (including empty), `_` matches a
/// single character. Matching is case-sensitive, per the standard.
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                // Try consuming 0..=len characters.
                (0..=t.len()).any(|i| rec(rest, &t[i..]))
            }
            Some(('_', rest)) => !t.is_empty() && rec(rest, &t[1..]),
            Some((c, rest)) => t.first() == Some(c) && rec(rest, &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    rec(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_expr;

    fn ctx() -> MapContext {
        MapContext::new()
            .with("Load1", 0.75)
            .with("Hostname", "node01")
            .with("NCpu", 4i64)
            .with("Missing", SqlValue::Null)
            .with_now(1_000_000)
    }

    fn eval(sql: &str) -> SqlValue {
        Evaluator.eval(&parse_expr(sql).unwrap(), &ctx()).unwrap()
    }

    fn truth(sql: &str) -> Option<bool> {
        Evaluator
            .eval_truth(&parse_expr(sql).unwrap(), &ctx())
            .unwrap()
    }

    #[test]
    fn comparisons() {
        assert_eq!(truth("Load1 > 0.5"), Some(true));
        assert_eq!(truth("Load1 >= 0.75"), Some(true));
        assert_eq!(truth("NCpu = 4"), Some(true));
        assert_eq!(truth("NCpu <> 4"), Some(false));
        assert_eq!(truth("Hostname = 'node01'"), Some(true));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(truth("Missing = 1"), None);
        assert_eq!(truth("Missing IS NULL"), Some(true));
        assert_eq!(truth("Missing IS NOT NULL"), Some(false));
        assert_eq!(eval("Missing + 1"), SqlValue::Null);
    }

    #[test]
    fn kleene_logic() {
        // FALSE AND unknown = FALSE; TRUE OR unknown = TRUE.
        assert_eq!(truth("1 = 2 AND Missing = 1"), Some(false));
        assert_eq!(truth("1 = 1 OR Missing = 1"), Some(true));
        // TRUE AND unknown = unknown.
        assert_eq!(truth("1 = 1 AND Missing = 1"), None);
        assert_eq!(truth("1 = 2 OR Missing = 1"), None);
    }

    #[test]
    fn short_circuit_avoids_rhs_error() {
        // RHS references an unknown column but must never be evaluated.
        let e = parse_expr("1 = 2 AND NoSuchColumn = 1").unwrap();
        assert_eq!(Evaluator.eval_truth(&e, &ctx()).unwrap(), Some(false));
    }

    #[test]
    fn time_bucket_aligns_down() {
        assert_eq!(eval("TIME_BUCKET(1000, 1234)"), SqlValue::Int(1000));
        assert_eq!(eval("TIME_BUCKET(1000, 999)"), SqlValue::Int(0));
        assert_eq!(eval("TIME_BUCKET(1000, 1000)"), SqlValue::Int(1000));
        // Negative timestamps floor toward -inf (div_euclid).
        assert_eq!(eval("TIME_BUCKET(1000, -1)"), SqlValue::Int(-1000));
        // Timestamp in, Timestamp out (NOW() is the context clock).
        assert_eq!(
            eval("TIME_BUCKET(60000, NOW())"),
            SqlValue::Timestamp(960_000)
        );
        assert_eq!(eval("TIME_BUCKET(1000, Missing)"), SqlValue::Null);
    }

    #[test]
    fn time_bucket_rejects_bad_width() {
        let e = parse_expr("TIME_BUCKET(0, 5)").unwrap();
        assert_eq!(Evaluator.eval(&e, &ctx()), Err(EvalError::DivisionByZero));
        let e = parse_expr("TIME_BUCKET(-10, 5)").unwrap();
        assert_eq!(Evaluator.eval(&e, &ctx()), Err(EvalError::DivisionByZero));
        let e = parse_expr("TIME_BUCKET(1000)").unwrap();
        assert!(matches!(
            Evaluator.eval(&e, &ctx()),
            Err(EvalError::Arity { .. })
        ));
    }

    #[test]
    fn in_list_semantics() {
        assert_eq!(truth("NCpu IN (1, 2, 4)"), Some(true));
        assert_eq!(truth("NCpu IN (1, 2)"), Some(false));
        assert_eq!(truth("NCpu NOT IN (1, 2)"), Some(true));
        // NULL in the list makes a failed match unknown.
        assert_eq!(truth("NCpu IN (1, NULL)"), None);
        assert_eq!(truth("NCpu IN (4, NULL)"), Some(true));
        assert_eq!(truth("Missing IN (1, 2)"), None);
    }

    #[test]
    fn between_semantics() {
        assert_eq!(truth("Load1 BETWEEN 0.5 AND 1.0"), Some(true));
        assert_eq!(truth("Load1 NOT BETWEEN 0.5 AND 1.0"), Some(false));
        assert_eq!(truth("Load1 BETWEEN 0.8 AND 1.0"), Some(false));
        assert_eq!(truth("Missing BETWEEN 0 AND 1"), None);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("node%", "node01"));
        assert!(like_match("%01", "node01"));
        assert!(like_match("n_de01", "node01"));
        assert!(!like_match("node", "node01"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
        assert!(like_match("a%b%c", "axxbyyc"));
        assert_eq!(truth("Hostname LIKE 'node%'"), Some(true));
        assert_eq!(truth("Hostname NOT LIKE 'x%'"), Some(true));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("NCpu * 2"), SqlValue::Int(8));
        assert_eq!(eval("7 / 2"), SqlValue::Int(3));
        assert_eq!(eval("7.0 / 2"), SqlValue::Float(3.5));
        assert_eq!(eval("7 % 3"), SqlValue::Int(1));
        assert_eq!(eval("'a' + 'b'"), SqlValue::Str("ab".into()));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = parse_expr("1 / 0").unwrap();
        assert_eq!(
            Evaluator.eval(&e, &ctx()).unwrap_err(),
            EvalError::DivisionByZero
        );
    }

    #[test]
    fn functions() {
        assert_eq!(eval("UPPER(Hostname)"), SqlValue::Str("NODE01".into()));
        assert_eq!(eval("LOWER('ABC')"), SqlValue::Str("abc".into()));
        assert_eq!(eval("LENGTH(Hostname)"), SqlValue::Int(6));
        assert_eq!(eval("ABS(-5)"), SqlValue::Int(5));
        assert_eq!(eval("ROUND(2.6)"), SqlValue::Float(3.0));
        assert_eq!(eval("COALESCE(Missing, 9)"), SqlValue::Int(9));
        assert_eq!(eval("NOW()"), SqlValue::Timestamp(1_000_000));
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        let e = parse_expr("COUNT(*)").unwrap();
        assert!(matches!(
            Evaluator.eval(&e, &ctx()),
            Err(EvalError::AggregateInScalarContext(_))
        ));
    }

    #[test]
    fn unknown_column_errors() {
        let e = parse_expr("Nope = 1").unwrap();
        assert!(matches!(
            Evaluator.eval(&e, &ctx()),
            Err(EvalError::UnknownColumn(_))
        ));
    }

    #[test]
    fn matches_treats_unknown_as_false() {
        let e = parse_expr("Missing = 1").unwrap();
        assert!(!Evaluator.matches(&e, &ctx()).unwrap());
    }
}
