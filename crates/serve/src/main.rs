//! `gridrm-serve`: the gateway wire protocol on a real TCP socket.
//!
//! ```text
//! gridrm-serve serve [--port 7227] [--admin-port 7228] [--hosts 8] [--duration-ms N]
//! gridrm-serve bench [--clients 1,2,4,8,16] [--duration-ms 2000] [--hosts 8] [--out BENCH_serve.json]
//! gridrm-serve smoke
//! ```
//!
//! `serve` runs a simulated site behind real sockets (wire port +
//! admin port), pumping virtual time forward so subscriptions fire.
//! `bench` produces the throughput/latency curves committed as
//! `BENCH_serve.json`. `smoke` exercises the full serving path
//! in-process — query, subscribe/poll, shedding, admin, clean
//! shutdown — and prints `RESULT: PASS`.

use gridrm_global::{GlobalRequest, GlobalResponse, WireFrame};
use gridrm_serve::scheduler::SchedulerConfig;
use gridrm_serve::server::{admin_request, AdminServer, TcpServer};
use gridrm_serve::world::{client_identity, query_frame, ServeWorld};
use gridrm_serve::{bench, read_frame, write_frame};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("smoke") => cmd_smoke(),
        _ => {
            eprintln!("usage: gridrm-serve <serve|bench|smoke> [options]");
            eprintln!("  serve  --port 7227 --admin-port 7228 --hosts 8 [--duration-ms N]");
            eprintln!(
                "  bench  --clients 1,2,4,8,16 --duration-ms 2000 --hosts 8 --out BENCH_serve.json"
            );
            eprintln!("  smoke  (in-process end-to-end check, prints RESULT: PASS)");
            ExitCode::FAILURE
        }
    }
}

/// `--key value` lookup over the raw argument list.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn opt_u64(args: &[String], key: &str, default: u64) -> u64 {
    opt(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let port = opt_u64(args, "--port", 7227);
    let admin_port = opt_u64(args, "--admin-port", 7228);
    let hosts = opt_u64(args, "--hosts", 8) as usize;
    let duration_ms = opt_u64(args, "--duration-ms", 0);
    let world = ServeWorld::build(hosts);
    let server = match TcpServer::start(
        &format!("127.0.0.1:{port}"),
        world.service(),
        SchedulerConfig::default(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gridrm-serve: cannot bind wire port {port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let admin = match AdminServer::start(
        &format!("127.0.0.1:{admin_port}"),
        world.gateway.admin().clone(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gridrm-serve: cannot bind admin port {admin_port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "gridrm-serve: wire on {} admin on {} ({hosts} hosts, site 'serve')",
        server.local_addr(),
        admin.local_addr()
    );
    // Pump virtual time forward so standing subscriptions fire; each
    // wall-clock tick advances the world by the same amount.
    let tick = Duration::from_millis(100);
    let mut elapsed_ms = 0u64;
    loop {
        std::thread::sleep(tick);
        world.pump_once(tick.as_millis() as u64);
        elapsed_ms += tick.as_millis() as u64;
        if duration_ms > 0 && elapsed_ms >= duration_ms {
            break;
        }
    }
    let (accepted, shed, executed, closed) = server.stats().snapshot();
    server.stop();
    admin.stop();
    println!(
        "gridrm-serve: clean shutdown (accepted={accepted} shed={shed} executed={executed} closed_sources={closed})"
    );
    ExitCode::SUCCESS
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let clients: Vec<usize> = opt(args, "--clients")
        .unwrap_or("1,2,4,8,16")
        .split(',')
        .filter_map(|c| c.trim().parse().ok())
        .collect();
    let duration_ms = opt_u64(args, "--duration-ms", 2_000);
    let hosts = opt_u64(args, "--hosts", 8) as usize;
    let out = opt(args, "--out").unwrap_or("BENCH_serve.json");
    if clients.len() < 3 {
        eprintln!("gridrm-serve bench: need at least 3 client counts, got {clients:?}");
        return ExitCode::FAILURE;
    }
    println!("gridrm-serve bench: {clients:?} clients x {duration_ms}ms, {hosts} hosts");
    let report = bench::run(&clients, duration_ms, hosts);
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("gridrm-serve bench: cannot serialise report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out, format!("{json}\n")) {
        eprintln!("gridrm-serve bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("  wrote {out}");
    if report.result == "PASS" {
        println!("RESULT: PASS");
        ExitCode::SUCCESS
    } else {
        println!("RESULT: FAIL");
        ExitCode::FAILURE
    }
}

/// The in-process end-to-end check CI runs: every claim is asserted and
/// any failure aborts with a message instead of `RESULT: PASS`.
fn cmd_smoke() -> ExitCode {
    match smoke() {
        Ok(()) => {
            println!("RESULT: PASS");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("smoke FAILED: {e}");
            println!("RESULT: FAIL");
            ExitCode::FAILURE
        }
    }
}

fn smoke() -> Result<(), String> {
    let fail = |what: &str, detail: String| format!("{what}: {detail}");
    let world = ServeWorld::build(4);
    let server = TcpServer::start("127.0.0.1:0", world.service(), SchedulerConfig::default())
        .map_err(|e| fail("bind", e.to_string()))?;
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).map_err(|e| fail("connect", e.to_string()))?;
    let mut rpc = |frame: Vec<u8>| -> Result<GlobalResponse, String> {
        write_frame(&mut stream, &frame).map_err(|e| fail("write", e.to_string()))?;
        let bytes = read_frame(&mut stream)
            .map_err(|e| fail("read", e.to_string()))?
            .ok_or_else(|| "server closed mid-smoke".to_owned())?;
        WireFrame::decode::<GlobalResponse>(&bytes)
            .map(|(r, _)| r)
            .map_err(|e| fail("decode", e.to_string()))
    };

    // 1. Liveness.
    match rpc(WireFrame::encode(&GlobalRequest::Ping).into_bytes())? {
        GlobalResponse::Pong { gateway } if gateway == "gw-serve" => {
            println!("  ping: pong from gw-serve")
        }
        other => return Err(fail("ping", format!("{other:?}"))),
    }

    // 2. Real-time query, then a cached re-read.
    let source = world.source_url(0);
    let sql = "SELECT Hostname, Load1 FROM Processor";
    match rpc(query_frame(std::slice::from_ref(&source), sql, None))? {
        GlobalResponse::Rows { rows, .. } if !rows.rows.is_empty() => {
            println!("  query: {} rows (real-time)", rows.rows.len())
        }
        other => return Err(fail("query", format!("{other:?}"))),
    }
    match rpc(query_frame(
        std::slice::from_ref(&source),
        sql,
        Some(3_600_000),
    ))? {
        GlobalResponse::Rows {
            served_from_cache, ..
        } if served_from_cache > 0 => println!("  query: served from cache"),
        other => return Err(fail("cached query", format!("{other:?}"))),
    }

    // 3. Subscribe, pump virtual time, poll deltas, unsubscribe.
    let sub_frame = WireFrame::encode(&GlobalRequest::Subscribe {
        from_gateway: "wire-client".to_owned(),
        identity: client_identity(),
        sources: vec![source],
        sql: sql.to_owned(),
        every_ms: Some(1_000),
        buffer: None,
        backpressure: None,
    })
    .into_bytes();
    let sub = match rpc(sub_frame)? {
        GlobalResponse::Subscribed { subscription } => subscription,
        other => return Err(fail("subscribe", format!("{other:?}"))),
    };
    for _ in 0..3 {
        world.pump_once(1_000);
    }
    let deltas = match rpc(WireFrame::encode(&GlobalRequest::PollDeltas {
        subscription: sub,
        max: 0,
    })
    .into_bytes())?
    {
        GlobalResponse::Deltas { deltas } => deltas,
        other => return Err(fail("poll", format!("{other:?}"))),
    };
    if deltas.is_empty() {
        return Err("poll: no deltas after three pump cycles".to_owned());
    }
    println!("  subscribe: {} deltas after 3 pumps", deltas.len());
    match rpc(WireFrame::encode(&GlobalRequest::Unsubscribe { subscription: sub }).into_bytes())? {
        GlobalResponse::Unsubscribed { existed: true } => println!("  unsubscribe: ok"),
        other => return Err(fail("unsubscribe", format!("{other:?}"))),
    }

    // 4. Load shedding: a one-worker server with a slow service and a
    // queue bound of 4 must answer the tail of a 6-deep pipelined
    // burst with Overloaded (the worker needs 50ms per job, the burst
    // arrives in well under one, so at most one job leaves the queue
    // mid-burst: 4-5 served, 1-2 shed, never closed).
    let slow: Arc<dyn gridrm_global::FrameService> = Arc::new(|_from: &str, req: &[u8]| {
        std::thread::sleep(Duration::from_millis(50));
        match WireFrame::decode::<GlobalRequest>(req) {
            Ok(_) => WireFrame::encode(&GlobalResponse::Pong {
                gateway: "slow".to_owned(),
            })
            .into_bytes(),
            Err(e) => WireFrame::encode(&GlobalResponse::Error {
                message: e.to_string(),
            })
            .into_bytes(),
        }
    });
    let tiny = TcpServer::start(
        "127.0.0.1:0",
        slow,
        SchedulerConfig {
            workers: 1,
            queue_bound: 4,
            global_bound: 4_096,
            retry_after_ms: 25,
        },
    )
    .map_err(|e| fail("shed bind", e.to_string()))?;
    let mut burst =
        TcpStream::connect(tiny.local_addr()).map_err(|e| fail("shed connect", e.to_string()))?;
    let ping = WireFrame::encode(&GlobalRequest::Ping).into_bytes();
    let burst_n = 6;
    for _ in 0..burst_n {
        write_frame(&mut burst, &ping).map_err(|e| fail("shed write", e.to_string()))?;
    }
    let (mut pongs, mut shed) = (0, 0);
    for _ in 0..burst_n {
        let bytes = read_frame(&mut burst)
            .map_err(|e| fail("shed read", e.to_string()))?
            .ok_or_else(|| "shed: connection closed early".to_owned())?;
        match WireFrame::decode::<GlobalResponse>(&bytes)
            .map_err(|e| fail("shed decode", e.to_string()))?
            .0
        {
            GlobalResponse::Pong { .. } => pongs += 1,
            GlobalResponse::Overloaded { retry_after_ms, .. } => {
                if retry_after_ms != 25 {
                    return Err(fail("shed", format!("retry_after_ms = {retry_after_ms}")));
                }
                shed += 1;
            }
            other => return Err(fail("shed", format!("{other:?}"))),
        }
    }
    if pongs == 0 || shed == 0 {
        return Err(fail("shed", format!("pongs={pongs} shed={shed}")));
    }
    println!("  shedding: {pongs} served, {shed} Overloaded (in order)");
    tiny.stop();

    // 5. Admin port.
    let admin = AdminServer::start("127.0.0.1:0", world.gateway.admin().clone())
        .map_err(|e| fail("admin bind", e.to_string()))?;
    for path in ["/v1/health", "/v1/metrics", "/v1/sources"] {
        let (ok, _, body) = admin_request(admin.local_addr(), path)
            .map_err(|e| fail("admin request", e.to_string()))?;
        if !ok || body.is_empty() {
            return Err(fail(
                "admin",
                format!("{path} -> ok={ok} len={}", body.len()),
            ));
        }
    }
    let (ok, _, _) = admin_request(admin.local_addr(), "/v2/nope")
        .map_err(|e| fail("admin request", e.to_string()))?;
    if ok {
        return Err("admin: /v2/nope unexpectedly ok".to_owned());
    }
    println!("  admin: /v1/health /v1/metrics /v1/sources ok, /v2/nope NOTFOUND");

    // 6. Clean shutdown: stop() closes our connection and joins all
    // server threads.
    admin.stop();
    server.stop();
    let closed = write_frame(&mut stream, &ping)
        .and_then(|()| read_frame(&mut stream))
        .map(|r| r.is_none());
    if !matches!(closed, Ok(true) | Err(_)) {
        return Err("shutdown: connection still answering after stop".to_owned());
    }
    let (accepted, shed_total, executed, closed_sources) = server.stats().snapshot();
    println!(
        "  shutdown: clean (accepted={accepted} shed={shed_total} executed={executed} closed_sources={closed_sources})"
    );
    Ok(())
}
