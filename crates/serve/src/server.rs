//! Real sockets: the gateway wire protocol over TCP ([`TcpServer`]),
//! the plain-text admin port ([`AdminServer`]), and a production
//! [`Transport`] backed by both ([`TcpTransport`]).
//!
//! The TCP server is deliberately thin: it owns connection lifecycle
//! (accept, per-connection reader thread, shutdown) and nothing else.
//! Every frame it reads goes straight into the [`Scheduler`], which
//! owns ordering, fairness, and load shedding; every response payload
//! comes back through a write-half mutex so pipelined replies stay in
//! request order. The payload bytes on the socket are exactly the
//! bytes the simnet would have carried — the length prefix added by
//! [`crate::frame`] carries no semantics — so cost accounting agrees
//! across transports.

use crate::frame::{read_frame, write_frame};
use crate::scheduler::{Admission, Scheduler, SchedulerConfig, SchedulerStats};
use gridrm_core::{AdminInterface, AdminStatus};
use gridrm_global::transport::{FrameService, Transport, TransportError};
use gridrm_global::WireFrame;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// State shared between the accept thread, reader threads, and the
/// owning [`TcpServer`] handle. Threads hold this (never the server
/// handle itself), so dropping the handle can stop them.
struct Shared {
    scheduler: Arc<Scheduler>,
    stopping: AtomicBool,
    /// Shutdown clones of every live connection, so `stop` can unblock
    /// reader threads parked in `read`.
    conns: Mutex<Vec<TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    accepted: AtomicU64,
}

/// A wire-protocol server on a real TCP socket.
///
/// Frames are length-prefixed [`WireFrame`] payloads (see
/// [`crate::frame`]); each accepted connection becomes one scheduler
/// *source*, giving it a bounded queue, in-order responses, and a fair
/// share of the worker pool. Stop explicitly with [`TcpServer::stop`]
/// (also invoked on drop).
pub struct TcpServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
}

impl TcpServer {
    /// Bind `bind` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `service` behind a [`Scheduler`] built from `config`.
    pub fn start(
        bind: &str,
        service: Arc<dyn FrameService>,
        config: SchedulerConfig,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(bind)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            scheduler: Scheduler::start(config, service),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
        });
        let accept_shared = shared.clone();
        let accept_handle = std::thread::Builder::new()
            .name("gridrm-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(TcpServer {
            local_addr,
            shared,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Scheduler counters (accepted / shed / executed / closed sources).
    pub fn stats(&self) -> &SchedulerStats {
        self.shared.scheduler.stats()
    }

    /// Connections accepted since start.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Stop accepting, close every connection, drain the worker pool,
    /// and join all threads. Idempotent.
    pub fn stop(&self) {
        if self.shared.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection; the
        // loop re-checks `stopping` before handling it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.lock().take() {
            let _ = handle.join();
        }
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let readers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.readers.lock());
        for handle in readers {
            let _ = handle.join();
        }
        self.shared.scheduler.stop();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            // A failed accept (e.g. transient resource exhaustion) is
            // not fatal to the server; keep listening.
            Err(_) => continue,
        };
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        spawn_reader(shared, stream);
    }
}

/// One reader thread per connection: frames in, scheduler submissions
/// out. Responses are written by worker threads through a shared
/// write-half mutex (the scheduler already serialises them per source,
/// the mutex just keeps the byte stream intact).
fn spawn_reader(shared: &Arc<Shared>, stream: TcpStream) {
    // Request/response frames are small; Nagle's algorithm would add
    // delayed-ACK-sized stalls to every round trip.
    let _ = stream.set_nodelay(true);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_owned());
    let write_half = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    if let Ok(clone) = stream.try_clone() {
        shared.conns.lock().push(clone);
    }
    let scheduler = shared.scheduler.clone();
    let source = scheduler.source();
    let handle = std::thread::Builder::new()
        .name("gridrm-serve-conn".to_owned())
        .spawn(move || {
            let mut stream = stream;
            // A clean close (`Ok(None)`) or a read error both end the
            // connection; only a full frame keeps the loop going.
            while let Ok(Some(payload)) = read_frame(&mut stream) {
                let writer = write_half.clone();
                let admission = scheduler.submit(
                    &source,
                    &peer,
                    payload,
                    Box::new(move |response| {
                        let mut guard = writer.lock();
                        // A response to a gone client is dropped; the
                        // reader notices the closed socket separately.
                        let _ = write_frame(&mut *guard, &response);
                    }),
                );
                if admission == Admission::Closed {
                    break;
                }
            }
            let _ = stream.shutdown(Shutdown::Both);
        });
    if let Ok(handle) = handle {
        shared.readers.lock().push(handle);
    }
}

/// The versioned admin API on a TCP port, one request per line.
///
/// Protocol: the client sends a path (e.g. `/v1/health`) terminated by
/// a newline; the server answers with a header line
/// `<OK|NOTFOUND> <content-type> <body-bytes>` followed by exactly
/// `body-bytes` bytes of body. Connections persist across requests.
/// Dispatch goes through [`AdminInterface::handle`], so the TCP port
/// and in-process callers see identical payloads.
pub struct AdminServer {
    local_addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
}

impl AdminServer {
    /// Bind `bind` and serve `admin`'s versioned endpoints.
    pub fn start(bind: &str, admin: Arc<AdminInterface>) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(bind)?;
        let local_addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let workers = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stopping = stopping.clone();
            let conns = conns.clone();
            let workers = workers.clone();
            std::thread::Builder::new()
                .name("gridrm-admin-accept".to_owned())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stopping.load(Ordering::Acquire) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        let _ = stream.set_nodelay(true);
                        if let Ok(clone) = stream.try_clone() {
                            conns.lock().push(clone);
                        }
                        let admin = admin.clone();
                        let handle = std::thread::Builder::new()
                            .name("gridrm-admin-conn".to_owned())
                            .spawn(move || admin_conn(stream, &admin));
                        if let Ok(handle) = handle {
                            workers.lock().push(handle);
                        }
                    }
                })?
        };
        Ok(AdminServer {
            local_addr,
            stopping,
            conns,
            workers,
            accept_handle: Mutex::new(Some(accept)),
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, close connections, join threads. Idempotent.
    pub fn stop(&self) {
        if self.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.lock().take() {
            let _ = handle.join();
        }
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn admin_conn(stream: TcpStream, admin: &Arc<AdminInterface>) {
    let read_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let response = admin.handle(line.trim());
        let status = match response.status {
            AdminStatus::Ok => "OK",
            AdminStatus::NotFound => "NOTFOUND",
        };
        let header = format!(
            "{status} {} {}\n",
            response.content_type,
            response.body.len()
        );
        if stream.write_all(header.as_bytes()).is_err()
            || stream.write_all(response.body.as_bytes()).is_err()
            || stream.flush().is_err()
        {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// One admin request over a fresh connection: send `path`, parse the
/// header, read the body. The client half of the [`AdminServer`] line
/// protocol, shared by the CLI and the tests.
pub fn admin_request(addr: SocketAddr, path: &str) -> io::Result<(bool, String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.write_all(format!("{path}\n").as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let bad_header = || io::Error::new(io::ErrorKind::InvalidData, "bad admin header");
    let mut parts = header.trim_end().splitn(3, ' ');
    let status = parts.next().ok_or_else(bad_header)?.to_owned();
    let content_type = parts.next().ok_or_else(bad_header)?.to_owned();
    let len: usize = parts
        .next()
        .and_then(|n| n.parse().ok())
        .ok_or_else(bad_header)?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad_header())?;
    Ok((status == "OK", content_type, body))
}

/// The production [`Transport`]: every `serve` binds a real TCP socket
/// and every `send_frame` travels over a pooled client connection.
///
/// Logical wire addresses (`gw.site:gma`) map to socket addresses via
/// an internal route table: `serve` records the bound address
/// automatically, and [`TcpTransport::register_route`] adds peers that
/// live in other processes. Unlike the simnet this transport is *not*
/// deterministic — round-trip times are wall-clock — which is exactly
/// why the simnet remains the test transport (see `docs/serving.md`).
pub struct TcpTransport {
    config: SchedulerConfig,
    bind_host: String,
    routes: Mutex<HashMap<String, SocketAddr>>,
    servers: Mutex<HashMap<String, TcpServer>>,
    pool: Mutex<HashMap<String, TcpStream>>,
}

impl TcpTransport {
    /// A transport binding ephemeral ports on `127.0.0.1` whose servers
    /// use `config` for their schedulers.
    pub fn new(config: SchedulerConfig) -> Arc<TcpTransport> {
        TcpTransport::bound_to("127.0.0.1", config)
    }

    /// A transport binding ephemeral ports on `bind_host`.
    pub fn bound_to(bind_host: &str, config: SchedulerConfig) -> Arc<TcpTransport> {
        Arc::new(TcpTransport {
            config,
            bind_host: bind_host.to_owned(),
            routes: Mutex::new(HashMap::new()),
            servers: Mutex::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
        })
    }

    /// Map a logical wire address to a socket address (for peers served
    /// by another process).
    pub fn register_route(&self, logical: &str, addr: SocketAddr) {
        self.routes.lock().insert(logical.to_owned(), addr);
    }

    /// The socket address a logical wire address resolves to, if known.
    pub fn route(&self, logical: &str) -> Option<SocketAddr> {
        self.routes.lock().get(logical).copied()
    }

    /// Stop every server this transport started.
    pub fn stop_all(&self) {
        for (_, server) in self.servers.lock().drain() {
            server.stop();
        }
        self.pool.lock().clear();
    }

    fn exchange(stream: &mut TcpStream, payload: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(stream, payload)?;
        match read_frame(stream)? {
            Some(bytes) => Ok(bytes),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed before replying",
            )),
        }
    }
}

impl Transport for TcpTransport {
    fn serve(&self, addr: &str, service: Arc<dyn FrameService>) {
        let bind = format!("{}:0", self.bind_host);
        match TcpServer::start(&bind, service, self.config.clone()) {
            Ok(server) => {
                self.routes
                    .lock()
                    .insert(addr.to_owned(), server.local_addr());
                self.servers.lock().insert(addr.to_owned(), server);
            }
            // Transport::serve is infallible by contract (the simnet
            // cannot fail); a TCP bind failure leaves the route absent,
            // so sends to it surface "no route" errors.
            Err(e) => eprintln!("gridrm-serve: cannot serve '{addr}': {e}"),
        }
    }

    fn unserve(&self, addr: &str) -> bool {
        self.routes.lock().remove(addr);
        self.pool.lock().remove(addr);
        match self.servers.lock().remove(addr) {
            Some(server) => {
                server.stop();
                true
            }
            None => false,
        }
    }

    fn send_frame(
        &self,
        _src: &str,
        dst: &str,
        frame: &WireFrame,
    ) -> Result<(Vec<u8>, u64), TransportError> {
        let target = self
            .routes
            .lock()
            .get(dst)
            .copied()
            .ok_or_else(|| TransportError(format!("tcp {dst}: no route")))?;
        let started = Instant::now();
        // Reuse the pooled connection when one is idle; a stale pooled
        // connection (server restarted, idle timeout) falls through to
        // one fresh-connection retry.
        let mut reply = None;
        if let Some(mut stream) = self.pool.lock().remove(dst) {
            if let Ok(bytes) = TcpTransport::exchange(&mut stream, frame.bytes()) {
                reply = Some((stream, bytes));
            }
        }
        let (stream, bytes) = match reply {
            Some(got) => got,
            None => {
                let mut stream = TcpStream::connect(target)
                    .map_err(|e| TransportError(format!("tcp {dst}: {e}")))?;
                let _ = stream.set_nodelay(true);
                let bytes = TcpTransport::exchange(&mut stream, frame.bytes())
                    .map_err(|e| TransportError(format!("tcp {dst}: {e}")))?;
                (stream, bytes)
            }
        };
        self.pool.lock().insert(dst.to_owned(), stream);
        Ok((bytes, started.elapsed().as_micros() as u64))
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_global::{GlobalRequest, GlobalResponse};

    fn echo_service() -> Arc<dyn FrameService> {
        Arc::new(
            |_from: &str, req: &[u8]| match WireFrame::decode::<GlobalRequest>(req) {
                Ok((GlobalRequest::Ping, _)) => WireFrame::encode(&GlobalResponse::Pong {
                    gateway: "echo".to_owned(),
                })
                .into_bytes(),
                _ => WireFrame::encode(&GlobalResponse::Error {
                    message: "unexpected".to_owned(),
                })
                .into_bytes(),
            },
        )
    }

    #[test]
    fn tcp_round_trip_and_clean_stop() {
        let server =
            TcpServer::start("127.0.0.1:0", echo_service(), SchedulerConfig::default()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        for _ in 0..3 {
            let frame = WireFrame::encode(&GlobalRequest::Ping);
            write_frame(&mut stream, frame.bytes()).unwrap();
            let bytes = read_frame(&mut stream).unwrap().unwrap();
            let (resp, _) = WireFrame::decode::<GlobalResponse>(&bytes).unwrap();
            assert!(matches!(resp, GlobalResponse::Pong { .. }));
        }
        assert_eq!(server.connections_accepted(), 1);
        server.stop();
        server.stop(); // idempotent
                       // The old connection is dead after stop.
        let frame = WireFrame::encode(&GlobalRequest::Ping);
        let dead = write_frame(&mut stream, frame.bytes())
            .and_then(|()| read_frame(&mut stream))
            .map(|r| r.is_none());
        assert!(matches!(dead, Ok(true) | Err(_)));
    }

    #[test]
    fn tcp_transport_routes_and_pools() {
        let transport = TcpTransport::new(SchedulerConfig::default());
        transport.serve("gw.alpha:gma", echo_service());
        let frame = WireFrame::encode(&GlobalRequest::Ping);
        let (bytes, _rtt) = transport
            .send_frame("client", "gw.alpha:gma", &frame)
            .unwrap();
        let (resp, _) = WireFrame::decode::<GlobalResponse>(&bytes).unwrap();
        assert!(matches!(resp, GlobalResponse::Pong { .. }));
        // Second send reuses the pooled connection.
        let (bytes, _rtt) = transport
            .send_frame("client", "gw.alpha:gma", &frame)
            .unwrap();
        assert!(WireFrame::decode::<GlobalResponse>(&bytes).is_ok());
        let err = transport
            .send_frame("client", "gw.nowhere:gma", &frame)
            .unwrap_err();
        assert!(err.to_string().contains("no route"), "{err}");
        assert_eq!(transport.kind(), "tcp");
        assert!(transport.unserve("gw.alpha:gma"));
        assert!(!transport.unserve("gw.alpha:gma"));
        assert!(transport
            .send_frame("client", "gw.alpha:gma", &frame)
            .is_err());
    }

    #[test]
    fn admin_server_line_protocol() {
        use gridrm_core::{Gateway, GatewayConfig};
        use gridrm_simnet::{Network, SimClock};
        let net = Network::new(SimClock::new(), 7);
        let gateway = Gateway::new(GatewayConfig::new("gw-adm", "adm"), net);
        let server = AdminServer::start("127.0.0.1:0", gateway.admin().clone()).unwrap();
        let (ok, ct, body) = admin_request(server.local_addr(), "/v1/health").unwrap();
        assert!(ok);
        assert_eq!(ct, "application/json");
        assert!(serde_json::from_str::<serde_json::Value>(&body).is_ok());
        let (ok, _, _) = admin_request(server.local_addr(), "/v1/nope").unwrap();
        assert!(!ok);
        server.stop();
    }
}
