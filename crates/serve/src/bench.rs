//! The serving benchmark: cached-query throughput and latency curves
//! versus concurrent client count, against a real TCP socket.
//!
//! Every client is a closed loop — send one cached `Query` frame, wait
//! for the reply, repeat — so offered load scales with client count
//! and the curve shows where the worker pool saturates. The world's
//! virtual clock does **not** advance during a run: the warm-up query
//! leaves every source's cache at age zero, so `max_cache_age_ms`
//! always hits and the numbers measure the serving path (framing,
//! scheduling, dispatch, encode) rather than simulated agent RPCs.

use crate::frame::{read_frame, write_frame};
use crate::scheduler::SchedulerConfig;
use crate::server::TcpServer;
use crate::world::{query_frame, ServeWorld, SEED};
use gridrm_global::{GlobalResponse, WireFrame};
use serde::Serialize;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The SQL every bench client runs.
pub const BENCH_SQL: &str = "SELECT Hostname, NCpu, Load1 FROM Processor";

/// One point on the throughput/latency curve.
#[derive(Debug, Clone, Serialize)]
pub struct BenchPoint {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Completed request/response round trips.
    pub requests: u64,
    /// Responses that decoded as `Rows`.
    pub rows_responses: u64,
    /// Responses that decoded as `Overloaded` (shed by admission).
    pub shed_responses: u64,
    /// Wire or decode errors.
    pub errors: u64,
    /// Round trips per wall-clock second.
    pub qps: f64,
    /// Median round-trip latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile round-trip latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile round-trip latency, microseconds.
    pub p99_us: u64,
    /// Worst observed round trip, microseconds.
    pub max_us: u64,
}

/// The full benchmark report (serialised to `BENCH_serve.json`).
#[derive(Debug, Serialize)]
pub struct BenchReport {
    /// Report format tag.
    pub experiment: &'static str,
    /// Latency unit used by the percentile fields.
    pub unit: &'static str,
    /// World seed (the simulated site is reproducible even though
    /// wall-clock timings are not).
    pub seed: u64,
    /// Hosts in the simulated site.
    pub hosts: usize,
    /// Scheduler worker threads serving the socket.
    pub workers: usize,
    /// Wall-clock measurement window per point, milliseconds.
    pub duration_ms: u64,
    /// SQL each client ran.
    pub sql: &'static str,
    /// One point per client count, ascending.
    pub curves: Vec<BenchPoint>,
    /// `PASS` when every point completed round trips without errors.
    pub result: String,
}

/// Run the curve: for each entry in `client_counts`, hammer a fresh
/// [`TcpServer`] with that many closed-loop clients for `duration_ms`.
pub fn run(client_counts: &[usize], duration_ms: u64, hosts: usize) -> BenchReport {
    let world = ServeWorld::build(hosts);
    // Warm every source's cache once over the simnet path; virtual time
    // then stands still, so cached reads always hit.
    let service = world.service();
    for n in 0..hosts {
        let reply = service.handle_frame(
            "warmup",
            &query_frame(&[world.source_url(n)], BENCH_SQL, None),
        );
        if !matches!(
            WireFrame::decode::<GlobalResponse>(&reply),
            Ok((GlobalResponse::Rows { .. }, _))
        ) {
            eprintln!("warmup query against source {n} did not return rows");
        }
    }
    let config = SchedulerConfig::default();
    let workers = config.workers;
    let mut curves = Vec::with_capacity(client_counts.len());
    for &clients in client_counts {
        match measure_point(&world, config.clone(), clients, duration_ms, hosts) {
            Ok(point) => {
                println!(
                    "  clients={:>3}  qps={:>9.0}  p50={:>6}us  p95={:>6}us  p99={:>6}us  shed={}  errors={}",
                    point.clients,
                    point.qps,
                    point.p50_us,
                    point.p95_us,
                    point.p99_us,
                    point.shed_responses,
                    point.errors
                );
                curves.push(point);
            }
            Err(e) => eprintln!("  clients={clients}: bench point failed: {e}"),
        }
    }
    let pass = curves.len() == client_counts.len()
        && curves.iter().all(|p| p.requests > 0 && p.errors == 0);
    BenchReport {
        experiment: "serve_tcp",
        unit: "wall_us",
        seed: SEED,
        hosts,
        workers,
        duration_ms,
        sql: BENCH_SQL,
        curves,
        result: if pass { "PASS" } else { "FAIL" }.to_owned(),
    }
}

fn measure_point(
    world: &ServeWorld,
    config: SchedulerConfig,
    clients: usize,
    duration_ms: u64,
    hosts: usize,
) -> std::io::Result<BenchPoint> {
    let server = TcpServer::start("127.0.0.1:0", world.service(), config)?;
    let addr = server.local_addr();
    let deadline = Instant::now() + Duration::from_millis(duration_ms);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let source = world.source_url(c % hosts);
        let handle = std::thread::Builder::new()
            .name(format!("bench-client-{c}"))
            .spawn(move || client_loop(addr, &source, deadline))?;
        handles.push(handle);
    }
    let mut latencies_us: Vec<u64> = Vec::new();
    let (mut rows, mut shed, mut errors) = (0u64, 0u64, 0u64);
    for handle in handles {
        if let Ok(sample) = handle.join() {
            latencies_us.extend(sample.latencies_us);
            rows += sample.rows;
            shed += sample.shed;
            errors += sample.errors;
        } else {
            errors += 1;
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    server.stop();
    latencies_us.sort_unstable();
    let requests = latencies_us.len() as u64;
    Ok(BenchPoint {
        clients,
        requests,
        rows_responses: rows,
        shed_responses: shed,
        errors,
        qps: requests as f64 / elapsed,
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        p99_us: percentile(&latencies_us, 0.99),
        max_us: latencies_us.last().copied().unwrap_or(0),
    })
}

struct ClientSample {
    latencies_us: Vec<u64>,
    rows: u64,
    shed: u64,
    errors: u64,
}

fn client_loop(addr: std::net::SocketAddr, source: &str, deadline: Instant) -> ClientSample {
    let mut sample = ClientSample {
        latencies_us: Vec::new(),
        rows: 0,
        shed: 0,
        errors: 0,
    };
    let Ok(mut stream) = TcpStream::connect(addr) else {
        sample.errors += 1;
        return sample;
    };
    let _ = stream.set_nodelay(true);
    let frame = query_frame(&[source.to_owned()], BENCH_SQL, Some(3_600_000));
    while Instant::now() < deadline {
        let sent = Instant::now();
        let reply = write_frame(&mut stream, &frame).and_then(|()| read_frame(&mut stream));
        let bytes = match reply {
            Ok(Some(bytes)) => bytes,
            _ => {
                sample.errors += 1;
                break;
            }
        };
        sample.latencies_us.push(sent.elapsed().as_micros() as u64);
        match WireFrame::decode::<GlobalResponse>(&bytes) {
            Ok((GlobalResponse::Rows { .. }, _)) => sample.rows += 1,
            Ok((GlobalResponse::Overloaded { .. }, _)) => sample.shed += 1,
            _ => sample.errors += 1,
        }
    }
    sample
}

/// Nearest-rank percentile of an ascending-sorted sample (0 if empty).
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.50), 51);
        assert_eq!(percentile(&s, 0.95), 95);
        assert_eq!(percentile(&s, 0.99), 99);
        assert_eq!(percentile(&s, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn tiny_bench_point_completes() {
        let report = run(&[2], 150, 2);
        assert_eq!(report.curves.len(), 1);
        assert!(report.curves[0].requests > 0);
        assert_eq!(report.result, "PASS", "{report:?}");
    }
}
