//! The worker-pool scheduler: bounded per-source request queues with
//! admission control and FIFO load shedding.
//!
//! Every connection (a *source*) owns a bounded queue of decoded-enough
//! work items. Admission happens in the reader thread: a request that
//! would overflow its source's queue — or the global pending cap — is
//! *shed*: a pre-answered `Overloaded` reply is queued in its place, so
//! the client still receives responses strictly in request order and
//! learns the backpressure signal instead of hanging. A source that
//! keeps pumping requests while saturated (a full queue of shed markers
//! on top of a full queue of work) is closed outright.
//!
//! Execution is **serial per source, parallel across sources**: a
//! worker holds at most one token per source, processes one job, and
//! re-enqueues the token only while work remains. That guarantees
//! responses leave in request order without tagging frames, and gives
//! round-robin fairness between connections under load.

use crossbeam::channel::{unbounded, Receiver, Sender};
use gridrm_global::transport::FrameService;
use gridrm_global::{GlobalResponse, WireFrame};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Scheduler sizing and shedding knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Executable requests a single source may have queued.
    pub queue_bound: usize,
    /// Executable requests queued across all sources before global
    /// shedding kicks in.
    pub global_bound: usize,
    /// Backoff hint carried in `Overloaded` replies (wall-clock ms).
    pub retry_after_ms: u64,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_bound: 64,
            global_bound: 4_096,
            retry_after_ms: 50,
        }
    }
}

/// Monotonic scheduler counters (all totals since start).
#[derive(Debug, Default)]
pub struct SchedulerStats {
    /// Requests admitted for execution.
    pub accepted: AtomicU64,
    /// Requests shed with an `Overloaded` reply.
    pub shed: AtomicU64,
    /// Requests whose execution finished.
    pub executed: AtomicU64,
    /// Sources closed for flooding past the shed allowance.
    pub closed_sources: AtomicU64,
}

impl SchedulerStats {
    /// `(accepted, shed, executed, closed_sources)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.accepted.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.executed.load(Ordering::Relaxed),
            self.closed_sources.load(Ordering::Relaxed),
        )
    }
}

/// What [`Scheduler::submit`] decided about one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued for execution.
    Accepted,
    /// Shed: an `Overloaded` reply was queued in request order.
    Shed,
    /// The source exhausted its shed allowance (or the scheduler is
    /// stopping): the caller must drop the connection.
    Closed,
}

enum JobKind {
    Execute(Vec<u8>),
    Shed { queue_depth: u64 },
}

struct Job {
    from: String,
    kind: JobKind,
    respond: Box<dyn FnOnce(Vec<u8>) + Send>,
}

#[derive(Default)]
struct SourceInner {
    queue: VecDeque<Job>,
    /// Executable (non-shed) jobs currently queued.
    executable: usize,
    /// Shed markers currently queued.
    shed_pending: usize,
    /// A worker token for this source is in flight.
    active: bool,
}

/// One connection's scheduling state. Obtain via [`Scheduler::source`].
pub struct SourceQueue {
    inner: Mutex<SourceInner>,
}

/// The worker-pool scheduler.
pub struct Scheduler {
    config: SchedulerConfig,
    service: Arc<dyn FrameService>,
    tx: Mutex<Option<Sender<Arc<SourceQueue>>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Executable jobs queued across all sources.
    pending: AtomicUsize,
    stopping: AtomicBool,
    stats: SchedulerStats,
}

impl Scheduler {
    /// Start `config.workers` worker threads dispatching into `service`.
    pub fn start(config: SchedulerConfig, service: Arc<dyn FrameService>) -> Arc<Scheduler> {
        let (tx, rx) = unbounded::<Arc<SourceQueue>>();
        let scheduler = Arc::new(Scheduler {
            config: SchedulerConfig {
                workers: config.workers.max(1),
                queue_bound: config.queue_bound.max(1),
                global_bound: config.global_bound.max(1),
                ..config
            },
            service,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(Vec::new()),
            pending: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            stats: SchedulerStats::default(),
        });
        let mut handles = Vec::with_capacity(scheduler.config.workers);
        for i in 0..scheduler.config.workers {
            let me = scheduler.clone();
            let rx: Receiver<Arc<SourceQueue>> = rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("gridrm-serve-worker-{i}"))
                .spawn(move || me.worker_loop(&rx));
            match handle {
                Ok(h) => handles.push(h),
                // Thread spawn failing at startup leaves a smaller pool;
                // the scheduler still functions with >= 1 worker.
                Err(_) => continue,
            }
        }
        *scheduler.workers.lock() = handles;
        scheduler
    }

    /// A fresh per-source queue (one per accepted connection).
    pub fn source(&self) -> Arc<SourceQueue> {
        Arc::new(SourceQueue {
            inner: Mutex::new(SourceInner::default()),
        })
    }

    /// Counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Submit one request frame from `source`. `respond` is invoked
    /// exactly once with the response payload — in request order
    /// relative to every other submission from the same source — unless
    /// the return value is [`Admission::Closed`], in which case it is
    /// never invoked and the connection must be dropped.
    pub fn submit(
        &self,
        source: &Arc<SourceQueue>,
        from: &str,
        payload: Vec<u8>,
        respond: Box<dyn FnOnce(Vec<u8>) + Send>,
    ) -> Admission {
        if self.stopping.load(Ordering::Acquire) {
            return Admission::Closed;
        }
        let mut inner = source.inner.lock();
        let depth = inner.executable;
        let over_source = depth >= self.config.queue_bound;
        let over_global = self.pending.load(Ordering::Relaxed) >= self.config.global_bound;
        let admission = if over_source || over_global {
            if inner.shed_pending >= self.config.queue_bound {
                // Flooding past the shed allowance: close instead of
                // queueing unbounded markers.
                self.stats.closed_sources.fetch_add(1, Ordering::Relaxed);
                return Admission::Closed;
            }
            inner.queue.push_back(Job {
                from: from.to_owned(),
                kind: JobKind::Shed {
                    queue_depth: depth as u64,
                },
                respond,
            });
            inner.shed_pending += 1;
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            Admission::Shed
        } else {
            inner.queue.push_back(Job {
                from: from.to_owned(),
                kind: JobKind::Execute(payload),
                respond,
            });
            inner.executable += 1;
            self.pending.fetch_add(1, Ordering::Relaxed);
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            Admission::Accepted
        };
        let needs_token = !inner.active;
        if needs_token {
            inner.active = true;
        }
        drop(inner);
        if needs_token {
            self.enqueue_token(source);
        }
        admission
    }

    fn enqueue_token(&self, source: &Arc<SourceQueue>) {
        let tx = self.tx.lock();
        if let Some(tx) = tx.as_ref() {
            // A send can only fail once every worker is gone, i.e.
            // during shutdown; pending responses are dropped with the
            // connections then.
            let _ = tx.send(source.clone());
        }
    }

    fn worker_loop(&self, rx: &Receiver<Arc<SourceQueue>>) {
        while let Ok(source) = rx.recv() {
            // Holding the token makes this worker the only executor for
            // this source until the token is released: per-source FIFO.
            let job = {
                let mut inner = source.inner.lock();
                match inner.queue.pop_front() {
                    Some(job) => {
                        match &job.kind {
                            JobKind::Execute(_) => {
                                inner.executable = inner.executable.saturating_sub(1);
                                self.pending.fetch_sub(1, Ordering::Relaxed);
                            }
                            JobKind::Shed { .. } => {
                                inner.shed_pending = inner.shed_pending.saturating_sub(1);
                            }
                        }
                        job
                    }
                    None => {
                        inner.active = false;
                        continue;
                    }
                }
            };
            let response = match job.kind {
                JobKind::Execute(payload) => {
                    let resp = self.service.handle_frame(&job.from, &payload);
                    self.stats.executed.fetch_add(1, Ordering::Relaxed);
                    resp
                }
                JobKind::Shed { queue_depth } => WireFrame::encode(&GlobalResponse::Overloaded {
                    queue_depth,
                    retry_after_ms: self.config.retry_after_ms,
                })
                .into_bytes(),
            };
            (job.respond)(response);
            // Release or re-arm the token under the lock, so a submit
            // racing with this check cannot strand queued work.
            let rearm = {
                let mut inner = source.inner.lock();
                if inner.queue.is_empty() {
                    inner.active = false;
                    false
                } else {
                    true
                }
            };
            if rearm {
                self.enqueue_token(&source);
            }
        }
    }

    /// Stop accepting work, drain what is queued, and join the workers.
    /// Idempotent.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::Release);
        // Dropping the sender lets workers drain the channel then exit.
        self.tx.lock().take();
        let handles = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded as chan;
    use gridrm_global::GlobalRequest;

    fn echo() -> Arc<dyn FrameService> {
        Arc::new(|_: &str, frame: &[u8]| frame.to_vec())
    }

    type Respond = Box<dyn FnOnce(Vec<u8>) + Send>;

    fn collect_responses() -> (impl Fn() -> Respond, Receiver<Vec<u8>>) {
        let (tx, rx) = chan::<Vec<u8>>();
        let factory = move || {
            let tx = tx.clone();
            let f: Respond = Box::new(move |resp| {
                let _ = tx.send(resp);
            });
            f
        };
        (factory, rx)
    }

    #[test]
    fn executes_in_order_per_source() {
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 4,
                ..SchedulerConfig::default()
            },
            echo(),
        );
        let source = sched.source();
        let (respond, rx) = collect_responses();
        for i in 0..50u32 {
            let adm = sched.submit(&source, "t", i.to_be_bytes().to_vec(), respond());
            assert_eq!(adm, Admission::Accepted);
        }
        let mut got = Vec::new();
        for _ in 0..50 {
            got.push(rx.recv().unwrap());
        }
        let expect: Vec<Vec<u8>> = (0..50u32).map(|i| i.to_be_bytes().to_vec()).collect();
        assert_eq!(got, expect, "per-source FIFO violated");
        sched.stop();
        assert_eq!(sched.stats().snapshot().2, 50);
    }

    #[test]
    fn sheds_over_queue_bound_in_order() {
        // One slow job occupies the only worker; the queue bound is 2,
        // so submissions 4.. shed — and their Overloaded replies arrive
        // *after* the accepted jobs' replies.
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock();
        let slow_gate = gate.clone();
        let service: Arc<dyn FrameService> = Arc::new(move |_: &str, frame: &[u8]| {
            drop(slow_gate.lock());
            frame.to_vec()
        });
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                queue_bound: 2,
                ..SchedulerConfig::default()
            },
            service,
        );
        let source = sched.source();
        let (respond, rx) = collect_responses();
        // First submission starts executing (and blocks on the gate);
        // give the worker a moment to take it off the queue.
        assert_eq!(
            sched.submit(&source, "t", b"a".to_vec(), respond()),
            Admission::Accepted
        );
        while sched.stats().snapshot().0 - sched.stats().snapshot().2 > 0
            && source.inner.lock().executable > 0
        {
            std::thread::yield_now();
        }
        assert_eq!(
            sched.submit(&source, "t", b"b".to_vec(), respond()),
            Admission::Accepted
        );
        assert_eq!(
            sched.submit(&source, "t", b"c".to_vec(), respond()),
            Admission::Accepted
        );
        let adm = sched.submit(&source, "t", b"d".to_vec(), respond());
        assert_eq!(adm, Admission::Shed);
        drop(guard); // let the worker run
        let mut bodies = Vec::new();
        for _ in 0..4 {
            bodies.push(rx.recv().unwrap());
        }
        assert_eq!(bodies[0], b"a".to_vec());
        assert_eq!(bodies[1], b"b".to_vec());
        assert_eq!(bodies[2], b"c".to_vec());
        // The shed reply came last and is a decodable Overloaded frame.
        match WireFrame::decode::<GlobalResponse>(&bodies[3]) {
            Ok((GlobalResponse::Overloaded { retry_after_ms, .. }, _)) => {
                assert!(retry_after_ms > 0);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        sched.stop();
    }

    #[test]
    fn flooding_source_is_closed() {
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock();
        let slow_gate = gate.clone();
        let service: Arc<dyn FrameService> = Arc::new(move |_: &str, frame: &[u8]| {
            drop(slow_gate.lock());
            frame.to_vec()
        });
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                queue_bound: 2,
                ..SchedulerConfig::default()
            },
            service,
        );
        let source = sched.source();
        let (respond, _rx) = collect_responses();
        let mut decisions = Vec::new();
        for _ in 0..16 {
            decisions.push(sched.submit(&source, "t", b"x".to_vec(), respond()));
        }
        assert!(decisions.contains(&Admission::Shed));
        assert_eq!(decisions.last(), Some(&Admission::Closed));
        assert!(sched.stats().snapshot().3 >= 1);
        drop(guard);
        sched.stop();
    }

    #[test]
    fn parallel_across_sources() {
        // With 4 workers and 4 sources, all four slow jobs must overlap:
        // a barrier that only opens when all 4 arrive would deadlock
        // under serial execution.
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let b = barrier.clone();
        let service: Arc<dyn FrameService> = Arc::new(move |_: &str, frame: &[u8]| {
            b.wait();
            frame.to_vec()
        });
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 4,
                ..SchedulerConfig::default()
            },
            service,
        );
        let (respond, rx) = collect_responses();
        for _ in 0..4 {
            let source = sched.source();
            assert_eq!(
                sched.submit(&source, "t", b"x".to_vec(), respond()),
                Admission::Accepted
            );
        }
        for _ in 0..4 {
            assert_eq!(rx.recv().unwrap(), b"x".to_vec());
        }
        sched.stop();
    }

    #[test]
    fn stop_is_idempotent_and_rejects_new_work() {
        let sched = Scheduler::start(SchedulerConfig::default(), echo());
        let source = sched.source();
        sched.stop();
        sched.stop();
        let (respond, _rx) = collect_responses();
        assert_eq!(
            sched.submit(&source, "t", b"x".to_vec(), respond()),
            Admission::Closed
        );
        // Shed replies decode as the wire protocol's Overloaded.
        let frame = WireFrame::encode(&GlobalRequest::Ping);
        assert!(!frame.is_empty());
    }
}
