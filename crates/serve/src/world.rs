//! The served world: one simulated site whose gateway answers over
//! real sockets.
//!
//! The grid itself stays simulated (agents, drivers, the simnet, the
//! virtual clock) so server behaviour is reproducible; only the serving
//! edge is real TCP. The TCP server dispatches into
//! [`GlobalLayer::wire_service`] — the *identical* decode → execute →
//! encode → cost-charge path the simnet endpoint uses — so a frame
//! over a socket and a frame over the simnet produce the same answer
//! and the same ledger charges.

use gridrm_agents::{deploy_site, SiteAgents};
use gridrm_core::{Gateway, GatewayConfig};
use gridrm_drivers::install_into_gateway;
use gridrm_global::transport::FrameService;
use gridrm_global::{GlobalLayer, GlobalRequest, GmaDirectory, WireFrame, WireIdentity};
use gridrm_resmodel::{SiteModel, SiteSpec};
use gridrm_simnet::{Network, SimClock};
use std::sync::Arc;

/// Fixed seed: the served world is as reproducible as the experiments.
pub const SEED: u64 = 0x6721d;

/// A single simulated site with the Global layer attached, ready to be
/// fronted by a [`crate::server::TcpServer`].
pub struct ServeWorld {
    /// The simulated network.
    pub net: Arc<Network>,
    /// The resource model.
    pub site: Arc<SiteModel>,
    /// Deployed agents.
    pub agents: SiteAgents,
    /// The gateway (standard drivers installed).
    pub gateway: Arc<Gateway>,
    /// The GMA directory (single entry: this gateway).
    pub directory: Arc<GmaDirectory>,
    /// The Global-layer attachment whose wire service the TCP server
    /// dispatches into.
    pub layer: Arc<GlobalLayer>,
}

impl ServeWorld {
    /// Build a site named `serve` with `hosts` nodes, advanced to ten
    /// virtual minutes so metrics and history are populated.
    pub fn build(hosts: usize) -> ServeWorld {
        let net = Network::new(SimClock::new(), SEED);
        let site = SiteModel::generate(SEED, &SiteSpec::new("serve", hosts, 4));
        site.advance_to(600_000);
        let agents = deploy_site(&net, site.clone());
        let gateway = Gateway::new(GatewayConfig::new("gw-serve", "serve"), net.clone());
        install_into_gateway(&gateway);
        let directory = GmaDirectory::new();
        let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
        ServeWorld {
            net,
            site,
            agents,
            gateway,
            directory,
            layer,
        }
    }

    /// The frame service a TCP server should dispatch into.
    pub fn service(&self) -> Arc<dyn FrameService> {
        self.layer.wire_service()
    }

    /// Advance virtual time by `ms` and run one gateway pump cycle
    /// (subscriptions fire, agents push). Returns deltas produced.
    pub fn pump_once(&self, ms: u64) -> usize {
        self.net.clock().advance(ms);
        self.site.advance_to(self.net.clock().now_millis());
        self.agents.pump();
        self.gateway.pump()
    }

    /// The data-source URL of host `n` (`jdbc:snmp://nodeNN.serve/public`).
    pub fn source_url(&self, n: usize) -> String {
        format!("jdbc:snmp://node{n:02}.serve/public")
    }
}

/// An encoded `GlobalRequest::Query` frame, as a wire client would
/// produce it. `max_cache_age_ms: Some(..)` asks the gateway to serve
/// from cache when fresh enough.
pub fn query_frame(sources: &[String], sql: &str, max_cache_age_ms: Option<u64>) -> Vec<u8> {
    WireFrame::encode(&GlobalRequest::Query {
        from_gateway: "wire-client".to_owned(),
        identity: client_identity(),
        sources: sources.to_vec(),
        sql: sql.to_owned(),
        max_cache_age_ms,
        trace: None,
        deadline_ms: None,
    })
    .into_bytes()
}

/// The identity wire clients present.
pub fn client_identity() -> WireIdentity {
    WireIdentity {
        name: "wire-client".to_owned(),
        roles: vec!["admin".to_owned()],
    }
}
