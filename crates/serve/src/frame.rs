//! Length-prefixed framing over byte streams: `u32` big-endian payload
//! length, then the payload — the TCP encoding of a
//! [`WireFrame`](gridrm_global::WireFrame). The prefix carries *no*
//! semantics beyond delimiting; the payload bytes are exactly what the
//! simnet would have carried, so cost accounting (which prices payload
//! bytes) agrees across transports.

use std::io::{self, Read, Write};

/// Refuse frames larger than this (16 MiB): a corrupt or hostile length
/// prefix must not make the server allocate unbounded memory.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds {MAX_FRAME_BYTES}", payload.len()),
        ));
    }
    // One buffer, one write: a prefix written separately from its
    // payload tickles Nagle/delayed-ACK stalls on real sockets.
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean close (EOF exactly at
/// a frame boundary); a close mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        // xlint: allow(hot-path-panic) -- the loop condition guarantees filled < len_buf.len()
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-length-prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"world"[..]));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_write_rejected() {
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut out = Vec::new();
        assert!(write_frame(&mut out, &huge).is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // length prefix + 2 payload bytes
        let mut r = Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
        // EOF mid-prefix is also an error, not a clean close.
        let mut r = Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut r).is_err());
    }
}
