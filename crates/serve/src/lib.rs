//! Real-socket serving: the gateway wire protocol over TCP.
//!
//! Everything below the serving edge — agents, drivers, caches, the
//! Global layer — already speaks [`WireFrame`](gridrm_global::WireFrame)
//! through the [`Transport`](gridrm_global::Transport) API, with the
//! deterministic simnet as the test transport. This crate supplies the
//! production side of that API:
//!
//! - [`frame`]: length-prefixed framing over byte streams — `u32`
//!   big-endian length, then the exact payload the simnet would carry.
//! - [`scheduler`]: a worker pool with bounded per-source queues,
//!   admission control, and FIFO load shedding (`Overloaded` replies in
//!   request order; flooding sources are closed).
//! - [`server`]: [`TcpServer`] (wire protocol), [`AdminServer`]
//!   (versioned plain-text admin endpoints), and [`TcpTransport`] — a
//!   real-socket [`Transport`](gridrm_global::Transport) implementation.
//! - [`world`]: the served world — a simulated site fronted by real
//!   sockets, dispatching into the gateway's canonical wire service.
//! - [`mod@bench`]: closed-loop throughput/latency curves vs client count
//!   (`BENCH_serve.json`).
//!
//! See `docs/serving.md` for the design and the determinism story.

#![warn(missing_docs)]

pub mod bench;
pub mod frame;
pub mod scheduler;
pub mod server;
pub mod world;

pub use frame::{read_frame, write_frame, MAX_FRAME_BYTES};
pub use scheduler::{Admission, Scheduler, SchedulerConfig, SchedulerStats, SourceQueue};
pub use server::{admin_request, AdminServer, TcpServer, TcpTransport};
pub use world::{client_identity, query_frame, ServeWorld, SEED};
