//! Loopback TCP smoke: the full serving path over real sockets —
//! query, cached re-read, subscribe/poll-deltas, in-order shedding,
//! the admin port, and clean shutdown.

use gridrm_global::transport::FrameService;
use gridrm_global::{GlobalRequest, GlobalResponse, WireFrame};
use gridrm_serve::scheduler::SchedulerConfig;
use gridrm_serve::server::{admin_request, AdminServer, TcpServer};
use gridrm_serve::world::{client_identity, query_frame, ServeWorld};
use gridrm_serve::{read_frame, write_frame};
use parking_lot::Mutex;
use std::net::TcpStream;
use std::sync::Arc;

fn rpc(stream: &mut TcpStream, frame: &[u8]) -> GlobalResponse {
    write_frame(stream, frame).expect("write frame");
    let bytes = read_frame(stream).expect("read frame").expect("open");
    WireFrame::decode::<GlobalResponse>(&bytes)
        .expect("decode")
        .0
}

#[test]
fn query_and_cached_read_over_tcp() {
    let world = ServeWorld::build(3);
    let server =
        TcpServer::start("127.0.0.1:0", world.service(), SchedulerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    match rpc(
        &mut stream,
        &WireFrame::encode(&GlobalRequest::Ping).into_bytes(),
    ) {
        GlobalResponse::Pong { gateway } => assert_eq!(gateway, "gw-serve"),
        other => panic!("expected pong, got {other:?}"),
    }

    let sources = vec![world.source_url(0), world.source_url(1)];
    let sql = "SELECT Hostname, Load1 FROM Processor ORDER BY Hostname";
    match rpc(&mut stream, &query_frame(&sources, sql, None)) {
        GlobalResponse::Rows { rows, .. } => assert_eq!(rows.rows.len(), 2),
        other => panic!("expected rows, got {other:?}"),
    }
    // Re-read within the cache window: served_from_cache covers both
    // sources, and the row payload matches the real-time read.
    match rpc(&mut stream, &query_frame(&sources, sql, Some(60_000))) {
        GlobalResponse::Rows {
            rows,
            served_from_cache,
            ..
        } => {
            assert_eq!(served_from_cache, 2);
            assert_eq!(rows.rows.len(), 2);
        }
        other => panic!("expected cached rows, got {other:?}"),
    }
    server.stop();
}

#[test]
fn subscribe_and_poll_deltas_over_tcp() {
    let world = ServeWorld::build(2);
    let server =
        TcpServer::start("127.0.0.1:0", world.service(), SchedulerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    let sub_frame = WireFrame::encode(&GlobalRequest::Subscribe {
        from_gateway: "wire-client".to_owned(),
        identity: client_identity(),
        sources: vec![world.source_url(0)],
        sql: "SELECT Hostname, Load1 FROM Processor".to_owned(),
        every_ms: Some(1_000),
        buffer: None,
        backpressure: None,
    })
    .into_bytes();
    let subscription = match rpc(&mut stream, &sub_frame) {
        GlobalResponse::Subscribed { subscription } => subscription,
        other => panic!("expected subscribed, got {other:?}"),
    };

    for _ in 0..3 {
        world.pump_once(1_000);
    }
    let poll = WireFrame::encode(&GlobalRequest::PollDeltas {
        subscription,
        max: 0,
    })
    .into_bytes();
    match rpc(&mut stream, &poll) {
        GlobalResponse::Deltas { deltas } => assert!(!deltas.is_empty()),
        other => panic!("expected deltas, got {other:?}"),
    }

    let bye = WireFrame::encode(&GlobalRequest::Unsubscribe { subscription }).into_bytes();
    match rpc(&mut stream, &bye) {
        GlobalResponse::Unsubscribed { existed } => assert!(existed),
        other => panic!("expected unsubscribed, got {other:?}"),
    }
    server.stop();
}

/// A pipelined burst against a gate-blocked single worker: the queue
/// absorbs its bound, the rest answer `Overloaded`, and every response
/// arrives in request order (the shed markers ride the same queue).
#[test]
fn pipelined_burst_sheds_in_order() {
    let gate = Arc::new(Mutex::new(()));
    let held = gate.lock();
    let service: Arc<dyn FrameService> = {
        let gate = gate.clone();
        Arc::new(move |_from: &str, _req: &[u8]| {
            drop(gate.lock());
            WireFrame::encode(&GlobalResponse::Pong {
                gateway: "gated".to_owned(),
            })
            .into_bytes()
        })
    };
    let server = TcpServer::start(
        "127.0.0.1:0",
        service,
        SchedulerConfig {
            workers: 1,
            queue_bound: 3,
            global_bound: 4_096,
            retry_after_ms: 40,
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // The worker can pop at most one job before blocking on the gate,
    // so a 5-deep burst queues 3-4 executables and sheds the rest —
    // never enough markers to close the source.
    let ping = WireFrame::encode(&GlobalRequest::Ping).into_bytes();
    for _ in 0..5 {
        write_frame(&mut stream, &ping).unwrap();
    }
    drop(held);

    let mut kinds = Vec::new();
    for _ in 0..5 {
        let bytes = read_frame(&mut stream).unwrap().expect("open");
        match WireFrame::decode::<GlobalResponse>(&bytes).unwrap().0 {
            GlobalResponse::Pong { .. } => kinds.push("pong"),
            GlobalResponse::Overloaded {
                queue_depth,
                retry_after_ms,
            } => {
                assert_eq!(retry_after_ms, 40);
                assert!(queue_depth >= 3, "queue_depth = {queue_depth}");
                kinds.push("shed");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let pongs = kinds.iter().filter(|k| **k == "pong").count();
    assert!((3..=4).contains(&pongs), "{kinds:?}");
    // Responses stay in request order: accepted work first, then the
    // shed tail.
    assert_eq!(kinds.last().copied(), Some("shed"), "{kinds:?}");
    assert!(kinds[..pongs].iter().all(|k| *k == "pong"), "{kinds:?}");

    let (accepted, shed, _executed, closed) = server.stats().snapshot();
    assert_eq!(accepted, pongs as u64);
    assert_eq!(shed, (5 - pongs) as u64);
    assert_eq!(closed, 0);
    server.stop();
}

#[test]
fn admin_port_serves_versioned_endpoints() {
    let world = ServeWorld::build(2);
    let admin = AdminServer::start("127.0.0.1:0", world.gateway.admin().clone()).unwrap();
    for path in ["/v1/health", "/v1/metrics.json", "/v1/sources", "/v1/costs"] {
        let (ok, content_type, body) = admin_request(admin.local_addr(), path).unwrap();
        assert!(ok, "{path}");
        if content_type == "application/json" {
            assert!(
                serde_json::from_str::<serde_json::Value>(&body).is_ok(),
                "{path} body is not JSON"
            );
        }
    }
    let (ok, _, body) = admin_request(admin.local_addr(), "/v1/nope").unwrap();
    assert!(!ok);
    assert!(body.contains("/v1/health"), "404 body lists endpoints");
    admin.stop();
}

#[test]
fn clean_shutdown_closes_connections_and_rejects_new_ones() {
    let world = ServeWorld::build(2);
    let server =
        TcpServer::start("127.0.0.1:0", world.service(), SchedulerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    let ping = WireFrame::encode(&GlobalRequest::Ping).into_bytes();
    assert!(matches!(
        rpc(&mut stream, &ping),
        GlobalResponse::Pong { .. }
    ));

    server.stop();
    server.stop(); // idempotent

    // The live connection is gone...
    let dead = write_frame(&mut stream, &ping)
        .and_then(|()| read_frame(&mut stream))
        .map(|r| r.is_none());
    assert!(matches!(dead, Ok(true) | Err(_)), "{dead:?}");
    // ...and fresh connections are refused or immediately closed.
    if let Ok(mut fresh) = TcpStream::connect(addr) {
        let refused = write_frame(&mut fresh, &ping)
            .and_then(|()| read_frame(&mut fresh))
            .map(|r| r.is_none());
        assert!(matches!(refused, Ok(true) | Err(_)), "{refused:?}");
    }
}
