//! Per-request trace spans: timestamped stages through the query path,
//! kept in a bounded ring buffer of recent traces.

use gridrm_simnet::SimClock;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::journal::{Journal, DEFAULT_JOURNAL_CAPACITY};
use crate::metrics::Registry;
use crate::slowlog::{SlowQueryLog, DEFAULT_SLOW_QUERY_CAPACITY, DEFAULT_SLOW_QUERY_THRESHOLD_MS};

/// One timestamped stage inside a trace (`resolve`, `connect`, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStage {
    /// Stage name from the closed query-path set.
    pub stage: String,
    /// Virtual time when the stage was recorded.
    pub at_ms: u64,
    /// Optional low-cardinality detail (driver name, cache outcome).
    pub detail: Option<String>,
}

/// A completed (or in-flight) per-request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonic trace id, unique per gateway telemetry instance.
    pub id: u64,
    /// What is being traced (request label or SQL summary).
    pub request: String,
    /// The source URL the request resolved against, when known.
    pub source: Option<String>,
    /// Virtual start time.
    pub started_ms: u64,
    /// Virtual end time (equals `started_ms` until finished).
    pub finished_ms: u64,
    /// Outcome: `ok`, `error`, or `pending`.
    pub outcome: String,
    /// Ordered stages with monotonic timestamps.
    pub stages: Vec<SpanStage>,
}

impl TraceRecord {
    /// Total virtual duration.
    pub fn duration_ms(&self) -> u64 {
        self.finished_ms.saturating_sub(self.started_ms)
    }
}

/// An in-flight trace; records stages against the shared clock and
/// commits into the ring buffer when finished.
pub struct SpanBuilder {
    record: TraceRecord,
    clock: Arc<SimClock>,
    sink: Arc<TraceBuffer>,
    slowlog: Arc<SlowQueryLog>,
}

impl SpanBuilder {
    /// Record a stage now.
    pub fn stage(&mut self, name: &str) {
        self.record.stages.push(SpanStage {
            stage: name.to_string(),
            at_ms: self.clock.now_millis(),
            detail: None,
        });
    }

    /// Record a stage now, with a low-cardinality detail string.
    pub fn stage_with(&mut self, name: &str, detail: &str) {
        self.record.stages.push(SpanStage {
            stage: name.to_string(),
            at_ms: self.clock.now_millis(),
            detail: Some(detail.to_string()),
        });
    }

    /// Note which source the request resolved to.
    pub fn source(&mut self, url: &str) {
        self.record.source = Some(url.to_string());
    }

    /// The trace id assigned to this span.
    pub fn id(&self) -> u64 {
        self.record.id
    }

    /// Finish with an outcome, commit to the ring buffer, and offer the
    /// completed trace to the slow-query log.
    pub fn finish(mut self, outcome: &str) {
        self.record.finished_ms = self.clock.now_millis();
        self.record.outcome = outcome.to_string();
        self.slowlog.offer(&self.record);
        self.sink.push(self.record);
    }
}

/// Bounded ring buffer of recent traces: oldest evicted first.
pub struct TraceBuffer {
    capacity: usize,
    ring: Mutex<VecDeque<TraceRecord>>,
}

impl TraceBuffer {
    /// Buffer keeping at most `capacity` traces (capacity >= 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace buffer capacity must be positive");
        TraceBuffer {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Append, evicting the oldest trace on overflow.
    pub fn push(&self, record: TraceRecord) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Retained traces, oldest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// The slowest retained trace by virtual duration.
    pub fn slowest(&self) -> Option<TraceRecord> {
        self.ring
            .lock()
            .iter()
            .max_by_key(|t| t.duration_ms())
            .cloned()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Default number of traces retained per gateway.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Capacities and thresholds for the telemetry hub's bounded stores.
#[derive(Debug, Clone)]
pub struct TelemetryCapacities {
    /// Trace ring size.
    pub traces: usize,
    /// Structured journal ring size.
    pub journal: usize,
    /// Slow-query log top-K size.
    pub slow_queries: usize,
    /// Slow-query threshold in virtual milliseconds (0 disables).
    pub slow_query_threshold_ms: u64,
}

impl Default for TelemetryCapacities {
    fn default() -> TelemetryCapacities {
        TelemetryCapacities {
            traces: DEFAULT_TRACE_CAPACITY,
            journal: DEFAULT_JOURNAL_CAPACITY,
            slow_queries: DEFAULT_SLOW_QUERY_CAPACITY,
            slow_query_threshold_ms: DEFAULT_SLOW_QUERY_THRESHOLD_MS,
        }
    }
}

/// The per-gateway telemetry hub: one registry, one trace ring, one
/// journal, one slow-query log, one clock. Cheap to clone (`Arc`
/// inside) and share across subsystems.
#[derive(Clone)]
pub struct GatewayTelemetry {
    registry: Arc<Registry>,
    traces: Arc<TraceBuffer>,
    journal: Arc<Journal>,
    slow_queries: Arc<SlowQueryLog>,
    clock: Arc<SimClock>,
    next_trace_id: Arc<AtomicU64>,
}

impl GatewayTelemetry {
    /// Telemetry hub over the gateway's clock, default capacities.
    pub fn new(clock: Arc<SimClock>) -> GatewayTelemetry {
        GatewayTelemetry::with_capacities(clock, TelemetryCapacities::default())
    }

    /// Telemetry hub with an explicit trace-ring capacity.
    pub fn with_capacity(clock: Arc<SimClock>, trace_capacity: usize) -> GatewayTelemetry {
        GatewayTelemetry::with_capacities(
            clock,
            TelemetryCapacities {
                traces: trace_capacity,
                ..TelemetryCapacities::default()
            },
        )
    }

    /// Telemetry hub with explicit capacities for every bounded store.
    pub fn with_capacities(clock: Arc<SimClock>, caps: TelemetryCapacities) -> GatewayTelemetry {
        GatewayTelemetry {
            registry: Arc::new(Registry::new()),
            traces: Arc::new(TraceBuffer::new(caps.traces)),
            journal: Arc::new(Journal::new(caps.journal)),
            slow_queries: Arc::new(SlowQueryLog::new(
                caps.slow_query_threshold_ms,
                caps.slow_queries,
            )),
            clock,
            next_trace_id: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The shared metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace ring buffer.
    pub fn traces(&self) -> &TraceBuffer {
        &self.traces
    }

    /// The structured event journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// The slow-query log.
    pub fn slow_queries(&self) -> &Arc<SlowQueryLog> {
        &self.slow_queries
    }

    /// The clock stamping trace stages.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Start a trace for one request.
    pub fn span(&self, request: &str) -> SpanBuilder {
        let now = self.clock.now_millis();
        SpanBuilder {
            record: TraceRecord {
                id: self.next_trace_id.fetch_add(1, Ordering::Relaxed),
                request: request.to_string(),
                source: None,
                started_ms: now,
                finished_ms: now,
                outcome: "pending".to_string(),
                stages: Vec::new(),
            },
            clock: Arc::clone(&self.clock),
            sink: Arc::clone(&self.traces),
            slowlog: Arc::clone(&self.slow_queries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, started: u64, finished: u64) -> TraceRecord {
        TraceRecord {
            id,
            request: format!("req-{id}"),
            source: None,
            started_ms: started,
            finished_ms: finished,
            outcome: "ok".into(),
            stages: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_under_wraparound() {
        let buf = TraceBuffer::new(3);
        for id in 1..=7 {
            buf.push(record(id, 0, id));
        }
        let kept: Vec<u64> = buf.recent().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![5, 6, 7]); // oldest-first, newest retained
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.capacity(), 3);
        // One more full cycle keeps eviction order stable.
        for id in 8..=10 {
            buf.push(record(id, 0, id));
        }
        let kept: Vec<u64> = buf.recent().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![8, 9, 10]);
    }

    #[test]
    fn span_records_monotonic_stages() {
        let clock = SimClock::new();
        let telemetry = GatewayTelemetry::new(Arc::clone(&clock));
        let mut span = telemetry.span("SELECT * FROM host");
        span.stage("resolve");
        clock.advance(5);
        span.stage_with("connect", "ganglia");
        clock.advance(3);
        span.stage("execute");
        span.source("h0:xml");
        span.finish("ok");

        let traces = telemetry.traces().recent();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.outcome, "ok");
        assert_eq!(t.source.as_deref(), Some("h0:xml"));
        assert_eq!(t.duration_ms(), 8);
        let stages: Vec<&str> = t.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(stages, vec!["resolve", "connect", "execute"]);
        assert!(t.stages.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert_eq!(t.stages[1].detail.as_deref(), Some("ganglia"));
    }

    #[test]
    fn slowest_picks_longest_duration() {
        let buf = TraceBuffer::new(8);
        buf.push(record(1, 0, 10));
        buf.push(record(2, 0, 50));
        buf.push(record(3, 0, 20));
        assert_eq!(buf.slowest().unwrap().id, 2);
    }

    #[test]
    fn trace_serializes_to_json() {
        let t = record(9, 1, 4);
        let json = serde_json::to_string(&t).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn span_ids_are_unique() {
        let telemetry = GatewayTelemetry::new(SimClock::new());
        let a = telemetry.span("a").id();
        let b = telemetry.span("b").id();
        assert_ne!(a, b);
    }
}
