//! Per-request trace spans: timestamped stages through the query path,
//! kept in a bounded ring buffer of recent traces.
//!
//! Since the hierarchical-tracing upgrade every record is a **span** in a
//! tree: it carries a `trace_id` naming the whole tree, its own globally
//! unique `span_id`, an optional `parent_span_id` and the Grid `site`
//! that produced it. A [`TraceContext`] is the portable half of a span —
//! it crosses layer (and gateway) boundaries so children created
//! anywhere land in the same tree.

use gridrm_simnet::SimClock;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cost::{CostLedger, CostVector, QueryCostEntry};
use crate::journal::{Journal, DEFAULT_JOURNAL_CAPACITY};
use crate::metrics::{Counter, Labels, Registry};
use crate::slo::SloEngine;
use crate::slowlog::{SlowQueryLog, DEFAULT_SLOW_QUERY_CAPACITY, DEFAULT_SLOW_QUERY_THRESHOLD_MS};
use crate::timeseries::TimeSeriesRecorder;

/// One timestamped stage inside a trace (`resolve`, `connect`, …).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanStage {
    /// Stage name from the closed query-path set.
    pub stage: String,
    /// Virtual time when the stage was recorded.
    pub at_ms: u64,
    /// Optional low-cardinality detail (driver name, cache outcome).
    pub detail: Option<String>,
}

/// A completed (or in-flight) span of a trace tree.
///
/// The span-identity fields default to empty so records serialised
/// before the hierarchical upgrade still deserialise.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonic numeric id, unique per gateway telemetry instance
    /// (kept for ordering and slow-log tie-breaks).
    pub id: u64,
    /// The trace tree this span belongs to (equals the root's
    /// `span_id`).
    #[serde(default)]
    pub trace_id: String,
    /// Globally unique span id (`{gateway}:{n}`).
    #[serde(default)]
    pub span_id: String,
    /// The parent span, `None` for a root.
    #[serde(default)]
    pub parent_span_id: Option<String>,
    /// Grid site of the gateway that recorded this span.
    #[serde(default)]
    pub site: String,
    /// What is being traced (request label or SQL summary).
    pub request: String,
    /// The source URL the request resolved against, when known.
    pub source: Option<String>,
    /// Virtual start time.
    pub started_ms: u64,
    /// Virtual end time (equals `started_ms` until finished).
    pub finished_ms: u64,
    /// Outcome: `ok`, `error`, or `pending`.
    pub outcome: String,
    /// Ordered stages with monotonic timestamps.
    pub stages: Vec<SpanStage>,
    /// Inclusive cost: this span's direct charges plus everything its
    /// finished children rolled up into it. Defaults to zero so spans
    /// serialised before the cost-accounting upgrade (and wire messages
    /// from pre-cost peers) still deserialise.
    #[serde(default)]
    pub cost: CostVector,
}

impl TraceRecord {
    /// Total virtual duration.
    pub fn duration_ms(&self) -> u64 {
        self.finished_ms.saturating_sub(self.started_ms)
    }
}

/// The portable identity of an in-flight span: everything a child —
/// possibly on another gateway — needs to attach itself to the tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The trace tree.
    pub trace_id: String,
    /// The span that children created under this context hang off.
    pub parent_span_id: String,
}

/// An in-flight span; records stages against the shared clock and
/// commits into the ring buffer when finished.
pub struct SpanBuilder {
    record: TraceRecord,
    hub: GatewayTelemetry,
}

impl SpanBuilder {
    /// Record a stage now.
    pub fn stage(&mut self, name: &str) {
        self.record.stages.push(SpanStage {
            stage: name.to_string(),
            at_ms: self.hub.clock.now_millis(),
            detail: None,
        });
    }

    /// Record a stage now, with a low-cardinality detail string.
    pub fn stage_with(&mut self, name: &str, detail: &str) {
        self.record.stages.push(SpanStage {
            stage: name.to_string(),
            at_ms: self.hub.clock.now_millis(),
            detail: Some(detail.to_string()),
        });
    }

    /// Note which source the request resolved to.
    pub fn source(&mut self, url: &str) {
        self.record.source = Some(url.to_string());
    }

    /// Charge a *direct* cost against this span: accumulated into the
    /// span's cost vector and counted into the gateway-wide
    /// `gridrm_cost_*` counters.
    pub fn add_cost(&mut self, v: &CostVector) {
        self.hub.costs.count(v);
        self.record.cost.add(v);
    }

    /// Absorb an already-counted cost into this span's vector without
    /// touching the counters — used for costs imported from remote
    /// spans (counted on the remote gateway) so nothing is double
    /// counted while the span tree still sums correctly.
    pub fn absorb_cost(&mut self, v: &CostVector) {
        self.record.cost.add(v);
    }

    /// The cost accumulated on this span so far (children not yet
    /// merged — that happens at finish).
    pub fn cost(&self) -> &CostVector {
        &self.record.cost
    }

    /// The numeric id assigned to this span.
    pub fn id(&self) -> u64 {
        self.record.id
    }

    /// The trace tree this span belongs to.
    pub fn trace_id(&self) -> &str {
        &self.record.trace_id
    }

    /// The context under which children of this span are created.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.record.trace_id.clone(),
            parent_span_id: self.record.span_id.clone(),
        }
    }

    /// Start a child span of this one (on the same telemetry hub).
    pub fn child(&self, request: &str) -> SpanBuilder {
        self.hub.span_in(&self.context(), request)
    }

    /// Finish with an outcome, commit to the ring buffer, and offer the
    /// completed trace to the slow-query log.
    pub fn finish(self, outcome: &str) {
        let now = self.hub.clock.now_millis();
        self.finish_at(outcome, now);
    }

    /// Finish with an explicit virtual end time instead of "now".
    ///
    /// The parallel fan-out scheduler executes segments one after the
    /// other in deterministic order but models them as concurrent: each
    /// segment span ends at `start + virtual_cost`, so overlapping
    /// segments render with overlapping time offsets in `EXPLAIN
    /// ANALYZE` even though the clock only advances once, by the
    /// slowest segment's cost. `finished_ms` is clamped to be no
    /// earlier than `started_ms`.
    pub fn finish_at(mut self, outcome: &str, finished_ms: u64) {
        self.record.finished_ms = finished_ms.max(self.record.started_ms);
        self.record.outcome = outcome.to_string();
        // Merge whatever finished children parked under this span, then
        // either credit the inclusive total to the parent or — at a
        // root — commit the whole bill to the ledger.
        let rolled = self.hub.costs.take_pending(&self.record.span_id);
        self.record.cost.add(&rolled);
        match &self.record.parent_span_id {
            Some(parent) => self.hub.costs.roll_up(parent, &self.record.cost),
            None => {
                let over_budget = self.hub.costs.note_root(
                    QueryCostEntry {
                        trace_id: self.record.trace_id.clone(),
                        site: self.record.site.clone(),
                        request: self.record.request.clone(),
                        started_ms: self.record.started_ms,
                        finished_ms: self.record.finished_ms,
                        cost: self.record.cost,
                        over_budget: false,
                    },
                    self.record.source.as_deref(),
                );
                if over_budget {
                    self.record.stages.push(SpanStage {
                        stage: "cost".to_string(),
                        at_ms: self.record.finished_ms,
                        detail: Some("over_budget".to_string()),
                    });
                }
            }
        }
        self.hub.slow_queries.offer(&self.record);
        self.hub.traces.push(self.record);
    }
}

struct RingState {
    ring: VecDeque<TraceRecord>,
    /// Cached slowest retained record, so `slowest()` is O(1) instead of
    /// a full scan under the lock on every admin poll. Re-derived only
    /// when the cached maximum itself is evicted.
    slowest: Option<TraceRecord>,
}

/// Bounded ring buffer of recent traces: oldest evicted first.
pub struct TraceBuffer {
    capacity: usize,
    state: Mutex<RingState>,
    /// Evictions, exposed as `gridrm_trace_drops_total` so loss of
    /// observability data is itself observable.
    drops: Counter,
}

impl TraceBuffer {
    /// Buffer keeping at most `capacity` traces (capacity >= 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace buffer capacity must be positive");
        TraceBuffer {
            capacity,
            state: Mutex::new(RingState {
                ring: VecDeque::with_capacity(capacity),
                slowest: None,
            }),
            drops: Counter::new(),
        }
    }

    /// Append, evicting the oldest trace on overflow.
    pub fn push(&self, record: TraceRecord) {
        let mut state = self.state.lock();
        if state.ring.len() == self.capacity {
            let evicted = state.ring.pop_front();
            self.drops.inc();
            if state.slowest == evicted {
                // The cached maximum left the ring: rescan what remains.
                // Ties resolve to the newest, matching the old full scan.
                state.slowest = state.ring.iter().max_by_key(|t| t.duration_ms()).cloned();
            }
        }
        let beats_cached = state
            .slowest
            .as_ref()
            .is_none_or(|s| record.duration_ms() >= s.duration_ms());
        if beats_cached {
            state.slowest = Some(record.clone());
        }
        state.ring.push_back(record);
    }

    /// Retained traces, oldest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        self.state.lock().ring.iter().cloned().collect()
    }

    /// Retained spans belonging to one trace tree, oldest first.
    pub fn for_trace(&self, trace_id: &str) -> Vec<TraceRecord> {
        self.state
            .lock()
            .ring
            .iter()
            .filter(|t| t.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// The slowest retained trace by virtual duration (cached: O(1)).
    pub fn slowest(&self) -> Option<TraceRecord> {
        self.state.lock().slowest.clone()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.state.lock().ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.state.lock().ring.is_empty()
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Shared counter of traces evicted before being read.
    pub fn drops(&self) -> &Counter {
        &self.drops
    }
}

/// Default number of traces retained per gateway.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Capacities and thresholds for the telemetry hub's bounded stores.
#[derive(Debug, Clone)]
pub struct TelemetryCapacities {
    /// Trace ring size.
    pub traces: usize,
    /// Structured journal ring size.
    pub journal: usize,
    /// Slow-query log top-K size.
    pub slow_queries: usize,
    /// Slow-query threshold in virtual milliseconds (0 disables).
    pub slow_query_threshold_ms: u64,
}

impl Default for TelemetryCapacities {
    fn default() -> TelemetryCapacities {
        TelemetryCapacities {
            traces: DEFAULT_TRACE_CAPACITY,
            journal: DEFAULT_JOURNAL_CAPACITY,
            slow_queries: DEFAULT_SLOW_QUERY_CAPACITY,
            slow_query_threshold_ms: DEFAULT_SLOW_QUERY_THRESHOLD_MS,
        }
    }
}

#[derive(Clone)]
struct TelemetryIdentity {
    site: String,
    gateway: String,
}

/// The per-gateway telemetry hub: one registry, one trace ring, one
/// journal, one slow-query log, one clock. Cheap to clone (`Arc`
/// inside) and share across subsystems.
#[derive(Clone)]
pub struct GatewayTelemetry {
    registry: Arc<Registry>,
    traces: Arc<TraceBuffer>,
    journal: Arc<Journal>,
    slow_queries: Arc<SlowQueryLog>,
    timeseries: Arc<TimeSeriesRecorder>,
    slo: Arc<SloEngine>,
    costs: Arc<CostLedger>,
    clock: Arc<SimClock>,
    next_trace_id: Arc<AtomicU64>,
    identity: Arc<RwLock<TelemetryIdentity>>,
}

impl GatewayTelemetry {
    /// Telemetry hub over the gateway's clock, default capacities.
    pub fn new(clock: Arc<SimClock>) -> GatewayTelemetry {
        GatewayTelemetry::with_capacities(clock, TelemetryCapacities::default())
    }

    /// Telemetry hub with an explicit trace-ring capacity.
    pub fn with_capacity(clock: Arc<SimClock>, trace_capacity: usize) -> GatewayTelemetry {
        GatewayTelemetry::with_capacities(
            clock,
            TelemetryCapacities {
                traces: trace_capacity,
                ..TelemetryCapacities::default()
            },
        )
    }

    /// Telemetry hub with explicit capacities for every bounded store.
    pub fn with_capacities(clock: Arc<SimClock>, caps: TelemetryCapacities) -> GatewayTelemetry {
        let registry = Arc::new(Registry::new());
        let traces = Arc::new(TraceBuffer::new(caps.traces));
        let journal = Arc::new(Journal::new(caps.journal));
        // Ring-buffer eviction is silent data loss; count it where it
        // can be scraped.
        registry.expose_counter(
            "gridrm_trace_drops_total",
            "Trace spans evicted from the bounded ring buffer before being read",
            Labels::none(),
            traces.drops(),
        );
        registry.expose_counter(
            "gridrm_journal_drops_total",
            "Journal entries evicted from the bounded ring buffer before being read",
            Labels::none(),
            journal.drops(),
        );
        let slo = Arc::new(SloEngine::new(registry.clone(), journal.clone()));
        let timeseries = Arc::new(TimeSeriesRecorder::new());
        registry.expose_counter(
            "gridrm_timeseries_points_total",
            "Samples recorded into the metrics time-series rings",
            Labels::none(),
            timeseries.points_recorded(),
        );
        let costs = Arc::new(CostLedger::new(clock.clone(), journal.clone()));
        // Registered unconditionally so the cost/intrusion families
        // always exist for scrapes and the docs-drift check.
        costs.register_into(&registry);
        GatewayTelemetry {
            registry,
            traces,
            journal,
            slow_queries: Arc::new(SlowQueryLog::new(
                caps.slow_query_threshold_ms,
                caps.slow_queries,
            )),
            timeseries,
            slo,
            costs,
            clock,
            next_trace_id: Arc::new(AtomicU64::new(1)),
            identity: Arc::new(RwLock::new(TelemetryIdentity {
                site: "local".to_owned(),
                gateway: "local".to_owned(),
            })),
        }
    }

    /// Set the Grid identity stamped onto spans: the site name and the
    /// gateway name (which prefixes span ids so they stay globally
    /// unique across a multi-gateway trace).
    pub fn set_identity(&self, site: &str, gateway: &str) {
        *self.identity.write() = TelemetryIdentity {
            site: site.to_owned(),
            gateway: gateway.to_owned(),
        };
    }

    /// The site name spans are stamped with.
    pub fn site(&self) -> String {
        self.identity.read().site.clone()
    }

    /// The shared metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace ring buffer.
    pub fn traces(&self) -> &TraceBuffer {
        &self.traces
    }

    /// The structured event journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// The slow-query log.
    pub fn slow_queries(&self) -> &Arc<SlowQueryLog> {
        &self.slow_queries
    }

    /// The metrics time-series recorder (history ring buffers).
    pub fn timeseries(&self) -> &Arc<TimeSeriesRecorder> {
        &self.timeseries
    }

    /// The SLO burn-rate engine.
    pub fn slo(&self) -> &Arc<SloEngine> {
        &self.slo
    }

    /// The cost accounting ledger.
    pub fn costs(&self) -> &Arc<CostLedger> {
        &self.costs
    }

    /// The clock stamping trace stages.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    fn build_span(&self, parent: Option<&TraceContext>, request: &str) -> SpanBuilder {
        let now = self.clock.now_millis();
        let identity = self.identity.read().clone();
        let id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
        let span_id = format!("{}:{id}", identity.gateway);
        let (trace_id, parent_span_id) = match parent {
            Some(ctx) => (ctx.trace_id.clone(), Some(ctx.parent_span_id.clone())),
            None => (span_id.clone(), None),
        };
        SpanBuilder {
            record: TraceRecord {
                id,
                trace_id,
                span_id,
                parent_span_id,
                site: identity.site,
                request: request.to_string(),
                source: None,
                started_ms: now,
                finished_ms: now,
                outcome: "pending".to_string(),
                stages: Vec::new(),
                cost: CostVector::default(),
            },
            hub: self.clone(),
        }
    }

    /// Start a root span for one request.
    pub fn span(&self, request: &str) -> SpanBuilder {
        self.build_span(None, request)
    }

    /// Start a span as a child of an existing context (possibly one
    /// that originated on another gateway).
    pub fn span_in(&self, ctx: &TraceContext, request: &str) -> SpanBuilder {
        self.build_span(Some(ctx), request)
    }

    /// Import a finished span produced elsewhere (a remote gateway's
    /// half of a distributed trace) into the local ring buffer. The
    /// record is not re-offered to the slow-query log.
    pub fn import_span(&self, record: TraceRecord) {
        self.traces.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, started: u64, finished: u64) -> TraceRecord {
        TraceRecord {
            id,
            trace_id: format!("gw:{id}"),
            span_id: format!("gw:{id}"),
            request: format!("req-{id}"),
            started_ms: started,
            finished_ms: finished,
            outcome: "ok".into(),
            ..TraceRecord::default()
        }
    }

    #[test]
    fn ring_evicts_oldest_under_wraparound() {
        let buf = TraceBuffer::new(3);
        for id in 1..=7 {
            buf.push(record(id, 0, id));
        }
        let kept: Vec<u64> = buf.recent().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![5, 6, 7]); // oldest-first, newest retained
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.capacity(), 3);
        // 7 pushed into a ring of 3: four evictions, all counted.
        assert_eq!(buf.drops().get(), 4);
        // One more full cycle keeps eviction order stable.
        for id in 8..=10 {
            buf.push(record(id, 0, id));
        }
        let kept: Vec<u64> = buf.recent().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![8, 9, 10]);
    }

    #[test]
    fn span_records_monotonic_stages() {
        let clock = SimClock::new();
        let telemetry = GatewayTelemetry::new(Arc::clone(&clock));
        let mut span = telemetry.span("SELECT * FROM host");
        span.stage("resolve");
        clock.advance(5);
        span.stage_with("connect", "ganglia");
        clock.advance(3);
        span.stage("execute");
        span.source("h0:xml");
        span.finish("ok");

        let traces = telemetry.traces().recent();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.outcome, "ok");
        assert_eq!(t.source.as_deref(), Some("h0:xml"));
        assert_eq!(t.duration_ms(), 8);
        let stages: Vec<&str> = t.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(stages, vec!["resolve", "connect", "execute"]);
        assert!(t.stages.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert_eq!(t.stages[1].detail.as_deref(), Some("ganglia"));
        // A root span is its own trace.
        assert_eq!(t.trace_id, t.span_id);
        assert!(t.parent_span_id.is_none());
    }

    #[test]
    fn slowest_picks_longest_duration() {
        let buf = TraceBuffer::new(8);
        buf.push(record(1, 0, 10));
        buf.push(record(2, 0, 50));
        buf.push(record(3, 0, 20));
        assert_eq!(buf.slowest().unwrap().id, 2);
    }

    #[test]
    fn slowest_cache_survives_eviction_of_maximum() {
        let buf = TraceBuffer::new(3);
        buf.push(record(1, 0, 50)); // the maximum
        buf.push(record(2, 0, 10));
        buf.push(record(3, 0, 30));
        assert_eq!(buf.slowest().unwrap().id, 1);
        // Pushing a 4th evicts #1 (the cached maximum): the cache must
        // re-derive from what remains, not keep a stale answer.
        buf.push(record(4, 0, 20));
        assert_eq!(buf.slowest().unwrap().id, 3);
        // Ties go to the newest, matching the previous full-scan behaviour.
        buf.push(record(5, 0, 30));
        assert_eq!(buf.slowest().unwrap().id, 5);
    }

    #[test]
    fn trace_serializes_to_json() {
        let t = record(9, 1, 4);
        let json = serde_json::to_string(&t).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn legacy_json_without_span_fields_still_deserializes() {
        let json = r#"{"id":3,"request":"q","source":null,"started_ms":0,
                       "finished_ms":2,"outcome":"ok","stages":[]}"#;
        let back: TraceRecord = serde_json::from_str(json).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.trace_id, "");
        assert!(back.parent_span_id.is_none());
    }

    #[test]
    fn span_ids_are_unique() {
        let telemetry = GatewayTelemetry::new(SimClock::new());
        let a = telemetry.span("a").id();
        let b = telemetry.span("b").id();
        assert_ne!(a, b);
    }

    #[test]
    fn child_spans_share_the_trace() {
        let telemetry = GatewayTelemetry::new(SimClock::new());
        telemetry.set_identity("alpha", "gw-alpha");
        let root = telemetry.span("SELECT 1 FROM t");
        let child = root.child("resolve");
        let grandchild = child.child("driver");
        let (rc, cc) = (root.context(), child.context());
        assert_eq!(cc.trace_id, rc.trace_id);
        assert_eq!(grandchild.context().trace_id, rc.trace_id);
        grandchild.finish("ok");
        child.finish("ok");
        root.finish("ok");
        let spans = telemetry.traces().for_trace(&rc.trace_id);
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.site == "alpha"));
        assert!(spans.iter().all(|s| s.span_id.starts_with("gw-alpha:")));
        // Every parent resolves within the same trace.
        let ids: Vec<&str> = spans.iter().map(|s| s.span_id.as_str()).collect();
        for s in &spans {
            if let Some(p) = &s.parent_span_id {
                assert!(ids.contains(&p.as_str()), "dangling parent {p}");
            }
        }
    }

    #[test]
    fn child_costs_roll_up_to_the_root() {
        let telemetry = GatewayTelemetry::new(SimClock::new());
        telemetry.set_identity("alpha", "gw-a");
        let root = telemetry.span("SELECT 1 FROM t");
        let mut child_a = root.child("seg-a");
        let mut child_b = root.child("seg-b");
        let mut grandchild = child_a.child("driver");
        grandchild.add_cost(&CostVector {
            rows_scanned: 10,
            fetch_units: 1,
            ..CostVector::default()
        });
        grandchild.finish("ok");
        child_a.add_cost(&CostVector {
            msgs_out: 1,
            bytes_out: 100,
            ..CostVector::default()
        });
        child_a.finish("ok");
        child_b.add_cost(&CostVector {
            msgs_in: 1,
            bytes_in: 40,
            ..CostVector::default()
        });
        child_b.finish("ok");
        let trace_id = root.trace_id().to_owned();
        root.finish("ok");

        let spans = telemetry.traces().for_trace(&trace_id);
        let root_span = spans
            .iter()
            .find(|s| s.parent_span_id.is_none())
            .expect("root span");
        // Inclusive: the root had no direct charges, so its cost is
        // exactly the sum of its children's inclusive costs.
        let mut sum = CostVector::default();
        for s in spans
            .iter()
            .filter(|s| s.parent_span_id.as_deref() == Some(root_span.span_id.as_str()))
        {
            sum.add(&s.cost);
        }
        assert_eq!(root_span.cost, sum);
        assert_eq!(root_span.cost.rows_scanned, 10);
        assert_eq!(root_span.cost.bytes_out, 100);
        assert_eq!(root_span.cost.bytes_in, 40);
        assert_eq!(root_span.cost.total_msgs(), 2);
        // The root's bill landed in the ledger.
        let entries = telemetry.costs().entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].trace_id, trace_id);
        assert_eq!(entries[0].cost, root_span.cost);
        // Counters saw each direct charge exactly once.
        assert_eq!(telemetry.costs().totals().rows_scanned, 10);
        assert_eq!(telemetry.costs().totals().bytes_out, 100);
    }

    #[test]
    fn over_budget_root_gains_cost_stage_and_journal_entry() {
        let telemetry = GatewayTelemetry::new(SimClock::new());
        telemetry.costs().set_budget(50, 0);
        let mut root = telemetry.span("big query");
        root.add_cost(&CostVector {
            bytes_in: 500,
            ..CostVector::default()
        });
        let trace_id = root.trace_id().to_owned();
        root.finish("ok");
        let spans = telemetry.traces().for_trace(&trace_id);
        let stage = spans[0].stages.last().expect("cost stage");
        assert_eq!(stage.stage, "cost");
        assert_eq!(stage.detail.as_deref(), Some("over_budget"));
        let breaches = telemetry
            .journal()
            .recent_of_kind(crate::journal::KIND_COST_BUDGET);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].trace_id.as_deref(), Some(&*trace_id));
        assert!(telemetry.costs().entries()[0].over_budget);
    }

    #[test]
    fn context_crosses_hubs_like_gateways() {
        let clock = SimClock::new();
        let a = GatewayTelemetry::new(clock.clone());
        a.set_identity("alpha", "gw-a");
        let b = GatewayTelemetry::new(clock);
        b.set_identity("beta", "gw-b");
        let root = a.span("global query");
        let ctx = root.context();
        let remote = b.span_in(&ctx, "remote half");
        assert_eq!(remote.trace_id(), root.trace_id());
        remote.finish("ok");
        // The remote half travels back and is imported locally.
        let remote_spans = b.traces().for_trace(root.trace_id());
        assert_eq!(remote_spans.len(), 1);
        assert_eq!(remote_spans[0].site, "beta");
        for s in remote_spans {
            a.import_span(s);
        }
        root.finish("ok");
        assert_eq!(a.traces().for_trace("gw-a:1").len(), 2);
    }
}
