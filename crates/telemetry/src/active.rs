//! Ambient active-span propagation for code that cannot take a
//! [`SpanBuilder`] parameter.
//!
//! Drivers implement a trait from the `dbc` crate, which knows nothing
//! about telemetry; forcing a tracing handle through that interface
//! would couple every driver to this crate. Instead, the layer that
//! *does* hold a span (the connection manager, around each driver
//! attempt) [`enter`]s it here, and deep code such as the GLUE
//! translation path asks for an ambient [`child_span`]. The scope is
//! thread-local and stack-shaped: entering pushes, dropping the guard
//! pops, so nested attempts (a driver re-entering the gateway) nest
//! correctly.

use crate::trace::{GatewayTelemetry, SpanBuilder, TraceContext};
use std::cell::RefCell;

thread_local! {
    static ACTIVE: RefCell<Vec<(GatewayTelemetry, TraceContext)>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`enter`]; leaving the scope pops the active span.
pub struct ActiveSpanGuard {
    _private: (),
}

impl Drop for ActiveSpanGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Make `ctx` (a span on `hub`) the ambient active span for the current
/// thread until the returned guard drops.
pub fn enter(hub: &GatewayTelemetry, ctx: TraceContext) -> ActiveSpanGuard {
    ACTIVE.with(|stack| stack.borrow_mut().push((hub.clone(), ctx)));
    ActiveSpanGuard { _private: () }
}

/// Start a child of the ambient active span, if one is entered. Code
/// running outside any traced request gets `None` and skips recording.
pub fn child_span(request: &str) -> Option<SpanBuilder> {
    ACTIVE.with(|stack| {
        stack
            .borrow()
            .last()
            .map(|(hub, ctx)| hub.span_in(ctx, request))
    })
}

/// The ambient trace id, if a span is entered. Lets journal call sites
/// stamp entries without holding a span of their own.
pub fn current_trace_id() -> Option<String> {
    ACTIVE.with(|stack| stack.borrow().last().map(|(_, ctx)| ctx.trace_id.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_simnet::SimClock;

    #[test]
    fn child_span_requires_an_entered_scope() {
        assert!(child_span("orphan").is_none());
        assert!(current_trace_id().is_none());

        let hub = GatewayTelemetry::new(SimClock::new());
        hub.set_identity("alpha", "gw-a");
        let root = hub.span("SELECT 1");
        {
            let _guard = enter(&hub, root.context());
            assert_eq!(current_trace_id().as_deref(), Some(root.trace_id()));
            let child = child_span("glue Processor").expect("active scope");
            assert_eq!(child.trace_id(), root.trace_id());
            child.finish("ok");
        }
        assert!(child_span("after-drop").is_none());
        root.finish("ok");

        let spans = hub.traces().recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].request, "glue Processor");
        assert_eq!(
            spans[0].parent_span_id.as_deref(),
            Some(spans[1].span_id.as_str())
        );
    }

    #[test]
    fn scopes_nest_like_a_stack() {
        let hub = GatewayTelemetry::new(SimClock::new());
        let outer = hub.span("outer");
        let inner = outer.child("inner");
        let _g1 = enter(&hub, outer.context());
        {
            let _g2 = enter(&hub, inner.context());
            let c = child_span("deep").unwrap();
            assert_eq!(
                c.context().trace_id,
                outer.context().trace_id,
                "nested scope stays in the same trace"
            );
            c.finish("ok");
        }
        // Back to the outer scope after the inner guard dropped.
        let c = child_span("shallow").unwrap();
        c.finish("ok");
        inner.finish("ok");
        outer.finish("ok");
        let spans = hub.traces().recent();
        let deep = spans.iter().find(|s| s.request == "deep").unwrap();
        let shallow = spans.iter().find(|s| s.request == "shallow").unwrap();
        let inner_rec = spans.iter().find(|s| s.request == "inner").unwrap();
        let outer_rec = spans.iter().find(|s| s.request == "outer").unwrap();
        assert_eq!(
            deep.parent_span_id.as_deref(),
            Some(inner_rec.span_id.as_str())
        );
        assert_eq!(
            shallow.parent_span_id.as_deref(),
            Some(outer_rec.span_id.as_str())
        );
    }
}
