//! SLO burn-rate engine: declared objectives evaluated against the live
//! registry with multi-window burn-rate math, alerting through the
//! journal and a health-style fire/clear state machine.
//!
//! An [`SloSpec`] names a good-fraction `target` (e.g. `0.99`) over one
//! of three objectives: request **latency** (observations of a latency
//! histogram completing within a threshold), request **availability**
//! (per-source request outcomes that are not denials/deadline
//! exhaustions), or **source health** (tracked sources currently `Up`).
//! Each evaluation — driven by `Gateway::pump` on the virtual clock —
//! samples `(good, total)`, computes the error rate over a *fast* and a
//! *slow* trailing window, and divides by the allowed error rate
//! `1 - target` to get the **burn rate**: `1.0` means the error budget
//! is being consumed exactly as fast as the objective allows. The alert
//! fires only when *both* windows exceed their thresholds (the fast
//! window reacts, the slow window confirms — the multi-window pattern
//! from the SRE literature) and clears when both fall back below.
//!
//! Transitions follow the health-monitor discipline: a journal entry
//! (kind [`KIND_SLO`]), the `gridrm_slo_transitions_total` counter, and
//! a pending record drained by `Gateway::pump` into the Event Manager —
//! one code path, so the three counts can never drift apart. Burn rates
//! and the remaining error budget are continuously exported as the
//! `gridrm_slo_burn_rate{slo,window}` and
//! `gridrm_slo_error_budget{slo}` gauges.

use crate::journal::{Journal, JournalSeverity, KIND_SLO};
use crate::metrics::{Counter, Gauge, Labels, Registry};
use parking_lot::Mutex;
use serde::{DeError, Deserialize, Map, Serialize, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// Default fast (reacting) window: 5 virtual minutes.
pub const DEFAULT_FAST_WINDOW_MS: u64 = 300_000;
/// Default slow (confirming) window: 1 virtual hour.
pub const DEFAULT_SLOW_WINDOW_MS: u64 = 3_600_000;
/// Default fast-window burn threshold.
pub const DEFAULT_FAST_BURN_THRESHOLD: f64 = 10.0;
/// Default slow-window burn threshold.
pub const DEFAULT_SLOW_BURN_THRESHOLD: f64 = 2.0;

/// The latency histogram the default latency objective reads.
pub const DEFAULT_LATENCY_METRIC: &str = "gridrm_request_latency_ms";
/// The per-source outcome counter the availability objective reads.
pub const AVAILABILITY_METRIC: &str = "gridrm_request_paths_total";
/// The per-state source gauge the source-health objective reads.
pub const SOURCE_HEALTH_METRIC: &str = "gridrm_health_sources";

mod defaults {
    pub fn latency_metric() -> String {
        super::DEFAULT_LATENCY_METRIC.to_owned()
    }
    pub fn bad_paths() -> Vec<String> {
        vec!["denied".to_owned(), "deadline_exceeded".to_owned()]
    }
    pub fn fast_window_ms() -> u64 {
        super::DEFAULT_FAST_WINDOW_MS
    }
    pub fn slow_window_ms() -> u64 {
        super::DEFAULT_SLOW_WINDOW_MS
    }
    pub fn fast_burn_threshold() -> f64 {
        super::DEFAULT_FAST_BURN_THRESHOLD
    }
    pub fn slow_burn_threshold() -> f64 {
        super::DEFAULT_SLOW_BURN_THRESHOLD
    }
}

/// What an SLO measures. Serialised flattened into the [`SloSpec`]
/// object with a snake_case `objective` tag, so a JSON spec reads
/// `{"name":"...","objective":"latency","threshold_ms":100,...}`.
#[derive(Debug, Clone, PartialEq)]
pub enum SloObjective {
    /// Good = observations of histogram `metric` at or below
    /// `threshold_ms`. For an exact split the threshold should equal a
    /// bucket upper bound.
    Latency {
        /// Histogram family to read.
        metric: String,
        /// Latency objective in virtual ms.
        threshold_ms: f64,
    },
    /// Good = per-source request outcomes whose `path` label is not in
    /// `bad_paths` (default: `denied`, `deadline_exceeded`).
    Availability {
        /// Outcome label values that count against the budget.
        bad_paths: Vec<String>,
    },
    /// Good = tracked sources currently `Up`; total excludes `Unknown`
    /// (never-observed sources have no verdict yet). Level-sampled:
    /// window error rates average the sampled levels.
    SourceHealth,
}

impl SloObjective {
    /// Short description for exposition rows.
    pub fn describe(&self) -> String {
        match self {
            SloObjective::Latency {
                metric,
                threshold_ms,
            } => format!("latency<={threshold_ms}ms over {metric}"),
            SloObjective::Availability { bad_paths } => {
                format!("availability (bad: {})", bad_paths.join(","))
            }
            SloObjective::SourceHealth => "source_health".to_owned(),
        }
    }

    /// Whether `(good, total)` samples are cumulative (deltas between
    /// samples carry the window) or instantaneous levels.
    fn cumulative(&self) -> bool {
        !matches!(self, SloObjective::SourceHealth)
    }
}

/// One declared SLO, normally carried in `GatewayConfig::slos`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Unique SLO name, used as the `slo` label value.
    pub name: String,
    /// What is measured (flattened into the spec object as JSON).
    pub objective: SloObjective,
    /// Good fraction objective in `(0, 1)`, e.g. `0.99`.
    pub target: f64,
    /// Fast (reacting) window in virtual ms.
    pub fast_window_ms: u64,
    /// Slow (confirming) window in virtual ms.
    pub slow_window_ms: u64,
    /// Burn rate at which the fast window trips.
    pub fast_burn_threshold: f64,
    /// Burn rate at which the slow window trips.
    pub slow_burn_threshold: f64,
}

impl Serialize for SloSpec {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".to_owned(), Value::String(self.name.clone()));
        match &self.objective {
            SloObjective::Latency {
                metric,
                threshold_ms,
            } => {
                m.insert("objective".to_owned(), Value::String("latency".to_owned()));
                m.insert("metric".to_owned(), Value::String(metric.clone()));
                m.insert("threshold_ms".to_owned(), threshold_ms.to_value());
            }
            SloObjective::Availability { bad_paths } => {
                m.insert(
                    "objective".to_owned(),
                    Value::String("availability".to_owned()),
                );
                m.insert("bad_paths".to_owned(), bad_paths.to_value());
            }
            SloObjective::SourceHealth => {
                m.insert(
                    "objective".to_owned(),
                    Value::String("source_health".to_owned()),
                );
            }
        }
        m.insert("target".to_owned(), self.target.to_value());
        m.insert("fast_window_ms".to_owned(), self.fast_window_ms.to_value());
        m.insert("slow_window_ms".to_owned(), self.slow_window_ms.to_value());
        m.insert(
            "fast_burn_threshold".to_owned(),
            self.fast_burn_threshold.to_value(),
        );
        m.insert(
            "slow_burn_threshold".to_owned(),
            self.slow_burn_threshold.to_value(),
        );
        Value::Object(m)
    }
}

impl<'de> Deserialize<'de> for SloSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        fn field<'a, T: Deserialize<'a>>(
            v: &Value,
            key: &str,
            default: impl FnOnce() -> T,
        ) -> Result<T, DeError> {
            match v.get(key) {
                Some(inner) => T::from_value(inner),
                None => Ok(default()),
            }
        }
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected SLO spec object, got {v}")))?;
        let name: String = match obj.get("name") {
            Some(inner) => String::from_value(inner)?,
            None => return Err(DeError::custom("SLO spec missing `name`")),
        };
        let target: f64 = match obj.get("target") {
            Some(inner) => f64::from_value(inner)?,
            None => return Err(DeError::custom(format!("SLO `{name}` missing `target`"))),
        };
        let tag = obj
            .get("objective")
            .and_then(Value::as_str)
            .ok_or_else(|| DeError::custom(format!("SLO `{name}` missing `objective` tag")))?;
        let objective = match tag {
            "latency" => SloObjective::Latency {
                metric: field(v, "metric", defaults::latency_metric)?,
                threshold_ms: match obj.get("threshold_ms") {
                    Some(inner) => f64::from_value(inner)?,
                    None => {
                        return Err(DeError::custom(format!(
                            "latency SLO `{name}` missing `threshold_ms`"
                        )))
                    }
                },
            },
            "availability" => SloObjective::Availability {
                bad_paths: field(v, "bad_paths", defaults::bad_paths)?,
            },
            "source_health" => SloObjective::SourceHealth,
            other => {
                return Err(DeError::custom(format!(
                    "unknown SLO objective `{other}` (expected latency, availability, or \
                     source_health)"
                )))
            }
        };
        Ok(SloSpec {
            name,
            objective,
            target,
            fast_window_ms: field(v, "fast_window_ms", defaults::fast_window_ms)?,
            slow_window_ms: field(v, "slow_window_ms", defaults::slow_window_ms)?,
            fast_burn_threshold: field(v, "fast_burn_threshold", defaults::fast_burn_threshold)?,
            slow_burn_threshold: field(v, "slow_burn_threshold", defaults::slow_burn_threshold)?,
        })
    }
}

impl SloSpec {
    /// A spec with default windows and thresholds.
    pub fn new(name: &str, objective: SloObjective, target: f64) -> SloSpec {
        SloSpec {
            name: name.to_owned(),
            objective,
            target,
            fast_window_ms: DEFAULT_FAST_WINDOW_MS,
            slow_window_ms: DEFAULT_SLOW_WINDOW_MS,
            fast_burn_threshold: DEFAULT_FAST_BURN_THRESHOLD,
            slow_burn_threshold: DEFAULT_SLOW_BURN_THRESHOLD,
        }
    }

    /// The allowed error rate `1 - target`, floored away from zero so
    /// burn rates stay finite even for a (mis)declared target of 1.0.
    pub fn allowed_error_rate(&self) -> f64 {
        (1.0 - self.target).max(1e-9)
    }
}

/// One fire/clear transition of an SLO alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloTransition {
    /// The SLO.
    pub slo: String,
    /// `true` when the alert fired, `false` when it cleared.
    pub firing: bool,
    /// Virtual transition time.
    pub at_ms: u64,
    /// Fast-window burn rate at the transition.
    pub burn_fast: f64,
    /// Slow-window burn rate at the transition.
    pub burn_slow: f64,
    /// Human-readable one-liner (shared with the journal entry).
    pub message: String,
}

/// Point-in-time status of one SLO, for JSON/SQL exposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloStatus {
    /// The SLO.
    pub name: String,
    /// Objective description.
    pub objective: String,
    /// Good-fraction target.
    pub target: f64,
    /// Cumulative good count (or current good level) at last evaluation.
    pub good: f64,
    /// Cumulative total (or current level) at last evaluation.
    pub total: f64,
    /// Fast-window burn rate.
    pub burn_fast: f64,
    /// Slow-window burn rate.
    pub burn_slow: f64,
    /// Remaining error budget over the slow window, `1.0` = untouched,
    /// `<= 0` = exhausted (clamped to `[-1, 1]`).
    pub error_budget_remaining: f64,
    /// Whether the alert is currently firing.
    pub firing: bool,
    /// Virtual time of the last fire/clear transition (0 before any).
    pub since_ms: u64,
    /// Fire + clear transitions so far.
    pub transitions: u64,
}

struct SloRuntime {
    spec: SloSpec,
    /// Trailing `(ts, good, total)` samples, oldest first. Pruned to
    /// the slow window plus one baseline sample at or before its start.
    samples: VecDeque<(u64, f64, f64)>,
    burn_fast_gauge: Gauge,
    burn_slow_gauge: Gauge,
    budget_gauge: Gauge,
    firing: bool,
    since_ms: u64,
    transitions: u64,
    last_burn_fast: f64,
    last_burn_slow: f64,
    last_budget: f64,
    last_good: f64,
    last_total: f64,
}

/// Fired/cleared counters, shared cells exposed as
/// `gridrm_slo_transitions_total{state=…}`.
#[derive(Debug, Default)]
pub struct SloStats {
    /// Alerts that started firing.
    pub fired: Counter,
    /// Alerts that cleared.
    pub cleared: Counter,
}

impl SloStats {
    /// Expose these counters in a metrics registry.
    pub fn register_into(&self, registry: &Registry) {
        let series = [("firing", &self.fired), ("ok", &self.cleared)];
        for (state, counter) in series {
            registry.expose_counter(
                "gridrm_slo_transitions_total",
                "SLO alert transitions by destination state",
                Labels::from_pairs(&[("state", state)]),
                counter,
            );
        }
    }
}

/// The SLO burn-rate engine. See the module docs.
pub struct SloEngine {
    registry: Arc<Registry>,
    journal: Arc<Journal>,
    runtimes: Mutex<Vec<SloRuntime>>,
    pending: Mutex<Vec<SloTransition>>,
    stats: SloStats,
}

impl SloEngine {
    /// An engine with no SLOs declared; [`SloEngine::configure`] adds
    /// them. The transition counters register eagerly so the family
    /// exists from startup.
    pub fn new(registry: Arc<Registry>, journal: Arc<Journal>) -> SloEngine {
        let stats = SloStats::default();
        stats.register_into(&registry);
        SloEngine {
            registry,
            journal,
            runtimes: Mutex::new(Vec::new()),
            pending: Mutex::new(Vec::new()),
            stats,
        }
    }

    /// Declare the SLO set (normally from `GatewayConfig::slos` at
    /// startup), replacing any previous declaration. Targets are
    /// clamped into `(0, 1)`; the per-SLO burn/budget gauges register
    /// immediately so every declared SLO is scrapeable before its
    /// first evaluation.
    pub fn configure(&self, specs: &[SloSpec]) {
        let mut runtimes = self.runtimes.lock();
        runtimes.clear();
        for spec in specs {
            let mut spec = spec.clone();
            spec.target = spec.target.clamp(0.0, 0.999_999_999);
            spec.fast_window_ms = spec.fast_window_ms.max(1);
            spec.slow_window_ms = spec.slow_window_ms.max(spec.fast_window_ms);
            let slo_labels = Labels::from_pairs(&[("slo", &spec.name)]);
            let burn_fast_gauge = self.registry.gauge(
                "gridrm_slo_burn_rate",
                "Error-budget burn rate per SLO and window (1 = burning exactly at target)",
                slo_labels.with("window", "fast"),
            );
            let burn_slow_gauge = self.registry.gauge(
                "gridrm_slo_burn_rate",
                "Error-budget burn rate per SLO and window (1 = burning exactly at target)",
                slo_labels.with("window", "slow"),
            );
            let budget_gauge = self.registry.gauge(
                "gridrm_slo_error_budget",
                "Remaining error budget per SLO over the slow window (1 = untouched)",
                slo_labels,
            );
            budget_gauge.set(1.0);
            runtimes.push(SloRuntime {
                spec,
                samples: VecDeque::new(),
                burn_fast_gauge,
                burn_slow_gauge,
                budget_gauge,
                firing: false,
                since_ms: 0,
                transitions: 0,
                last_burn_fast: 0.0,
                last_burn_slow: 0.0,
                last_budget: 1.0,
                last_good: 0.0,
                last_total: 0.0,
            });
        }
    }

    /// The declared SLO specs.
    pub fn specs(&self) -> Vec<SloSpec> {
        self.runtimes
            .lock()
            .iter()
            .map(|r| r.spec.clone())
            .collect()
    }

    /// Transition counters.
    pub fn stats(&self) -> &SloStats {
        &self.stats
    }

    /// Read `(good, total)` for one objective from the registry.
    fn observe(&self, objective: &SloObjective) -> (f64, f64) {
        match objective {
            SloObjective::Latency {
                metric,
                threshold_ms,
            } => match self.registry.histogram_good_total(metric, *threshold_ms) {
                Some((good, total)) => (good as f64, total as f64),
                None => (0.0, 0.0),
            },
            SloObjective::Availability { bad_paths } => {
                let mut good = 0.0;
                let mut total = 0.0;
                for (labels, value) in self.registry.family_values(AVAILABILITY_METRIC) {
                    total += value;
                    let bad = bad_paths.iter().any(|p| labels == format!("path=\"{p}\""));
                    if !bad {
                        good += value;
                    }
                }
                (good, total)
            }
            SloObjective::SourceHealth => {
                let mut good = 0.0;
                let mut total = 0.0;
                for (labels, value) in self.registry.family_values(SOURCE_HEALTH_METRIC) {
                    match labels.as_str() {
                        "state=\"up\"" => {
                            good += value;
                            total += value;
                        }
                        "state=\"degraded\"" | "state=\"down\"" => total += value,
                        _ => {} // `unknown`: no verdict yet
                    }
                }
                (good, total)
            }
        }
    }

    /// Evaluate every SLO at `now_ms`: sample, recompute both window
    /// burn rates, export the gauges, and run the fire/clear state
    /// machine. Call [`SloEngine::take_transitions`] afterwards to
    /// drain transitions for alerting.
    pub fn evaluate(&self, now_ms: u64) {
        let mut runtimes = self.runtimes.lock();
        for rt in runtimes.iter_mut() {
            let (good, total) = self.observe(&rt.spec.objective);
            rt.samples.push_back((now_ms, good, total));
            prune(&mut rt.samples, now_ms, rt.spec.slow_window_ms);

            let cumulative = rt.spec.objective.cumulative();
            let err_fast =
                window_error_rate(&rt.samples, now_ms, rt.spec.fast_window_ms, cumulative);
            let err_slow =
                window_error_rate(&rt.samples, now_ms, rt.spec.slow_window_ms, cumulative);
            let allowed = rt.spec.allowed_error_rate();
            let burn_fast = err_fast / allowed;
            let burn_slow = err_slow / allowed;
            let budget = (1.0 - burn_slow).clamp(-1.0, 1.0);
            rt.burn_fast_gauge.set(burn_fast);
            rt.burn_slow_gauge.set(burn_slow);
            rt.budget_gauge.set(budget);
            rt.last_burn_fast = burn_fast;
            rt.last_burn_slow = burn_slow;
            rt.last_budget = budget;
            rt.last_good = good;
            rt.last_total = total;

            let should_fire = burn_fast >= rt.spec.fast_burn_threshold
                && burn_slow >= rt.spec.slow_burn_threshold;
            let should_clear =
                burn_fast < rt.spec.fast_burn_threshold && burn_slow < rt.spec.slow_burn_threshold;
            if !rt.firing && should_fire {
                rt.firing = true;
                rt.since_ms = now_ms;
                rt.transitions += 1;
                let message = format!(
                    "SLO {} burning: fast {burn_fast:.2}x (>= {}), slow {burn_slow:.2}x (>= {}), \
                     budget {budget:.2}",
                    rt.spec.name, rt.spec.fast_burn_threshold, rt.spec.slow_burn_threshold
                );
                self.transition(rt, now_ms, true, burn_fast, burn_slow, message);
            } else if rt.firing && should_clear {
                rt.firing = false;
                rt.since_ms = now_ms;
                rt.transitions += 1;
                let message = format!(
                    "SLO {} recovered: fast {burn_fast:.2}x, slow {burn_slow:.2}x back below \
                     thresholds, budget {budget:.2}",
                    rt.spec.name
                );
                self.transition(rt, now_ms, false, burn_fast, burn_slow, message);
            }
        }
    }

    /// Journal + counter + pending record in one path, so the three
    /// counts can never drift apart (the health-monitor discipline).
    fn transition(
        &self,
        rt: &SloRuntime,
        at_ms: u64,
        firing: bool,
        burn_fast: f64,
        burn_slow: f64,
        message: String,
    ) {
        let severity = if firing {
            self.stats.fired.inc();
            JournalSeverity::Critical
        } else {
            self.stats.cleared.inc();
            JournalSeverity::Info
        };
        self.journal.record(
            at_ms,
            severity,
            KIND_SLO,
            &rt.spec.name,
            None,
            Some(if firing { "firing" } else { "ok" }),
            &message,
        );
        self.pending.lock().push(SloTransition {
            slo: rt.spec.name.clone(),
            firing,
            at_ms,
            burn_fast,
            burn_slow,
            message,
        });
    }

    /// Drain transitions recorded since the last call (`Gateway::pump`
    /// forwards them to the Event Manager).
    pub fn take_transitions(&self) -> Vec<SloTransition> {
        std::mem::take(&mut *self.pending.lock())
    }

    /// Point-in-time status of every SLO, sorted by name.
    pub fn snapshot(&self) -> Vec<SloStatus> {
        let runtimes = self.runtimes.lock();
        let mut out: Vec<SloStatus> = runtimes
            .iter()
            .map(|rt| SloStatus {
                name: rt.spec.name.clone(),
                objective: rt.spec.objective.describe(),
                target: rt.spec.target,
                good: rt.last_good,
                total: rt.last_total,
                burn_fast: rt.last_burn_fast,
                burn_slow: rt.last_burn_slow,
                error_budget_remaining: rt.last_budget,
                firing: rt.firing,
                since_ms: rt.since_ms,
                transitions: rt.transitions,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of SLOs currently firing.
    pub fn firing_count(&self) -> usize {
        self.runtimes.lock().iter().filter(|r| r.firing).count()
    }
}

/// Drop samples older than the slow window, keeping the newest such
/// sample as the baseline at-or-before the window start.
fn prune(samples: &mut VecDeque<(u64, f64, f64)>, now_ms: u64, slow_window_ms: u64) {
    let start = now_ms.saturating_sub(slow_window_ms);
    while samples.len() >= 2 {
        let second_ts = samples[1].0;
        if second_ts <= start {
            samples.pop_front();
        } else {
            break;
        }
    }
}

/// Error rate over the trailing `window_ms`.
///
/// Cumulative series: `(Δtotal − Δgood) / Δtotal` against the baseline
/// sample at or before the window start (an idle window burns nothing).
/// Level series: mean of `1 − good/total` over the samples inside the
/// window (samples with `total == 0` express no verdict).
fn window_error_rate(
    samples: &VecDeque<(u64, f64, f64)>,
    now_ms: u64,
    window_ms: u64,
    cumulative: bool,
) -> f64 {
    let Some(&(_, good_now, total_now)) = samples.back() else {
        return 0.0;
    };
    let start = now_ms.saturating_sub(window_ms);
    if cumulative {
        // Baseline: newest sample at or before the window start; when
        // every sample is inside the window the series history begins
        // there, so everything observed counts (baseline zero).
        let baseline = samples
            .iter()
            .rev()
            .find(|(ts, _, _)| *ts <= start)
            .copied()
            .unwrap_or((start, 0.0, 0.0));
        let d_total = total_now - baseline.2;
        if d_total <= 0.0 {
            return 0.0;
        }
        let d_good = good_now - baseline.1;
        ((d_total - d_good) / d_total).clamp(0.0, 1.0)
    } else {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(ts, good, total) in samples.iter() {
            if ts > start && total > 0.0 {
                sum += (1.0 - good / total).clamp(0.0, 1.0);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Labels, Registry, DEFAULT_LATENCY_BUCKETS_MS};

    fn engine() -> (Arc<Registry>, Arc<Journal>, SloEngine) {
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(64));
        let engine = SloEngine::new(registry.clone(), journal.clone());
        (registry, journal, engine)
    }

    fn latency_spec() -> SloSpec {
        SloSpec {
            fast_window_ms: 10_000,
            slow_window_ms: 60_000,
            fast_burn_threshold: 10.0,
            slow_burn_threshold: 2.0,
            ..SloSpec::new(
                "latency-100ms",
                SloObjective::Latency {
                    metric: DEFAULT_LATENCY_METRIC.to_owned(),
                    threshold_ms: 100.0,
                },
                0.99,
            )
        }
    }

    #[test]
    fn spec_json_roundtrip_and_defaults() {
        let spec = latency_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SloSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // A minimal spec picks up every default.
        let minimal: SloSpec =
            serde_json::from_str(r#"{"name":"avail","objective":"availability","target":0.999}"#)
                .unwrap();
        assert_eq!(minimal.fast_window_ms, DEFAULT_FAST_WINDOW_MS);
        assert_eq!(minimal.slow_window_ms, DEFAULT_SLOW_WINDOW_MS);
        assert_eq!(
            minimal.objective,
            SloObjective::Availability {
                bad_paths: vec!["denied".to_owned(), "deadline_exceeded".to_owned()]
            }
        );
        let health: SloSpec =
            serde_json::from_str(r#"{"name":"health","objective":"source_health","target":0.9}"#)
                .unwrap();
        assert_eq!(health.objective, SloObjective::SourceHealth);
    }

    #[test]
    fn latency_regression_fires_and_clears_at_exact_times() {
        let (registry, journal, engine) = engine();
        engine.configure(&[latency_spec()]);
        let h = registry.histogram(
            "gridrm_request_latency_ms",
            "Latency",
            Labels::none(),
            DEFAULT_LATENCY_BUCKETS_MS,
        );
        // Healthy traffic: all requests within 100ms.
        for t in 0..10u64 {
            for _ in 0..20 {
                h.observe(5.0);
            }
            engine.evaluate(t * 1_000);
        }
        assert_eq!(engine.firing_count(), 0);
        assert!(engine.take_transitions().is_empty());

        // Regression: every request now takes 500ms. With target 0.99
        // the error rate 1.0 burns at 100x — far past both thresholds.
        let mut fired_at = None;
        for t in 10..20u64 {
            for _ in 0..20 {
                h.observe(500.0);
            }
            engine.evaluate(t * 1_000);
            if fired_at.is_none() && engine.firing_count() == 1 {
                fired_at = Some(t * 1_000);
            }
        }
        let fired_at = fired_at.expect("alert fired");
        let transitions = engine.take_transitions();
        assert_eq!(transitions.len(), 1);
        assert!(transitions[0].firing);
        assert_eq!(transitions[0].at_ms, fired_at);
        assert_eq!(engine.stats().fired.get(), 1);
        let entries = journal.recent_of_kind(KIND_SLO);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].severity, JournalSeverity::Critical);
        assert_eq!(entries[0].at_ms, fired_at);

        // Recovery: fast traffic again. The fast window drains first;
        // the alert clears once the slow window confirms.
        let mut cleared_at = None;
        for t in 20..100u64 {
            for _ in 0..50 {
                h.observe(5.0);
            }
            engine.evaluate(t * 1_000);
            if cleared_at.is_none() && engine.firing_count() == 0 {
                cleared_at = Some(t * 1_000);
            }
        }
        let cleared_at = cleared_at.expect("alert cleared");
        assert!(cleared_at > fired_at);
        let transitions = engine.take_transitions();
        assert_eq!(transitions.len(), 1);
        assert!(!transitions[0].firing);
        assert_eq!(transitions[0].at_ms, cleared_at);
        assert_eq!(engine.stats().cleared.get(), 1);

        // Gauges export the final burn rates.
        let samples = registry.samples();
        let burn_fast = samples
            .iter()
            .find(|s| {
                s.name == "gridrm_slo_burn_rate"
                    && s.labels == "slo=\"latency-100ms\",window=\"fast\""
            })
            .expect("burn gauge");
        assert!(burn_fast.value < 10.0);
        let budget = samples
            .iter()
            .find(|s| s.name == "gridrm_slo_error_budget" && s.labels == "slo=\"latency-100ms\"")
            .expect("budget gauge");
        assert!(budget.value <= 1.0);
    }

    #[test]
    fn source_health_objective_averages_levels() {
        let (registry, _journal, engine) = engine();
        engine.configure(&[SloSpec {
            fast_window_ms: 5_000,
            slow_window_ms: 10_000,
            fast_burn_threshold: 2.0,
            slow_burn_threshold: 2.0,
            ..SloSpec::new("sources-up", SloObjective::SourceHealth, 0.75)
        }]);
        let up = registry.gauge(
            "gridrm_health_sources",
            "Sources",
            Labels::from_pairs(&[("state", "up")]),
        );
        let down = registry.gauge(
            "gridrm_health_sources",
            "Sources",
            Labels::from_pairs(&[("state", "down")]),
        );
        let unknown = registry.gauge(
            "gridrm_health_sources",
            "Sources",
            Labels::from_pairs(&[("state", "unknown")]),
        );
        unknown.set(10.0); // never counts against the objective
        up.set(4.0);
        down.set(0.0);
        engine.evaluate(1_000);
        assert_eq!(engine.firing_count(), 0);
        // Half the fleet drops: error rate 0.5 against allowed 0.25 =
        // burn 2.0 in both windows.
        up.set(2.0);
        down.set(2.0);
        for t in 2..=12u64 {
            engine.evaluate(t * 1_000);
        }
        assert_eq!(engine.firing_count(), 1);
        let snap = engine.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].firing);
        assert_eq!(snap[0].good, 2.0);
        assert_eq!(snap[0].total, 4.0);
        assert!(snap[0].burn_slow >= 2.0 - 1e-9);
    }

    #[test]
    fn availability_objective_counts_bad_paths() {
        let (registry, _journal, engine) = engine();
        engine.configure(&[SloSpec {
            fast_window_ms: 2_000,
            slow_window_ms: 4_000,
            fast_burn_threshold: 5.0,
            slow_burn_threshold: 5.0,
            ..SloSpec::new(
                "availability",
                SloObjective::Availability {
                    bad_paths: defaults::bad_paths(),
                },
                0.9,
            )
        }]);
        let ok = registry.counter(
            "gridrm_request_paths_total",
            "Paths",
            Labels::from_pairs(&[("path", "realtime_fetch")]),
        );
        let denied = registry.counter(
            "gridrm_request_paths_total",
            "Paths",
            Labels::from_pairs(&[("path", "denied")]),
        );
        ok.add(90);
        engine.evaluate(0);
        // From here on, every request is denied: error rate 1.0 against
        // allowed 0.1 = burn 10 in both windows once the baseline ages.
        denied.add(50);
        engine.evaluate(2_000);
        engine.evaluate(4_000);
        assert_eq!(engine.firing_count(), 1);
        let snap = engine.snapshot();
        assert_eq!(snap[0].total, 140.0);
        assert_eq!(snap[0].good, 90.0);
    }

    #[test]
    fn idle_windows_burn_nothing() {
        let (_registry, _journal, engine) = engine();
        engine.configure(&[latency_spec()]);
        for t in 0..10u64 {
            engine.evaluate(t * 1_000);
        }
        assert_eq!(engine.firing_count(), 0);
        let snap = engine.snapshot();
        assert_eq!(snap[0].burn_fast, 0.0);
        assert_eq!(snap[0].error_budget_remaining, 1.0);
    }
}
