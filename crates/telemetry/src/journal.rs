//! The structured event journal: a bounded ring of operational facts
//! (health transitions, driver fallbacks, cache last-known-state serves,
//! policy decisions, event-pipeline activity) with severity levels and
//! low-cardinality source/driver/stage fields.
//!
//! The journal is to *gateway behaviour* what the trace ring is to *one
//! request*: an ordered, bounded, queryable record. Entries are stamped
//! with the shared virtual clock by callers, so journal ordering can be
//! lined up against trace timestamps exactly.

use crate::metrics::{Counter, Labels, Registry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Journal severity, ordered. Mirrors the gateway's event severities but
/// lives here so every crate below `core` can record entries.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum JournalSeverity {
    /// Routine operational fact.
    #[default]
    Info,
    /// Needs attention (degraded health, fallbacks, overflow).
    Warning,
    /// Needs attention now (source down, data loss risk).
    Critical,
}

impl JournalSeverity {
    /// Lower-case name (`info`, `warning`, `critical`).
    pub fn name(&self) -> &'static str {
        match self {
            JournalSeverity::Info => "info",
            JournalSeverity::Warning => "warning",
            JournalSeverity::Critical => "critical",
        }
    }

    /// Parse from common level strings (anything unknown is `Info`).
    pub fn parse(s: &str) -> JournalSeverity {
        match s.to_ascii_lowercase().as_str() {
            "critical" | "crit" | "error" | "fatal" => JournalSeverity::Critical,
            "warning" | "warn" => JournalSeverity::Warning,
            _ => JournalSeverity::Info,
        }
    }
}

/// One journal entry. `kind` comes from a closed set (see the constants
/// in this module); `source`/`driver`/`stage` carry the high-cardinality
/// detail that must stay out of metric labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Monotonic sequence number, unique per journal.
    pub seq: u64,
    /// Virtual time the entry was recorded.
    pub at_ms: u64,
    /// Severity level.
    pub severity: JournalSeverity,
    /// Entry kind from the closed set (`state_transition`, …).
    pub kind: String,
    /// The data source (URL) or component concerned.
    pub source: String,
    /// Driver involved, when one was.
    pub driver: Option<String>,
    /// Pipeline stage involved, when one was.
    pub stage: Option<String>,
    /// Human-readable detail.
    pub message: String,
    /// The trace tree active when the entry was recorded, so journal
    /// rows join against `gridrm_spans`. Defaults empty for entries
    /// recorded outside any request.
    #[serde(default)]
    pub trace_id: Option<String>,
}

/// Kind: a health state machine transition.
pub const KIND_STATE_TRANSITION: &str = "state_transition";
/// Kind: a failure policy fell back to another driver.
pub const KIND_DRIVER_FALLBACK: &str = "driver_fallback";
/// Kind: the cache served a last-known-state result.
pub const KIND_CACHE_SERVE: &str = "cache_serve";
/// Kind: a failure-policy decision (retry, report, exhausted).
pub const KIND_POLICY_DECISION: &str = "policy_decision";
/// Kind: an active health probe ran.
pub const KIND_PROBE: &str = "probe";
/// Kind: a normalised event entered the event pipeline.
pub const KIND_EVENT: &str = "event";
/// Kind: the event fast buffer overflowed to the disk buffer.
pub const KIND_EVENT_OVERFLOW: &str = "event_overflow";
/// Kind: a native push no formatter accepted.
pub const KIND_EVENT_UNFORMATTED: &str = "event_unformatted";
/// Kind: an SLO burn-rate alert fired or cleared.
pub const KIND_SLO: &str = "slo_alert";
/// Kind: continuous-query subscription lifecycle and evaluation facts.
pub const KIND_STREAM: &str = "stream";
/// Kind: a query's inclusive cost exceeded the configured budget.
pub const KIND_COST_BUDGET: &str = "cost_budget";

/// Per-severity journal counters. Shared telemetry cells, exposable in a
/// gateway-wide [`Registry`] via [`JournalStats::register_into`].
#[derive(Debug, Default)]
pub struct JournalStats {
    /// Info entries recorded.
    pub info: Counter,
    /// Warning entries recorded.
    pub warning: Counter,
    /// Critical entries recorded.
    pub critical: Counter,
}

impl JournalStats {
    fn for_severity(&self, severity: JournalSeverity) -> &Counter {
        match severity {
            JournalSeverity::Info => &self.info,
            JournalSeverity::Warning => &self.warning,
            JournalSeverity::Critical => &self.critical,
        }
    }

    /// Expose these counters in a metrics registry (shared cells: the
    /// struct and the registry observe the same values).
    pub fn register_into(&self, registry: &Registry) {
        let series = [
            ("info", &self.info),
            ("warning", &self.warning),
            ("critical", &self.critical),
        ];
        for (severity, counter) in series {
            registry.expose_counter(
                "gridrm_journal_entries_total",
                "Structured journal entries recorded by severity",
                Labels::from_pairs(&[("severity", severity)]),
                counter,
            );
        }
    }
}

/// Default number of journal entries retained per gateway.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 512;

/// The bounded structured journal: oldest entries evicted first, like
/// the trace ring.
pub struct Journal {
    capacity: usize,
    ring: Mutex<VecDeque<JournalEntry>>,
    next_seq: AtomicU64,
    stats: JournalStats,
    /// Evictions, exposed as `gridrm_journal_drops_total` so loss of
    /// observability data is itself observable.
    drops: Counter,
}

impl Journal {
    /// Journal keeping at most `capacity` entries (capacity >= 1).
    pub fn new(capacity: usize) -> Journal {
        Journal {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            next_seq: AtomicU64::new(1),
            stats: JournalStats::default(),
            drops: Counter::new(),
        }
    }

    /// Record one entry (the journal assigns `seq`). Returns the assigned
    /// sequence number.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        at_ms: u64,
        severity: JournalSeverity,
        kind: &str,
        source: &str,
        driver: Option<&str>,
        stage: Option<&str>,
        message: &str,
    ) -> u64 {
        self.record_traced(at_ms, severity, kind, source, driver, stage, message, None)
    }

    /// [`Journal::record`] stamped with the active `trace_id`, so the
    /// entry joins against the span tree it was recorded under.
    #[allow(clippy::too_many_arguments)]
    pub fn record_traced(
        &self,
        at_ms: u64,
        severity: JournalSeverity,
        kind: &str,
        source: &str,
        driver: Option<&str>,
        stage: Option<&str>,
        message: &str,
        trace_id: Option<&str>,
    ) -> u64 {
        self.stats.for_severity(severity).inc();
        let mut ring = self.ring.lock();
        // Seq is assigned under the ring lock so sequence order always
        // matches ring order (and clock order, the clock being monotone).
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if ring.len() == self.capacity {
            ring.pop_front();
            self.drops.inc();
        }
        ring.push_back(JournalEntry {
            seq,
            at_ms,
            severity,
            kind: kind.to_owned(),
            source: source.to_owned(),
            driver: driver.map(str::to_owned),
            stage: stage.map(str::to_owned),
            message: message.to_owned(),
            trace_id: trace_id.map(str::to_owned),
        });
        seq
    }

    /// Retained entries, oldest first.
    pub fn recent(&self) -> Vec<JournalEntry> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Retained entries of one kind, oldest first.
    pub fn recent_of_kind(&self, kind: &str) -> Vec<JournalEntry> {
        self.ring
            .lock()
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total entries ever recorded (survives ring eviction).
    pub fn total_recorded(&self) -> u64 {
        self.stats.info.get() + self.stats.warning.get() + self.stats.critical.get()
    }

    /// Per-severity counters.
    pub fn stats(&self) -> &JournalStats {
        &self.stats
    }

    /// Shared counter of entries evicted before being read.
    pub fn drops(&self) -> &Counter {
        &self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(capacity: usize) -> Journal {
        Journal::new(capacity)
    }

    #[test]
    fn seq_is_monotonic_and_ring_bounded() {
        let journal = j(3);
        for i in 0..5u64 {
            journal.record(
                i,
                JournalSeverity::Info,
                KIND_PROBE,
                "jdbc:snmp://n/p",
                None,
                None,
                "probe ok",
            );
        }
        let kept = journal.recent();
        assert_eq!(kept.len(), 3);
        let seqs: Vec<u64> = kept.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(journal.total_recorded(), 5);
        assert_eq!(journal.capacity(), 3);
        // 5 recorded into a ring of 3: two evictions, both counted.
        assert_eq!(journal.drops().get(), 2);
    }

    #[test]
    fn severity_counters_track_records() {
        let journal = j(8);
        journal.record(0, JournalSeverity::Info, KIND_EVENT, "s", None, None, "m");
        journal.record(
            1,
            JournalSeverity::Warning,
            KIND_DRIVER_FALLBACK,
            "s",
            Some("jdbc-snmp"),
            None,
            "m",
        );
        journal.record(
            2,
            JournalSeverity::Critical,
            KIND_STATE_TRANSITION,
            "s",
            None,
            Some("down"),
            "m",
        );
        journal.record(
            3,
            JournalSeverity::Critical,
            KIND_PROBE,
            "s",
            None,
            None,
            "m",
        );
        assert_eq!(journal.stats().info.get(), 1);
        assert_eq!(journal.stats().warning.get(), 1);
        assert_eq!(journal.stats().critical.get(), 2);
        assert_eq!(journal.total_recorded(), 4);
    }

    #[test]
    fn kind_filter() {
        let journal = j(8);
        journal.record(0, JournalSeverity::Info, KIND_PROBE, "a", None, None, "m");
        journal.record(
            1,
            JournalSeverity::Warning,
            KIND_STATE_TRANSITION,
            "a",
            None,
            None,
            "m",
        );
        journal.record(2, JournalSeverity::Info, KIND_PROBE, "b", None, None, "m");
        let probes = journal.recent_of_kind(KIND_PROBE);
        assert_eq!(probes.len(), 2);
        assert!(probes.iter().all(|e| e.kind == KIND_PROBE));
    }

    #[test]
    fn entries_serialize_to_json() {
        let journal = j(2);
        journal.record(
            7,
            JournalSeverity::Warning,
            KIND_CACHE_SERVE,
            "jdbc:snmp://n/p",
            Some("jdbc-snmp"),
            Some("cache_lookup"),
            "served last known state",
        );
        let entries = journal.recent();
        let json = serde_json::to_string(&entries).unwrap();
        let back: Vec<JournalEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn severity_parse_and_order() {
        assert_eq!(JournalSeverity::parse("WARN"), JournalSeverity::Warning);
        assert_eq!(JournalSeverity::parse("error"), JournalSeverity::Critical);
        assert_eq!(JournalSeverity::parse("other"), JournalSeverity::Info);
        assert!(JournalSeverity::Info < JournalSeverity::Warning);
        assert!(JournalSeverity::Warning < JournalSeverity::Critical);
    }

    #[test]
    fn concurrent_records_keep_ring_ordered_by_seq() {
        let journal = j(4096);
        std::thread::scope(|s| {
            for t in 0..8 {
                let journal = &journal;
                s.spawn(move || {
                    for i in 0..200 {
                        journal.record(
                            0,
                            JournalSeverity::Info,
                            KIND_EVENT,
                            &format!("src-{t}"),
                            None,
                            None,
                            &format!("m{i}"),
                        );
                    }
                });
            }
        });
        let entries = journal.recent();
        assert_eq!(entries.len(), 1600);
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
