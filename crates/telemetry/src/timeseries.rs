//! Metrics time-series recorder: bounded per-series history rings.
//!
//! The registry answers "what is the value *now*"; this module answers
//! "what was it *over time*". `Gateway::pump` drives
//! [`TimeSeriesRecorder::maybe_sample`] on the shared `SimClock`: every
//! due tick copies each registry series (histograms expanded to
//! `_count`/`_sum`/quantile points, see
//! [`Registry::series_points`](crate::Registry::series_points)) into a
//! bounded [`ColumnRing`] of typed columns — timestamps and values in
//! parallel arrays, oldest overwritten first. Counter semantics
//! (delta and rate between consecutive samples) are derived on read,
//! so recording stays a pair of array stores per series.
//!
//! The per-column layout is deliberate: [`TimeSeriesRecorder::bucketed`]
//! aggregates `time_bucket`-style (min/max/avg/sum per fixed-width
//! virtual-time bucket) in one tight pass over the column slices — the
//! first concrete columnar-aggregation kernel on the road to the full
//! history store (ROADMAP item 3). The same data feeds the
//! `gridrm_metrics_history` virtual SQL table and the Admin JSON
//! endpoint.

use crate::metrics::{Counter, PointKind, Registry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default virtual-time distance between samples.
pub const DEFAULT_TIMESERIES_INTERVAL_MS: u64 = 1_000;
/// Default per-series ring capacity (samples retained).
pub const DEFAULT_TIMESERIES_CAPACITY: usize = 1_024;

/// A bounded ring of `(timestamp, value)` points stored as two parallel
/// typed columns. Pushes wrap around, overwriting the oldest point; the
/// live window is exposed as at most two contiguous column slices, so
/// aggregation loops run over plain `&[u64]` / `&[f64]` runs.
#[derive(Debug)]
pub struct ColumnRing {
    cap: usize,
    /// Index of the oldest point once the ring has wrapped.
    head: usize,
    ts: Vec<u64>,
    values: Vec<f64>,
}

impl ColumnRing {
    /// Ring retaining at most `cap` points (minimum 2, so a counter
    /// series can always derive one delta).
    pub fn new(cap: usize) -> ColumnRing {
        let cap = cap.max(2);
        ColumnRing {
            cap,
            head: 0,
            ts: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Append one point, overwriting the oldest on overflow.
    pub fn push(&mut self, ts: u64, value: f64) {
        if self.ts.len() < self.cap {
            self.ts.push(ts);
            self.values.push(value);
        } else {
            self.ts[self.head] = ts;
            self.values[self.head] = value;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Retained points.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Maximum retained points.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The live window as up to two contiguous `(timestamps, values)`
    /// column runs, oldest first (the second pair is empty until the
    /// ring wraps). Aggregators iterate these directly.
    pub fn slices(&self) -> [(&[u64], &[f64]); 2] {
        // Once wrapped, storage is [recently-overwritten | oldest]:
        // positions before `head` hold the newest points, positions
        // from `head` on hold the oldest. Time order is therefore the
        // tail run first, then the head run.
        let (newest_ts, oldest_ts) = self.ts.split_at(self.head);
        let (newest_v, oldest_v) = self.values.split_at(self.head);
        [(oldest_ts, oldest_v), (newest_ts, newest_v)]
    }

    /// Iterate points oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let [(ts_a, v_a), (ts_b, v_b)] = self.slices();
        ts_a.iter()
            .copied()
            .zip(v_a.iter().copied())
            .chain(ts_b.iter().copied().zip(v_b.iter().copied()))
    }

    /// The most recent point.
    pub fn last(&self) -> Option<(u64, f64)> {
        if self.is_empty() {
            return None;
        }
        let idx = if self.ts.len() < self.cap {
            self.ts.len() - 1
        } else {
            (self.head + self.cap - 1) % self.cap
        };
        Some((self.ts[idx], self.values[idx]))
    }
}

/// One materialised history row: a recorded point plus, for counter
/// series, the delta and per-second rate against the previous sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRow {
    /// Virtual sample time.
    pub ts_ms: u64,
    /// Series name (`gridrm_requests_total`, `…_count`, `…_p95`, …).
    pub name: String,
    /// Rendered labels, empty when unlabelled.
    pub labels: String,
    /// `counter` or `gauge`.
    pub kind: String,
    /// Raw sampled value (cumulative for counters).
    pub value: f64,
    /// Increase since the previous retained sample (counters only;
    /// `None` for gauges and for the oldest retained point). A counter
    /// reset reports the post-reset value.
    pub delta: Option<f64>,
    /// `delta` per elapsed virtual second (counters only).
    pub rate_per_s: Option<f64>,
}

/// `time_bucket` aggregate of one series over one fixed-width bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketStats {
    /// Bucket start (virtual ms, aligned to the bucket width).
    pub bucket_ms: u64,
    /// Points that fell in this bucket.
    pub count: u64,
    /// Minimum value in the bucket.
    pub min: f64,
    /// Maximum value in the bucket.
    pub max: f64,
    /// Sum of values in the bucket.
    pub sum: f64,
}

impl BucketStats {
    /// Mean value in the bucket.
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

struct SeriesState {
    kind: PointKind,
    ring: ColumnRing,
}

struct RecorderState {
    interval_ms: u64,
    capacity: usize,
    last_sample_ms: Option<u64>,
    series: BTreeMap<(String, String), SeriesState>,
}

/// The gateway-wide metrics history recorder. See the module docs.
pub struct TimeSeriesRecorder {
    state: Mutex<RecorderState>,
    /// Points recorded, exposed as `gridrm_timeseries_points_total`.
    points: Counter,
}

impl Default for TimeSeriesRecorder {
    fn default() -> TimeSeriesRecorder {
        TimeSeriesRecorder::new()
    }
}

impl TimeSeriesRecorder {
    /// Recorder with default interval and capacity.
    pub fn new() -> TimeSeriesRecorder {
        TimeSeriesRecorder {
            state: Mutex::new(RecorderState {
                interval_ms: DEFAULT_TIMESERIES_INTERVAL_MS,
                capacity: DEFAULT_TIMESERIES_CAPACITY,
                last_sample_ms: None,
                series: BTreeMap::new(),
            }),
            points: Counter::new(),
        }
    }

    /// Apply configuration knobs (normally from `GatewayConfig` at
    /// startup). The interval is clamped to >= 1 ms and the capacity to
    /// >= 2 points; rings created before the call keep their size.
    pub fn configure(&self, interval_ms: u64, capacity: usize) {
        let mut state = self.state.lock();
        state.interval_ms = interval_ms.max(1);
        state.capacity = capacity.max(2);
    }

    /// The sampling interval in virtual ms.
    pub fn interval_ms(&self) -> u64 {
        self.state.lock().interval_ms
    }

    /// Per-series ring capacity for newly seen series.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Shared counter of points recorded.
    pub fn points_recorded(&self) -> &Counter {
        &self.points
    }

    /// Sample every registry series if at least one interval elapsed
    /// since the previous sample (or none was ever taken). Returns
    /// whether a sample was taken.
    pub fn maybe_sample(&self, registry: &Registry, now_ms: u64) -> bool {
        {
            let state = self.state.lock();
            let due = match state.last_sample_ms {
                None => true,
                Some(last) => now_ms >= last.saturating_add(state.interval_ms),
            };
            if !due {
                return false;
            }
        }
        self.sample_now(registry, now_ms);
        true
    }

    /// Unconditionally sample every registry series at `now_ms`.
    pub fn sample_now(&self, registry: &Registry, now_ms: u64) {
        let points = registry.series_points();
        let mut state = self.state.lock();
        state.last_sample_ms = Some(now_ms);
        let capacity = state.capacity;
        for p in points {
            let entry = state
                .series
                .entry((p.name, p.labels))
                .or_insert_with(|| SeriesState {
                    kind: p.kind,
                    ring: ColumnRing::new(capacity),
                });
            entry.ring.push(now_ms, p.value);
            self.points.inc();
        }
    }

    /// Record one point directly, bypassing the registry — the feed for
    /// benches and tests that generate synthetic history.
    pub fn record_point(&self, name: &str, labels: &str, kind: PointKind, at_ms: u64, value: f64) {
        let mut state = self.state.lock();
        let capacity = state.capacity;
        let entry = state
            .series
            .entry((name.to_owned(), labels.to_owned()))
            .or_insert_with(|| SeriesState {
                kind,
                ring: ColumnRing::new(capacity),
            });
        entry.ring.push(at_ms, value);
        self.points.inc();
    }

    /// `(name, labels)` of every tracked series, sorted.
    pub fn series_names(&self) -> Vec<(String, String)> {
        self.state.lock().series.keys().cloned().collect()
    }

    /// Materialise history rows for every series (see [`HistoryRow`]),
    /// ordered by series then time.
    pub fn history(&self) -> Vec<HistoryRow> {
        self.history_for(None, None)
    }

    /// Materialise history rows, optionally restricted to one series
    /// name and/or one rendered label set — the pushdown path for
    /// `WHERE name = '…' [AND labels = '…']` over the virtual table.
    pub fn history_for(&self, name: Option<&str>, labels: Option<&str>) -> Vec<HistoryRow> {
        let state = self.state.lock();
        let mut out = Vec::new();
        for ((series_name, series_labels), series) in state.series.iter() {
            if name.is_some_and(|n| n != series_name) {
                continue;
            }
            if labels.is_some_and(|l| l != series_labels) {
                continue;
            }
            let counter = series.kind == PointKind::Counter;
            let mut prev: Option<(u64, f64)> = None;
            for (ts, value) in series.ring.iter() {
                let (delta, rate_per_s) = match (counter, prev) {
                    (true, Some((prev_ts, prev_v))) => {
                        // A counter that moved backwards was reset; the
                        // post-reset value is the whole increase.
                        let d = if value >= prev_v {
                            value - prev_v
                        } else {
                            value
                        };
                        let elapsed_ms = ts.saturating_sub(prev_ts);
                        let rate = if elapsed_ms == 0 {
                            0.0
                        } else {
                            d * 1_000.0 / elapsed_ms as f64
                        };
                        (Some(d), Some(rate))
                    }
                    _ => (None, None),
                };
                out.push(HistoryRow {
                    ts_ms: ts,
                    name: series_name.clone(),
                    labels: series_labels.clone(),
                    kind: series.kind.name().to_owned(),
                    value,
                    delta,
                    rate_per_s,
                });
                prev = Some((ts, value));
            }
        }
        out
    }

    /// Aggregate one series into fixed-width virtual-time buckets —
    /// the columnar `time_bucket` kernel. Runs a single pass over the
    /// ring's column slices; since the clock is monotone the points
    /// arrive bucket-ordered and each bucket closes exactly once.
    /// `bucket_ms` of 0 is treated as 1.
    pub fn bucketed(&self, name: &str, labels: &str, bucket_ms: u64) -> Vec<BucketStats> {
        let bucket_ms = bucket_ms.max(1);
        let state = self.state.lock();
        let Some(series) = state.series.get(&(name.to_owned(), labels.to_owned())) else {
            return Vec::new();
        };
        let mut out: Vec<BucketStats> = Vec::new();
        for (ts_col, value_col) in series.ring.slices() {
            for (&ts, &value) in ts_col.iter().zip(value_col) {
                let bucket = (ts / bucket_ms) * bucket_ms;
                match out.last_mut() {
                    Some(acc) if acc.bucket_ms == bucket => {
                        acc.count += 1;
                        acc.min = acc.min.min(value);
                        acc.max = acc.max.max(value);
                        acc.sum += value;
                    }
                    _ => out.push(BucketStats {
                        bucket_ms: bucket,
                        count: 1,
                        min: value,
                        max: value,
                        sum: value,
                    }),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Labels, Registry};

    #[test]
    fn column_ring_wraps_and_keeps_time_order() {
        let mut ring = ColumnRing::new(4);
        for i in 0..6u64 {
            ring.push(i * 10, i as f64);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.capacity(), 4);
        let points: Vec<(u64, f64)> = ring.iter().collect();
        assert_eq!(points, vec![(20, 2.0), (30, 3.0), (40, 4.0), (50, 5.0)]);
        assert_eq!(ring.last(), Some((50, 5.0)));
        // The two slice runs cover the same points in the same order.
        let [(a_ts, _), (b_ts, _)] = ring.slices();
        let mut ts: Vec<u64> = a_ts.to_vec();
        ts.extend_from_slice(b_ts);
        assert_eq!(ts, vec![20, 30, 40, 50]);
    }

    #[test]
    fn recorder_samples_on_interval_only() {
        let reg = Registry::new();
        let c = reg.counter("gridrm_x_total", "X", Labels::none());
        let rec = TimeSeriesRecorder::new();
        rec.configure(1_000, 16);
        c.inc();
        assert!(rec.maybe_sample(&reg, 0));
        assert!(!rec.maybe_sample(&reg, 500), "interval not elapsed");
        c.add(4);
        assert!(rec.maybe_sample(&reg, 1_000));
        let rows = rec.history_for(Some("gridrm_x_total"), None);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value, 1.0);
        assert_eq!(rows[0].delta, None, "oldest point has no predecessor");
        assert_eq!(rows[1].value, 5.0);
        assert_eq!(rows[1].delta, Some(4.0));
        assert_eq!(rows[1].rate_per_s, Some(4.0));
    }

    #[test]
    fn histograms_expand_to_quantile_points() {
        let reg = Registry::new();
        let h = reg.histogram("gridrm_lat_ms", "L", Labels::none(), &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        let rec = TimeSeriesRecorder::new();
        rec.sample_now(&reg, 0);
        let names: Vec<(String, String)> = rec.series_names();
        let names: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "gridrm_lat_ms_count",
                "gridrm_lat_ms_p50",
                "gridrm_lat_ms_p95",
                "gridrm_lat_ms_p99",
                "gridrm_lat_ms_sum"
            ]
        );
        let count = rec.history_for(Some("gridrm_lat_ms_count"), None);
        assert_eq!(count[0].kind, "counter");
        assert_eq!(count[0].value, 2.0);
        let p95 = rec.history_for(Some("gridrm_lat_ms_p95"), None);
        assert_eq!(p95[0].kind, "gauge");
        assert_eq!(p95[0].value, 100.0);
    }

    #[test]
    fn counter_reset_reports_post_reset_delta() {
        let rec = TimeSeriesRecorder::new();
        rec.record_point("gridrm_x_total", "", PointKind::Counter, 0, 100.0);
        rec.record_point("gridrm_x_total", "", PointKind::Counter, 1_000, 3.0);
        let rows = rec.history();
        assert_eq!(rows[1].delta, Some(3.0));
    }

    #[test]
    fn bucketed_matches_row_by_row_aggregation() {
        let rec = TimeSeriesRecorder::new();
        rec.configure(1, 4_096);
        // Two full buckets of width 100 plus a partial third.
        for i in 0..25u64 {
            rec.record_point("gridrm_g", "", PointKind::Gauge, i * 10, (i % 7) as f64);
        }
        let buckets = rec.bucketed("gridrm_g", "", 100);
        assert_eq!(buckets.len(), 3);
        // Cross-check against the naive per-point loop.
        let rows = rec.history_for(Some("gridrm_g"), None);
        let mut naive: BTreeMap<u64, (u64, f64, f64, f64)> = BTreeMap::new();
        for r in rows {
            let b = (r.ts_ms / 100) * 100;
            let e = naive.entry(b).or_insert((0, f64::MAX, f64::MIN, 0.0));
            e.0 += 1;
            e.1 = e.1.min(r.value);
            e.2 = e.2.max(r.value);
            e.3 += r.value;
        }
        for b in &buckets {
            let (count, min, max, sum) = naive[&b.bucket_ms];
            assert_eq!((b.count, b.min, b.max, b.sum), (count, min, max, sum));
            assert_eq!(b.avg(), sum / count as f64);
        }
        // Unknown series and zero-width buckets are safe.
        assert!(rec.bucketed("missing", "", 100).is_empty());
        assert_eq!(rec.bucketed("gridrm_g", "", 0).len(), 25);
    }
}
